#!/usr/bin/env python3
"""Watch-list identification — the paper's motivating scenario.

"Biometric identification has been used in some scenarios such as
criminal watching-list and identity management systems" (Section III).
A checkpoint device reads a subject's biometric; the server must decide
*who* it is (1-to-N), not verify a claimed identity (1-to-1) — and it
must do so without storing any raw biometric data.

This example enrolls a watch-list, then runs the paper's Fig. 3 protocol
end to end for:

* a watch-listed subject (identified, via sketch search + one
  challenge-response);
* an unknown subject (⊥, nothing matched);
* the same subject against the Fig. 2 *normal approach*, timing both to
  show the O(1) vs O(N) gap on live protocol runs.

Run:  python examples/watchlist_identification.py
"""

import time

from repro.biometrics import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.crypto import Dsa, GROUP_1024
from repro.protocols import (
    AuthenticationServer,
    BiometricDevice,
    DuplexLink,
    run_baseline_identification,
    run_enrollment,
    run_identification,
)

WATCHLIST_SIZE = 40
DIMENSION = 2000


def main() -> None:
    params = SystemParams.paper_defaults(n=DIMENSION)
    scheme = Dsa(GROUP_1024)

    # Synthetic subjects: per-user template + bounded reading noise, the
    # paper's own evaluation workload.
    population = UserPopulation(params, size=WATCHLIST_SIZE,
                                noise=BoundedUniformNoise(params.t), seed=99)
    device = BiometricDevice(params, scheme, seed=b"checkpoint-device")
    server = AuthenticationServer(params, scheme, seed=b"watchlist-server")

    print(f"Enrolling {WATCHLIST_SIZE} watch-listed subjects "
          f"(n={DIMENSION} features each)…")
    start = time.perf_counter()
    for i, subject_id in enumerate(population.user_ids()):
        run = run_enrollment(device, server, DuplexLink(), subject_id,
                             population.template(i))
        assert run.outcome.accepted
    print(f"  done in {time.perf_counter() - start:.2f}s — the server "
          f"stores only (ID, pk, P); no template ever leaves the device\n")

    # --- a watch-listed subject walks past the checkpoint -------------------
    subject = 17
    reading = population.genuine_reading(subject)
    link = DuplexLink()
    run = run_identification(device, server, link, reading)
    print(f"checkpoint reading of subject #{subject}:")
    print(f"  identified: {run.outcome.identified} -> "
          f"{run.outcome.user_id}")
    print(f"  protocol: {run.messages} messages, {run.wire_bytes:,} wire "
          f"bytes, {run.compute_time_s * 1e3:.1f} ms compute")
    for phase, seconds in run.timings_s.items():
        print(f"    {phase:<10}{seconds * 1e3:8.2f} ms")

    # --- an unknown subject --------------------------------------------------
    unknown = population.impostor_reading()
    run = run_identification(device, server, DuplexLink(), unknown)
    print(f"\nunknown subject: identified={run.outcome.identified} "
          f"(server returned ⊥ after the sketch search missed)")

    # --- proposed vs normal approach ----------------------------------------
    reading = population.genuine_reading(WATCHLIST_SIZE - 1)
    start = time.perf_counter()
    proposed = run_identification(device, server, DuplexLink(), reading)
    proposed_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    baseline = run_baseline_identification(device, server, DuplexLink(),
                                           reading)
    baseline_ms = (time.perf_counter() - start) * 1e3
    assert proposed.outcome.identified and baseline.outcome.identified

    print(f"\nproposed (Fig. 3):  {proposed_ms:8.1f} ms, "
          f"{proposed.wire_bytes:>10,} wire bytes")
    print(f"normal   (Fig. 2):  {baseline_ms:8.1f} ms, "
          f"{baseline.wire_bytes:>10,} wire bytes "
          f"(ships all {WATCHLIST_SIZE} helper records)")
    print(f"speedup: {baseline_ms / proposed_ms:.1f}x at "
          f"{WATCHLIST_SIZE} subjects — and the gap grows linearly "
          f"with the watch-list")


if __name__ == "__main__":
    main()
