#!/usr/bin/env python3
"""Quickstart: the succinct fuzzy extractor in five minutes.

Walks through the paper's core objects at paper parameters (Table II):

1. encode a biometric template as a vector on the number line La;
2. ``Gen`` — derive a cryptographic secret R and public helper data P;
3. ``Rep`` — reproduce exactly the same R from a *noisy* re-reading;
4. see recovery fail closed for an impostor and for tampered helper data.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SystemParams, SuccinctFuzzyExtractor
from repro.core.extractor import HelperData
from repro.exceptions import RecoveryError, TamperDetectedError


def main() -> None:
    # Paper parameters: a=100, k=4, v=500, t=100 — templates are vectors
    # of n points in [-100000, 100000]; readings within Chebyshev
    # distance 100 of the enrolled template reproduce the secret.
    params = SystemParams.paper_defaults(n=1000)
    fe = SuccinctFuzzyExtractor(params)
    print(f"number line: [-{params.half_range}, {params.half_range}], "
          f"{params.v} intervals of width {params.interval_width}")
    print(f"threshold:   t = {params.t} (Chebyshev / L-infinity)")

    # --- enrollment -------------------------------------------------------
    rng = np.random.default_rng(seed=7)
    template = rng.integers(-params.half_range, params.half_range,
                            size=params.n, dtype=np.int64)

    secret, helper = fe.generate(template)
    print(f"\nGen: secret R = {secret.hex()[:32]}… ({len(secret)} bytes)")
    print(f"     helper P = {helper.storage_bytes()} bytes on the wire "
          f"(information content {params.storage_bits:,.0f} bits)")

    # --- reproduction from a noisy reading --------------------------------
    noise = rng.integers(-params.t, params.t + 1, size=params.n)
    noisy_reading = template + noise
    reproduced = fe.reproduce(noisy_reading, helper)
    assert reproduced == secret
    print(f"\nRep: noisy reading (max |noise| = {np.max(np.abs(noise))}) "
          f"reproduced R exactly: {reproduced == secret}")

    # --- impostor rejection -----------------------------------------------
    impostor = rng.integers(-params.half_range, params.half_range,
                            size=params.n, dtype=np.int64)
    try:
        fe.reproduce(impostor, helper)
        raise AssertionError("impostor must not reproduce the secret")
    except RecoveryError:
        print("Rep: unrelated reading rejected (RecoveryError) ✓")

    # --- tamper detection (the robust sketch at work) ----------------------
    tampered_movements = helper.movements.copy()
    tampered_movements[0] += 1 if tampered_movements[0] <= 0 else -1
    tampered = HelperData(movements=tampered_movements,
                          tag=helper.tag, seed=helper.seed)
    try:
        fe.reproduce(template, tampered)
        raise AssertionError("tampered helper data must be detected")
    except TamperDetectedError:
        print("Rep: modified helper data detected (TamperDetectedError) ✓")

    # --- security accounting (Theorem 3) -----------------------------------
    print(f"\nTheorem 3 at n={params.n}:")
    print(f"  source min-entropy  m  = {params.min_entropy_bits:,.0f} bits")
    print(f"  residual            m~ = {params.residual_entropy_bits:,.0f} bits")
    print(f"  entropy loss           = {params.entropy_loss_bits:,.0f} bits")
    print(f"  false-close bound      = 2^{params.false_close_bound_log2:.0f}")


if __name__ == "__main__":
    main()
