#!/usr/bin/env python3
"""Active attacks against helper data — and why the robust sketch matters.

The paper adopts Boyen et al.'s robust-sketch transform (Section IV-C)
precisely because "an active adversary can modify the helper data and no
security guarantees are provided in this case".  This example stages the
three Section VI adversary capabilities against a live deployment:

1. an eavesdropper on the device-server channel (sees only public data);
2. a man-in-the-middle rewriting helper data in transit;
3. an insider corrupting helper data at rest in the server database;
4. a replay attacker re-sending a captured response;

…and shows each one defeated.  It also demonstrates the counterfactual:
with the *plain* (non-robust) sketch, attack 2 silently corrupts the
recovered template — the attack the hash tag exists to stop.

Run:  python examples/tamper_detection.py
"""

import numpy as np

from repro.biometrics import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.core.sketch import ChebyshevSketch
from repro.crypto import Dsa, GROUP_1024
from repro.crypto.prng import HmacDrbg
from repro.protocols import (
    AuthenticationServer,
    BiometricDevice,
    DuplexLink,
    Eavesdropper,
    HelperDataTamperer,
    ReplayAttacker,
    run_enrollment,
    run_identification,
    tamper_stored_helper,
)
from repro.protocols.messages import IdentificationResponse, Message

N_USERS = 6
DIMENSION = 1000


def main() -> None:
    params = SystemParams.paper_defaults(n=DIMENSION)
    scheme = Dsa(GROUP_1024)
    population = UserPopulation(params, size=N_USERS,
                                noise=BoundedUniformNoise(params.t), seed=5)
    device = BiometricDevice(params, scheme, seed=b"device")
    server = AuthenticationServer(params, scheme, seed=b"server")
    for i, user_id in enumerate(population.user_ids()):
        run_enrollment(device, server, DuplexLink(), user_id,
                       population.template(i))
    print(f"deployment: {N_USERS} users enrolled\n")

    # --- 1. eavesdropping ----------------------------------------------------
    tap = Eavesdropper()
    link = DuplexLink()
    link.to_server.add_hook(tap.hook)
    link.to_device.add_hook(tap.hook)
    reading = population.genuine_reading(2)
    run = run_identification(device, server, link, reading)
    assert run.outcome.identified
    bio_bytes = reading.astype(">i8").tobytes()
    leaked = any(bio_bytes in frame for frame in tap.frames)
    print(f"[1] eavesdropper captured {len(tap.frames)} frames "
          f"({sum(len(f) for f in tap.frames):,} bytes)")
    print(f"    raw biometric present in any frame: {leaked} "
          f"(sketches/helper data are public by design)\n")

    # --- 2. in-transit helper-data tampering ----------------------------------
    tamperer = HelperDataTamperer(coordinate=0, delta=1)
    link = DuplexLink()
    link.to_device.add_hook(tamperer.hook)
    run = run_identification(device, server, link,
                             population.genuine_reading(1))
    print(f"[2] MITM rewrote helper data in transit "
          f"({tamperer.tampered_count} message modified)")
    print(f"    identification result: {run.outcome.identified} "
          f"— device's Rep detected the modified sketch and refused "
          f"to sign\n")

    # --- 3. insider tampering at rest ------------------------------------------
    tamper_stored_helper(server.store, "user-0003", coordinate=7, delta=2)
    run = run_identification(device, server, DuplexLink(),
                             population.genuine_reading(3))
    print(f"[3] insider corrupted user-0003's stored helper data")
    print(f"    victim's identification now fails closed: "
          f"identified={run.outcome.identified}")
    run = run_identification(device, server, DuplexLink(),
                             population.genuine_reading(4))
    print(f"    other users unaffected: user-0004 identified="
          f"{run.outcome.identified}\n")

    # --- 4. replay --------------------------------------------------------------
    attacker = ReplayAttacker()
    link = DuplexLink()
    link.to_server.add_hook(attacker.capture_hook)
    run = run_identification(device, server, link,
                             population.genuine_reading(5))
    assert run.outcome.identified and attacker.captured is not None
    # Later, the attacker opens a session and replays the old response.
    probe = device.probe_sketch(population.genuine_reading(5))
    server.handle_identification_request(probe)
    replayed = Message.decode(attacker.replay())
    assert isinstance(replayed, IdentificationResponse)
    outcome = server.handle_identification_response(replayed)
    print(f"[4] captured response replayed against a fresh session: "
          f"identified={outcome.identified} "
          f"(one-shot challenges kill replays)\n")

    # --- counterfactual: the plain sketch is silently malleable -----------------
    sketcher = ChebyshevSketch(params)
    template = population.template(0)
    sketch = sketcher.sketch(template, HmacDrbg(b"demo"))
    tampered = sketch.copy()
    tampered[0] += 1 if tampered[0] <= 0 else -1
    recovered = sketcher.recover(template, tampered)
    drift = int(np.sum(recovered != sketcher.line.reduce(template)))
    print(f"[!] counterfactual without the robust transform: the same "
          f"1-unit tamper makes plain Rec return a template differing in "
          f"{drift} coordinate(s) — silently.  The hash tag turns this "
          f"into a detected failure.")


if __name__ == "__main__":
    main()
