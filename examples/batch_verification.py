"""Randomized Schnorr batch verification in five minutes.

The identification protocol ends every lookup in a Schnorr check
``s*G == R + e*Q``.  Because that equation is linear, k checks collapse
into ONE multi-scalar multiplication under fresh random 128-bit weights
— and a forged member cannot hide: the aggregate breaks, bisection
isolates exactly the bad indices, and the honest rest still verify.

Run: PYTHONPATH=src python examples/batch_verification.py
"""

import time

from repro.crypto.signatures import VerifyTableCache, get_scheme

K = 24


def main() -> None:
    scheme = get_scheme("schnorr-p-256")
    message = b"challenge||nonce"
    keypairs = [scheme.keygen_from_seed(b"user-%02d" % i * 4)
                for i in range(K)]
    items = [(kp.verify_key, message,
              scheme.sign(kp.signing_key, message)) for kp in keypairs]
    tables = [scheme.precompute(kp.verify_key) for kp in keypairs]

    print(f"=== {K} honest signatures: one multi-scalar check ===")
    start = time.perf_counter()
    verdicts = scheme.verify_batch(items, tables=tables)
    batch_s = time.perf_counter() - start
    assert verdicts == [True] * K
    start = time.perf_counter()
    for (key, msg, sig), table in zip(items, tables):
        assert scheme.verify(key, msg, sig, table=table)
    single_s = time.perf_counter() - start
    print(f"batched {batch_s * 1e3:.1f} ms vs one-by-one "
          f"{single_s * 1e3:.1f} ms  (x{single_s / batch_s:.1f})")

    print(f"\n=== a forged signature cannot hide in the batch ===")
    forged = list(items)
    key, msg, sig = forged[7]
    forged[7] = (key, msg, sig[:-1] + bytes([sig[-1] ^ 1]))
    verdicts = scheme.verify_batch(forged, tables=tables)
    print(f"verdicts: {verdicts.count(True)} accepted, "
          f"forged index flagged: {verdicts.index(False)} (expected 7)")
    assert verdicts == [i != 7 for i in range(K)]

    print(f"\n=== the protocol layer reaches it through the table cache ===")
    cache = VerifyTableCache(capacity=64)
    cache.verify_batch(scheme, items)   # cold: keys seen once
    cache.verify_batch(scheme, items)   # tables built, batch runs warm
    stats = cache.stats()
    print(f"cache: {stats['batch_calls']} batch calls, "
          f"{stats['batch_items']} signatures, "
          f"{stats['batch_warm']} against warm tables")
    print("-> the service frontend coalesces concurrent verification "
          "responses\n   into exactly these calls (repro net-bench "
          "--verify-heavy)")


if __name__ == "__main__":
    main()
