"""Sketch lifecycle over the wire: enroll, rotate, revoke, then probe.

Run a journaled server first::

    python -m repro serve -n 64 --scheme dsa-512 --port 7430 \
        --journal --journal-dir lifecycle-store

then::

    python examples/sketch_lifecycle.py 7430 --mutate

enrolls a small population, rotates the first user's sketch (the old
version is burnt — superseded, no longer answering), revokes the
second user outright, and prints the identify/verify answer for every
user as JSON.

Without ``--mutate`` the script only probes.  Because every probe is
drawn from a per-user seeded RNG, two invocations ask byte-identical
questions — so the JSON from a probe-only run against a restarted
(e.g. ``repro compact``-ed) store can be ``diff``-ed against the
pre-restart answers: compaction rewrites the bytes on disk, never the
decisions.  The CI ``lifecycle-smoke`` job does exactly that.
"""

import argparse
import json

import numpy as np

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.crypto.signatures import get_scheme
from repro.net.client import RemoteEndpoint
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import RevokeRequest, RotateRequest
from repro.protocols.runners import run_enrollment, run_identification, \
    run_verification
from repro.protocols.transport import DuplexLink

N_USERS = 3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("port", type=int)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--mutate", action="store_true",
                        help="enroll the population, rotate user 0, "
                             "revoke user 1 before probing")
    args = parser.parse_args()

    params = SystemParams.paper_defaults(n=64)
    scheme = get_scheme("dsa-512")
    population = UserPopulation(params, size=N_USERS,
                                noise=BoundedUniformNoise(params.t), seed=7)
    device = BiometricDevice(params, scheme, seed=b"lifecycle-example")
    # One seeded RNG per probe: the same question no matter how many
    # times, or in what order, this script has run against the store.
    probes = [population.genuine_reading(i, rng=np.random.default_rng(100 + i))
              for i in range(N_USERS)]

    answers = {}
    with RemoteEndpoint.connect(args.host, args.port) as remote:
        if args.mutate:
            for i, user_id in enumerate(population.user_ids()):
                run = run_enrollment(device, remote, DuplexLink(), user_id,
                                     population.template(i))
                assert run.outcome.accepted, f"enrollment refused: {user_id}"
            # Rotate user 0: mint a fresh sketch of the same template and
            # supersede the original (it stops answering entirely).
            sub = device.enroll("user-0000", population.template(0))
            ack = remote.handle_rotate(RotateRequest(
                user_id=sub.user_id, verify_key=sub.verify_key,
                helper_data=sub.helper_data, supersede=True))
            assert ack.accepted, "rotate refused"
            # Revoke user 1 outright: every version goes dark.
            ack = remote.handle_revoke(RevokeRequest.make("user-0001"))
            assert ack.revoked_count() == 1, "revoke missed"

        for i, user_id in enumerate(population.user_ids()):
            ident = run_identification(device, remote, DuplexLink(),
                                       probes[i].copy())
            verify = run_verification(device, remote, DuplexLink(), user_id,
                                      probes[i].copy())
            answers[user_id] = {
                "identified_as": ident.outcome.user_id,
                "verified": verify.outcome.verified,
            }

    # The rotated user answers through the new sketch; the revoked one
    # answers nothing anywhere.
    assert answers["user-0000"]["identified_as"] == "user-0000"
    assert answers["user-0000"]["verified"]
    assert answers["user-0001"]["identified_as"] is None
    assert not answers["user-0001"]["verified"]
    assert answers["user-0002"]["identified_as"] == "user-0002"
    print(json.dumps(answers, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
