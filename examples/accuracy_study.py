#!/usr/bin/env python3
"""Accuracy study: how the threshold ``t`` trades FRR against FAR.

The paper fixes ``t = a = 100`` "for the simplicity" and notes that
recognition accuracy "significantly impacts the decision of biometric
systems" (Section I).  This example quantifies that trade-off on two
synthetic modalities:

* bounded-noise readings (the paper's workload) — perfect separation, so
  the scheme operates at FAR = FRR = 0 whenever noise <= t;
* fingerprint-like readings with sparse outliers — the Chebyshev metric
  rejects a reading if even ONE coordinate jumps, so FRR rises with the
  outlier rate; the study sweeps the geometry to show the usable band.

Also prints the dimension advisor: how many coordinates are needed for a
target false-accept exponent (Theorem 2's bound inverted).

Run:  python examples/accuracy_study.py
"""

import numpy as np

from repro.analysis import advise_dimension
from repro.biometrics import (
    FingerprintLikeDataset,
    UserPopulation,
    TruncatedGaussianNoise,
    equal_error_rate,
)
from repro.core.numberline import NumberLine
from repro.core.params import SystemParams

DIMENSION = 300
TRIALS = 60


def genuine_impostor_scores(params, dataset, rng, trials=TRIALS):
    """Chebyshev distances for genuine and impostor comparisons."""
    line = NumberLine(params)
    genuine, impostor = [], []
    n_users = dataset.n_users if hasattr(dataset, "n_users") else len(dataset)
    for trial in range(trials):
        user = trial % n_users
        genuine.append(line.chebyshev_distance(
            dataset.template(user), dataset.genuine_reading(user, rng)))
        impostor.append(line.chebyshev_distance(
            dataset.template(user), dataset.impostor_reading(rng)))
    return np.array(genuine, dtype=float), np.array(impostor, dtype=float)


def main() -> None:
    rng = np.random.default_rng(77)

    # --- the paper's workload: bounded noise ---------------------------------
    params = SystemParams.paper_defaults(n=DIMENSION)
    pop = UserPopulation(params, size=10,
                         noise=TruncatedGaussianNoise(sigma=40, clip=params.t),
                         seed=1)
    line = NumberLine(params)
    genuine = np.array([
        line.chebyshev_distance(pop.template(i % 10),
                                pop.genuine_reading(i % 10))
        for i in range(TRIALS)
    ], dtype=float)
    impostor = np.array([
        line.chebyshev_distance(pop.template(i % 10), pop.impostor_reading())
        for i in range(TRIALS)
    ], dtype=float)
    print("=== bounded/truncated noise (the paper's workload) ===")
    print(f"genuine  distances: max {genuine.max():6.0f}  "
          f"(accept iff <= t={params.t})")
    print(f"impostor distances: min {impostor.min():6.0f}")
    frr = float(np.mean(genuine > params.t))
    far = float(np.mean(impostor <= params.t))
    print(f"operating point at t={params.t}: FRR={frr:.3f} FAR={far:.3f} "
          f"(clean separation by construction)\n")

    # --- fingerprint-like: sparse outliers break Chebyshev -------------------
    print("=== fingerprint-like readings (sparse outliers) ===")
    print(f"{'outlier rate':>14}{'FRR@t':>10}{'FAR@t':>10}{'EER':>10}")
    for outlier_rate in (0.0, 0.001, 0.005, 0.02):
        dataset = FingerprintLikeDataset(
            n_users=10, params=params, base_jitter=60,
            outlier_rate=outlier_rate, seed=3,
        )
        genuine, impostor = genuine_impostor_scores(params, dataset, rng)
        frr = float(np.mean(genuine > params.t))
        far = float(np.mean(impostor <= params.t))
        eer, _ = equal_error_rate(genuine, impostor)
        print(f"{outlier_rate:>14.3f}{frr:>10.2f}{far:>10.2f}{eer:>10.2f}")
    print("    -> a single outlier coordinate rejects the whole reading: "
          "the L-infinity metric needs outlier-free features\n")

    # --- sizing the dimension for a security target ---------------------------
    print("=== dimension advisor (Theorem 2 bound inverted) ===")
    base = SystemParams.paper_defaults(n=1)
    for target_bits in (40, 80, 128):
        n = advise_dimension(base, target_collision_exponent=target_bits)
        sized = base.with_dimension(n)
        print(f"false-accept < 2^-{target_bits:<4} -> n >= {n:>4}  "
              f"(residual key entropy {sized.residual_entropy_bits:,.0f} bits)")
    print("\nthe paper's n=5000 gives a 2^-4968 false-close bound — "
          "overkill for matching, sized instead for key entropy")


if __name__ == "__main__":
    main()
