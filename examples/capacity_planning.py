#!/usr/bin/env python3
"""Capacity planning — what one authentication server core sustains.

The paper establishes that identification costs one challenge–response
regardless of database size; a deployment engineer's next question is
throughput.  This example drives the real protocol stack with a mixed
workload (genuine users, strangers, sensor glitches) at three database
sizes and prints a capacity table, then contrasts it with the normal
approach whose throughput *decays with enrollment*.

Run:  python examples/capacity_planning.py
"""

import time

from repro.biometrics import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.crypto import Dsa, GROUP_1024
from repro.protocols import (
    AuthenticationServer,
    BiometricDevice,
    DuplexLink,
    run_baseline_identification,
    run_enrollment,
)
from repro.protocols.simulation import TrafficMix, WorkloadSimulator

DIMENSION = 1000
REQUESTS = 60


def main() -> None:
    params = SystemParams.paper_defaults(n=DIMENSION)
    scheme = Dsa(GROUP_1024)

    print("=== proposed protocol: throughput vs database size ===")
    print(f"{'users':>8}{'req/s':>10}{'p50 ms':>9}{'p99 ms':>9}"
          f"{'genuine acc.':>14}")
    for n_users in (10, 50, 200):
        simulator = WorkloadSimulator(
            params, scheme, n_users=n_users,
            mix=TrafficMix(genuine=0.8, stranger=0.15, noisy_genuine=0.05),
            seed=n_users,
        )
        report = simulator.run(REQUESTS)
        genuine = report.per_class["genuine"]
        print(f"{n_users:>8}{report.throughput_rps:>10.0f}"
              f"{genuine.percentile(50):>9.1f}"
              f"{genuine.percentile(99):>9.1f}"
              f"{genuine.identified / genuine.requests:>14.1%}")
    print("-> flat: the sketch search adds microseconds per 1000 users\n")

    print("=== normal approach (Fig. 2) for contrast ===")
    print(f"{'users':>8}{'req/s':>10}")
    for n_users in (10, 50):
        population = UserPopulation(params, size=n_users,
                                    noise=BoundedUniformNoise(params.t),
                                    seed=n_users)
        device = BiometricDevice(params, scheme, seed=b"cap-dev")
        server = AuthenticationServer(params, scheme, seed=b"cap-srv")
        for i, user_id in enumerate(population.user_ids()):
            run_enrollment(device, server, DuplexLink(), user_id,
                           population.template(i))
        reps = 5
        start = time.perf_counter()
        for r in range(reps):
            run = run_baseline_identification(
                device, server, DuplexLink(),
                population.genuine_reading(r % n_users),
            )
            assert run.outcome.identified
        elapsed = time.perf_counter() - start
        print(f"{n_users:>8}{reps / elapsed:>10.1f}")
    print("-> decays ~1/N: every request replays Rep+Sign+Verify per record")


if __name__ == "__main__":
    main()
