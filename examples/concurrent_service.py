#!/usr/bin/env python3
"""Concurrent serving — many clients, one engine, one micro-batcher.

The paper makes a single identification cheap; a deployment needs many
of them *at once*.  This example stands up the full PR-1/2/3 stack —
sharded engine, warm verify tables, concurrent service frontend — and
drives it two ways with the same clients and the same database:

1. serial: one request at a time against the bare server;
2. concurrent: closed-loop client threads through the `ServiceFrontend`,
   whose batcher coalesces simultaneous probes into one batched sketch
   scan and fans signature checks out to its verify pool.

Then it abandons a batch of challenges on purpose to show the session
store's bounded-memory behaviour (the `identify-expired` audit trail).

Run:  python examples/concurrent_service.py
"""

import threading

from repro.biometrics import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.crypto import get_scheme
from repro.engine import IdentificationEngine
from repro.protocols import (
    AuthenticationServer,
    BiometricDevice,
    DuplexLink,
    run_enrollment,
    run_identification,
)
from repro.service import ServiceFrontend

DIMENSION = 128
N_USERS = 40
N_REQUESTS = 60
N_CLIENTS = 6


def main() -> None:
    params = SystemParams.paper_defaults(n=DIMENSION)
    scheme = get_scheme("dsa-1024")
    engine = IdentificationEngine(params, shards=4)
    server = AuthenticationServer(params, scheme, store=engine,
                                  seed=b"svc-example", max_sessions=64)
    population = UserPopulation(params, size=N_USERS,
                                noise=BoundedUniformNoise(params.t), seed=7)
    device = BiometricDevice(params, scheme, seed=b"svc-example-dev")

    print(f"enrolling {N_USERS} users into a {engine.stats().enrolled}-record "
          f"sharded engine…")
    for i, user_id in enumerate(population.user_ids()):
        assert run_enrollment(device, server, DuplexLink(), user_id,
                              population.template(i)).outcome.accepted

    work = [(i % N_USERS, population.genuine_reading(i % N_USERS))
            for i in range(N_REQUESTS)]

    print(f"\n=== serial: {N_REQUESTS} identifications, one at a time ===")
    import time
    start = time.perf_counter()
    for user, reading in work:
        run = run_identification(device, server, DuplexLink(), reading)
        assert run.outcome.user_id == population.user_ids()[user]
    serial_s = time.perf_counter() - start
    print(f"{N_REQUESTS / serial_s:,.0f} identifications/s")

    print(f"\n=== concurrent: {N_CLIENTS} clients through the frontend ===")
    devices = [BiometricDevice(params, scheme, seed=b"svc-cli%d" % c)
               for c in range(N_CLIENTS)]

    def client(c: int, frontend: ServiceFrontend) -> None:
        for user, reading in work[c::N_CLIENTS]:
            run = run_identification(devices[c], frontend, DuplexLink(),
                                     reading)
            assert run.outcome.user_id == population.user_ids()[user]

    with ServiceFrontend(server, batch_window_s=0.03,
                         batch_linger_s=0.003) as frontend:
        threads = [threading.Thread(target=client, args=(c, frontend))
                   for c in range(N_CLIENTS)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        concurrent_s = time.perf_counter() - start
        stats = frontend.stats()
    print(f"{N_REQUESTS / concurrent_s:,.0f} identifications/s "
          f"({stats.mean_batch:.1f} probes coalesced per batched scan)")
    print(f"-> the gap grows with the database: at 100k records the "
          f"batched scan wins >=3x (see `repro service-bench`)")

    print("\n=== abandoned challenges stay bounded ===")
    for _ in range(100):
        server.handle_identification_request(
            device.probe_sketch(population.genuine_reading(0)))
        # ...the device never responds.
    expired = len(server.audit_log(kind="identify-expired"))
    print(f"100 challenges abandoned: {server.outstanding_sessions()} "
          f"outstanding (cap 64), {expired} audited as identify-expired")


if __name__ == "__main__":
    main()
