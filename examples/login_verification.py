#!/usr/bin/env python3
"""Passwordless login — verification mode with face-like embeddings.

The paper's Section I motivation: "people can use their biometric instead
of password to perform authentication".  This example runs the 1:1
verification protocol with a claimed identity, using the face-embedding
dataset simulator as the feature source:

1. each user's embedding (512-d, unit norm) is quantised onto the number
   line;
2. enrollment derives a DSA key pair from the fuzzy-extractor output —
   the private key is never stored anywhere;
3. login re-reads the face, reproduces the key on the device, and
   answers the server's challenge.

Run:  python examples/login_verification.py
"""

import numpy as np

from repro.biometrics import FaceLikeDataset
from repro.core.params import SystemParams
from repro.crypto import Ecdsa
from repro.protocols import (
    AuthenticationServer,
    BiometricDevice,
    DuplexLink,
    run_enrollment,
    run_verification,
)

N_USERS = 10
EMBEDDING_DIM = 512


def main() -> None:
    # The threshold must absorb within-class embedding noise after
    # quantisation.  Face embeddings are far noisier than the paper's
    # bounded-noise workload, so the line is configured coarser: larger
    # unit a widens every interval (and the acceptable noise) while
    # keeping t < ka/2.
    params = SystemParams(a=3000, k=4, v=17, t=5000, n=EMBEDDING_DIM)
    scheme = Ecdsa()  # EC keys: 33-byte pk vs DSA's 128 bytes
    faces = FaceLikeDataset(n_users=N_USERS, dim=EMBEDDING_DIM,
                            within_class_sigma=0.12, seed=11)

    device = BiometricDevice(params, scheme, seed=b"laptop-camera")
    server = AuthenticationServer(params, scheme, seed=b"sso-server")

    print(f"Enrolling {N_USERS} users from {EMBEDDING_DIM}-d face "
          f"embeddings (quantised onto La)…")
    for i in range(N_USERS):
        user_id = f"user-{i:04d}"
        template = faces.template_on_line(i, params)
        run = run_enrollment(device, server, DuplexLink(), user_id, template)
        assert run.outcome.accepted

    rng = np.random.default_rng(23)

    # --- genuine logins -------------------------------------------------------
    accepted = 0
    attempts = 20
    for attempt in range(attempts):
        user = attempt % N_USERS
        reading = faces.genuine_on_line(user, params, rng)
        run = run_verification(device, server, DuplexLink(),
                               f"user-{user:04d}", reading)
        accepted += run.outcome.verified
    print(f"\ngenuine logins accepted: {accepted}/{attempts} "
          f"(embedding noise occasionally exceeds t — tune t/a for FRR)")

    # --- wrong user claiming someone else's account ---------------------------
    rejected = 0
    for attempt in range(attempts):
        claimed = attempt % N_USERS
        actual = (claimed + 1) % N_USERS
        reading = faces.genuine_on_line(actual, params, rng)
        run = run_verification(device, server, DuplexLink(),
                               f"user-{claimed:04d}", reading)
        rejected += not run.outcome.verified
    print(f"cross-user attempts rejected: {rejected}/{attempts}")

    # --- unknown account -------------------------------------------------------
    run = run_verification(device, server, DuplexLink(), "user-9999",
                           faces.genuine_on_line(0, params, rng))
    print(f"unknown account rejected: {not run.outcome.verified}")

    sample = run_verification(device, server, DuplexLink(), "user-0000",
                              faces.genuine_on_line(0, params, rng))
    print(f"\none login: {sample.compute_time_s * 1e3:.1f} ms compute, "
          f"{sample.wire_bytes:,} wire bytes, "
          f"{sample.messages} messages")


if __name__ == "__main__":
    main()
