"""Setuptools shim.

The container this reproduction targets ships setuptools without the
``wheel`` package, so PEP 660 editable installs fail.  Keeping a classic
``setup.py`` lets ``pip install -e .`` fall back to the legacy develop
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
