"""Ablation: server-side sketch search strategies.

The paper calls its identification search "constant" after
pre-computation.  This ablation quantifies the three implementations:

* ``naive``  — per-record Python loop over the conditions (no
  pre-computation; the strawman reading of Fig. 3's search);
* ``scan``   — numpy early-abort scan (our production default; the
  paper's "check whether s'_i is in the specific range" done in bulk);
* ``prefix`` — inverted bucket index (sub-linear candidate retrieval;
  pays off when t/ka is small).

The punchline the paper's "constant" rests on: at paper parameters the
scan costs microseconds per thousand records — far below the signature
round (device sign + server verify) that follows, so the protocol's
end-to-end cost is flat in practice.  The fast signature kernel (fixed-
base comb tables) has since pushed a lone DSA *sign* below the 5000-user
scan cost, so the comparison measures the full sign+verify crypto leg —
the constant the protocol actually pays per challenge.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.index import NaiveLoopIndex, PrefixBucketIndex, VectorizedScanIndex
from repro.core.params import SystemParams
from repro.core.sketch import ChebyshevSketch
from repro.crypto.prng import HmacDrbg

DIMENSION = 1000
DB_SIZES = [100, 1000, 5000]

_built: dict[tuple, tuple] = {}


def _build(index_kind: str, n_users: int):
    key = (index_kind, n_users)
    if key in _built:
        return _built[key]
    params = SystemParams.paper_defaults(n=DIMENSION)
    sketcher = ChebyshevSketch(params)
    rng = np.random.default_rng(42)
    factory = {
        "naive": lambda p: NaiveLoopIndex(p),
        "scan": lambda p: VectorizedScanIndex(p),
        "prefix": lambda p: PrefixBucketIndex(p, depth=8),
    }[index_kind]
    index = factory(params)
    target_template = None
    for i in range(n_users):
        template = sketcher.line.uniform_vector(rng)
        index.add(sketcher.sketch(template, HmacDrbg(i.to_bytes(4, "big"))))
        if i == n_users - 1:
            target_template = template
    noisy = sketcher.line.reduce(
        target_template + rng.integers(-params.t, params.t + 1, DIMENSION)
    )
    probe = sketcher.sketch(noisy, HmacDrbg(b"probe"))
    _built[key] = (index, probe, n_users - 1)
    return _built[key]


@pytest.mark.parametrize("n_users", DB_SIZES)
@pytest.mark.parametrize("index_kind", ["naive", "scan", "prefix"])
def test_bench_index_search(benchmark, index_kind, n_users):
    if index_kind == "naive" and n_users > 1000:
        pytest.skip("naive loop is quadratic-ish in wall time; capped")
    index, probe, expected = _build(index_kind, n_users)
    result = benchmark(index.search, probe)
    assert result == [expected]


def test_search_is_negligible_next_to_signature(benchmark, capsys):
    """The claim behind 'constant': search cost << one signature round."""
    search_ms, crypto_ms = benchmark.pedantic(_measure_search_vs_sign,
                                              rounds=1, iterations=1)
    with capsys.disabled():
        _print_search_vs_sign(search_ms, crypto_ms)


def _measure_search_vs_sign():
    # Constructed directly (not via the benchmarks conftest): a bare
    # ``import conftest`` resolves to whichever suite's conftest pytest
    # loaded last once several test roots are collected together.
    from repro.crypto.dsa import Dsa
    from repro.crypto.dsa_groups import GROUP_1024

    index, probe, expected = _build("scan", 5000)
    reps = 20
    start = time.perf_counter()
    for _ in range(reps):
        assert index.search(probe) == [expected]
    search_ms = (time.perf_counter() - start) / reps * 1e3

    # The crypto constant per challenge: the device signs, the server
    # verifies (cache-cold — the conservative serving cost).
    scheme = Dsa(GROUP_1024)
    keypair = scheme.keygen_from_seed(b"R" * 32)
    signature = scheme.sign(keypair.signing_key, b"challenge")
    start = time.perf_counter()
    for _ in range(reps):
        scheme.sign(keypair.signing_key, b"challenge")
        assert scheme.verify(keypair.verify_key, b"challenge", signature)
    crypto_ms = (time.perf_counter() - start) / reps * 1e3
    return search_ms, crypto_ms


def _print_search_vs_sign(search_ms, crypto_ms):
    print("\n=== Sketch search vs one signature round "
          "(5000-user DB, n=1000) ===")
    print(f"scan search: {search_ms:.3f} ms   "
          f"DSA sign + verify: {crypto_ms:.3f} ms "
          f"(x{crypto_ms / search_ms:.0f})")
    assert search_ms < crypto_ms, (
        "sketch search should be cheaper than a signature round"
    )
