"""Benchmark: the scale-out engine's batch/sharded search vs per-probe loops.

The engine exists so protocol layers stop looping Python-side per
request.  This bench quantifies what that buys at serving-shaped database
sizes (N = 10k and 100k sketches), comparing:

* ``loop``    — B independent ``VectorizedScanIndex.search`` calls,
* ``batch``   — one ``search_batch`` bitmask-LUT pass,
* ``sharded`` — one ``ShardedSketchIndex.search_batch`` across 4 shards,

and asserts the PR's acceptance floor: batch throughput >= 5x the
single-probe loop at N = 100k.  The workload uses a bench-sized dimension
(n = 128) so the 100k matrix stays ~50 MB; the kernels' relative cost is
dimension-independent once past the first pruning chunk.

Set ``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job does) to run the
same assertions at reduced database sizes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.index import VectorizedScanIndex
from repro.core.params import SystemParams
from repro.engine.bench import make_workload, run_engine_bench
from repro.engine.sharded import ShardedSketchIndex

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

DIMENSION = 128
N_PROBES = 64
DB_SIZES = [5_000] if SMOKE else [10_000, 100_000]
#: Database size for the batch-speedup acceptance floor.
FLOOR_RECORDS = 30_000 if SMOKE else 100_000

_built: dict[int, tuple] = {}


def _build(n_records: int):
    if n_records in _built:
        return _built[n_records]
    params = SystemParams.paper_defaults(n=DIMENSION)
    matrix, probes = make_workload(params, n_records, N_PROBES, seed=2017)
    flat = VectorizedScanIndex(params, capacity=n_records)
    flat.add_many(matrix)
    sharded = ShardedSketchIndex(params, shards=4)
    sharded.add_many(matrix)
    flat.search(probes[0])            # warm ufunc dispatch
    flat.search_batch(probes[:1])
    sharded.search_batch(probes[:1])
    _built[n_records] = (flat, sharded, probes)
    return _built[n_records]


@pytest.mark.parametrize("n_records", DB_SIZES)
def test_bench_single_probe_loop(benchmark, n_records):
    flat, _, probes = _build(n_records)
    result = benchmark.pedantic(
        lambda: [flat.search(probe) for probe in probes],
        rounds=2, iterations=1,
    )
    assert sum(len(r) for r in result) >= N_PROBES  # every probe planted


@pytest.mark.parametrize("n_records", DB_SIZES)
def test_bench_batch_kernel(benchmark, n_records):
    flat, _, probes = _build(n_records)
    result = benchmark.pedantic(lambda: flat.search_batch(probes),
                                rounds=3, iterations=1)
    assert sum(len(r) for r in result) >= N_PROBES


@pytest.mark.parametrize("n_records", DB_SIZES)
def test_bench_sharded_batch(benchmark, n_records):
    _, sharded, probes = _build(n_records)
    result = benchmark.pedantic(lambda: sharded.search_batch(probes),
                                rounds=3, iterations=1)
    assert sum(len(r) for r in result) >= N_PROBES


def test_batch_is_5x_single_probe_loop_at_100k(benchmark, capsys):
    """Acceptance floor: batch >= 5x loop throughput at N = 100k.

    ``run_engine_bench`` cross-checks all three modes for identical
    match sets while timing, so the speedup is parity-guaranteed.  The
    signature round-trip leg is included so the full Fig. 3 flow is
    exercised (timed separately — it does not dilute the search floor).
    """
    report = benchmark.pedantic(
        lambda: run_engine_bench(
            SystemParams.paper_defaults(n=DIMENSION),
            n_records=FLOOR_RECORDS, n_probes=N_PROBES, shards=4, seed=2017,
            sign_scheme="ecdsa-p-256",
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        for line in report.summary_lines():
            print(line)
    assert report.batch_speedup >= 5.0, (
        f"batch search only x{report.batch_speedup:.1f} over the "
        f"single-probe loop; the engine promises >= 5x at "
        f"N={FLOOR_RECORDS}"
    )
    assert report.sign_s is not None and report.verify_s is not None
