"""Dimension sweep (Section VII text).

Paper: "The dimension n of input data is selected from 1,000 to 31,000
... The result shows that dimensions have negligible impact to the
protocol performance."

"Negligible" holds for the paper because the protocol cost is dominated
by fixed-size public-key operations; the vector work (sketching, hashing,
range checks) is linear in n but tiny.  We reproduce the sweep and assert
the protocol time grows far more slowly than n.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import build_stack
from repro.core.params import SystemParams
from repro.protocols.runners import run_identification
from repro.protocols.transport import DuplexLink

DIMENSIONS = [1000, 5000, 11000, 21000, 31000]
N_USERS = 10

_stacks: dict[int, tuple] = {}


def _stack(dimension: int):
    if dimension not in _stacks:
        params = SystemParams.paper_defaults(n=dimension)
        _stacks[dimension] = build_stack(params, N_USERS, seed=dimension)
    return _stacks[dimension]


@pytest.mark.parametrize("dimension", DIMENSIONS)
def test_bench_identification_by_dimension(benchmark, dimension):
    device, server, population = _stack(dimension)

    def run_once():
        result = run_identification(
            device, server, DuplexLink(), population.genuine_reading(4)
        )
        assert result.outcome.identified
        return result

    benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)


def test_dimension_impact_is_sublinear(benchmark, capsys):
    times_ms = benchmark.pedantic(_collect_times, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Identification time vs dimension n (10 users) ===")
        print(f"{'n':>8}{'time (ms)':>14}")
        for dimension, ms in zip(DIMENSIONS, times_ms):
            print(f"{dimension:>8}{ms:>14.1f}")

    # n grows 31x; the paper reports flat timing because its per-protocol
    # cost was dominated by fixed-size public-key operations.  Our numpy
    # vector work (sketching, hashing and serialising 31000-coordinate
    # messages) is visible but strongly sublinear: ~6-7x time growth for
    # 31x dimension growth.  Assert sublinearity with headroom.
    growth = times_ms[-1] / times_ms[0]
    dimension_growth = DIMENSIONS[-1] / DIMENSIONS[0]
    assert growth < dimension_growth / 2.5, times_ms


def _collect_times():
    times_ms = []
    for dimension in DIMENSIONS:
        device, server, population = _stack(dimension)
        reps = 3
        start = time.perf_counter()
        for _ in range(reps):
            result = run_identification(
                device, server, DuplexLink(), population.genuine_reading(4)
            )
            assert result.outcome.identified
        times_ms.append((time.perf_counter() - start) / reps * 1e3)
    return times_ms
