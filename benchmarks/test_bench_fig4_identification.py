"""Fig. 4 reproduction: identification speed, proposed vs normal approach.

Paper (Fig. 4 + Section VII): the proposed protocol identifies a user in
~110 ms regardless of database size (close to the 99 ms verification
time), while the normal fuzzy-extractor approach grows linearly in the
number of enrolled users because it runs Rep + Sign + Verify per record.

Absolute times differ from the paper's 2015-era VM; the claims under test
are the *shapes*:

* proposed identification time is flat in N (slope consistent with 0
  within noise, and < 2% of the baseline's slope);
* the normal approach is linear in N;
* proposed identification ~ verification cost (checked in the
  verification bench).

The database dimension is n=2000 (paper sweeps 1000-31000 and reports the
dimension is immaterial; the dimension bench reproduces that claim).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import build_stack
from repro.core.params import SystemParams
from repro.protocols.runners import (
    run_baseline_identification,
    run_identification,
)
from repro.protocols.transport import DuplexLink

DB_SIZES = [1, 10, 25, 50, 100]
DIMENSION = 2000

_stacks: dict[int, tuple] = {}


def _stack(n_users: int):
    if n_users not in _stacks:
        params = SystemParams.paper_defaults(n=DIMENSION)
        _stacks[n_users] = build_stack(params, n_users, seed=n_users)
    return _stacks[n_users]


@pytest.mark.parametrize("n_users", DB_SIZES)
def test_bench_proposed_identification(benchmark, n_users):
    device, server, population = _stack(n_users)
    target = n_users - 1  # worst enrollment position for a linear scan

    def run_once():
        bio = population.genuine_reading(target)
        result = run_identification(device, server, DuplexLink(), bio)
        assert result.outcome.identified
        return result

    benchmark.pedantic(run_once, rounds=5, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("n_users", DB_SIZES)
def test_bench_baseline_identification(benchmark, n_users):
    device, server, population = _stack(n_users)
    target = n_users - 1

    def run_once():
        bio = population.genuine_reading(target)
        result = run_baseline_identification(
            device, server, DuplexLink(), bio
        )
        assert result.outcome.identified
        return result

    benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)


def test_fig4_shape_and_series(benchmark, capsys):
    """Series reproduction of the figure: print both series and assert
    the flat-vs-linear shape.  Wrapped in a single benchmark round so
    ``--benchmark-only`` runs include it."""
    def series():
        return _collect_series()

    proposed_ms, baseline_ms = benchmark.pedantic(series, rounds=1,
                                                  iterations=1)
    _report_series(proposed_ms, baseline_ms, capsys)


def _collect_series():
    proposed_ms = []
    baseline_ms = []
    for n_users in DB_SIZES:
        device, server, population = _stack(n_users)
        target = n_users - 1

        reps = 3
        start = time.perf_counter()
        for _ in range(reps):
            result = run_identification(
                device, server, DuplexLink(), population.genuine_reading(target)
            )
            assert result.outcome.identified
        proposed_ms.append((time.perf_counter() - start) / reps * 1e3)

        start = time.perf_counter()
        result = run_baseline_identification(
            device, server, DuplexLink(), population.genuine_reading(target)
        )
        assert result.outcome.identified
        baseline_ms.append((time.perf_counter() - start) * 1e3)
    return proposed_ms, baseline_ms


def _report_series(proposed_ms, baseline_ms, capsys):
    with capsys.disabled():
        _print_and_assert(proposed_ms, baseline_ms)


def _print_and_assert(proposed_ms, baseline_ms):
    print("\n=== Fig. 4: identification time vs database size ===")
    print(f"{'users':>8}{'proposed (ms)':>16}{'normal (ms)':>16}{'ratio':>10}")
    for n_users, p, b in zip(DB_SIZES, proposed_ms, baseline_ms):
        print(f"{n_users:>8}{p:>16.1f}{b:>16.1f}{b / p:>10.1f}x")

    slope_prop, _ = np.polyfit(DB_SIZES, proposed_ms, 1)
    slope_base, _ = np.polyfit(DB_SIZES, baseline_ms, 1)
    print(f"linear-fit slope: proposed {slope_prop:.3f} ms/user, "
          f"normal {slope_base:.3f} ms/user")

    # Shape assertions (the paper's claims):
    # 1. the normal approach is strongly linear in N;
    assert slope_base > 20 * abs(slope_prop) or slope_base > 1.0
    # 2. proposed time at N=100 is within 3x of N=1 (flat), while the
    #    baseline grows by well over an order of magnitude.
    assert proposed_ms[-1] < 3 * proposed_ms[0] + 5.0
    assert baseline_ms[-1] > 10 * baseline_ms[0]
