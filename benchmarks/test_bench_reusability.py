"""E9 — reusability of the succinct fuzzy extractor (extension).

Boyen [9] (paper Section VIII) showed generic fuzzy extractors can leak
cumulatively when one biometric is enrolled with many services.  This
bench settles the question for the paper's scheme by exact enumeration:

    H~(X | S_1, ..., S_m) = log2(v)   per coordinate, for every m,

including re-enrollments from noisy readings — i.e. the movement vectors
are perfectly reusable (the random-oracle tag caveat is documented in
``repro.analysis.reusability``).  The code-offset baseline's
cross-enrollment noise leakage is printed alongside as the contrast.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.reusability import (
    code_offset_reuse_leakage,
    residual_entropy_after_enrollments,
)
from repro.core.params import SystemParams

PARAMS = SystemParams(a=2, k=4, v=8, t=3, n=1)
ENROLLMENTS = [1, 2, 4, 8]


def test_reusability_report(benchmark, capsys):
    def enumerate_all():
        same = [
            residual_entropy_after_enrollments(PARAMS, m)
            for m in ENROLLMENTS
        ]
        noisy = [
            residual_entropy_after_enrollments(
                PARAMS, m, noise_offsets=tuple((i % 7) - 3 for i in range(m))
            )
            for m in ENROLLMENTS
        ]
        return same, noisy

    same, noisy = benchmark.pedantic(enumerate_all, rounds=1, iterations=1)
    expected = math.log2(PARAMS.v)

    with capsys.disabled():
        print("\n=== E9: residual entropy per coordinate after m enrollments ===")
        print(f"{'m':>4}{'same template':>16}{'noisy readings':>16}"
              f"{'log2(v)':>10}")
        for m, h_same, h_noisy in zip(ENROLLMENTS, same, noisy):
            print(f"{m:>4}{h_same:>16.4f}{h_noisy:>16.4f}{expected:>10.4f}")
        leak = code_offset_reuse_leakage(n_bits=255, flip_probability=0.1,
                                         enrollments=4)
        print(f"contrast — code-offset baseline, 4 noisy enrollments: "
              f"~{leak:.0f} bits of noise-difference signal exposed")

    for h in same + noisy:
        assert h == pytest.approx(expected, abs=1e-9), (
            "reusability broken: enrollments leak template entropy"
        )


@pytest.mark.parametrize("enrollments", ENROLLMENTS)
def test_bench_enumeration_cost(benchmark, enrollments):
    """Cost of the exact enumeration itself (grows with 2^boundaries)."""
    benchmark.pedantic(
        residual_entropy_after_enrollments, args=(PARAMS, enrollments),
        rounds=3, iterations=1,
    )
