"""False-close probability: Monte-Carlo vs the paper's closed form.

Theorem 2's discussion derives ``Pr[E] = ((2t+1)^n (v^n - 1)) / (kav)^n``
for the probability that two unrelated templates produce matching
sketches, and bounds it by ``((2t+1)/ka)^n``.  The probability is what
makes the O(1) sketch search *sound* — this experiment validates the
formula in the measurable regime (small n) so the paper-scale
extrapolation (2^-4968 at n=5000) rests on verified ground.
"""

from __future__ import annotations

import pytest

from repro.analysis.security import measure_false_close_rate
from repro.core.params import SystemParams

#: Geometry scaled so collisions are observable: (2t+1)/ka = 7/12 ~ 0.58.
SMALL = dict(a=3, k=4, v=6, t=3)

DIMENSIONS = [1, 2, 4, 8, 16]
TRIALS = 20_000


def test_false_close_monte_carlo_matches_formula(benchmark, capsys):
    rows = benchmark.pedantic(_measure_rows, rounds=1, iterations=1)
    with capsys.disabled():
        _print_and_check(rows)


def _measure_rows():
    return [
        (n, measure_false_close_rate(SystemParams(n=n, **SMALL),
                                     trials=TRIALS, seed=n))
        for n in DIMENSIONS
    ]


def _print_and_check(rows):
    print("\n=== False-close probability: measured vs closed form ===")
    print(f"{'n':>4}{'measured':>12}{'exact':>12}{'bound':>12}")
    for n, measured in rows:
        params = SystemParams(n=n, **SMALL)
        exact = params.false_close_probability()
        bound = params.false_close_bound
        print(f"{n:>4}{measured:>12.5f}{exact:>12.5f}{bound:>12.5f}")
        assert measured <= bound * 1.25 + 3e-3
        assert measured == pytest.approx(exact, abs=max(5e-3, 3 * exact ** 0.5
                                                        * TRIALS ** -0.5))

    paper = SystemParams.paper_defaults(n=5000)
    print(f"paper scale (n=5000): bound 2^{paper.false_close_bound_log2:.0f}"
          f" -> identification search is collision-free in practice")


@pytest.mark.parametrize("n", [1, 4, 16])
def test_bench_false_close_measurement(benchmark, n):
    params = SystemParams(n=n, **SMALL)
    benchmark.pedantic(
        measure_false_close_rate, args=(params, 2000),
        kwargs={"seed": n}, rounds=3, iterations=1,
    )
