"""E8 — geometry ablation: why the paper picks k = 4.

Section VII: "For an interval, there are at least 2 units, that is k = 2.
However, this setting cannot achieve constant identification ... the
value of k should be k ∈ {4, 6, ...}".

The trade-off swept here, at fixed unit ``a`` and threshold ``t = a``:

* **selectivity** — per-coordinate probability ``(2t+1)/ka`` that an
  unrelated sketch coordinate matches; drives how many coordinates the
  search must touch and how fast false-close decays;
* **entropy loss** — publishing the sketch costs ``n log2(ka)`` bits, so
  bigger ``k`` buys search selectivity with template entropy;
* **prefix-index candidates** — measured candidate-set size for the
  sub-linear index, which only works when selectivity is small.

k = 2 makes ``(2t+1)/ka`` > 0.5 with t = a — sketch matching barely
discriminates per coordinate (and t < a halves usable noise tolerance);
k = 4 is the first value with decent per-coordinate discrimination at
full noise tolerance, and each doubling beyond costs one more bit of
entropy loss per coordinate.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.index import PrefixBucketIndex, VectorizedScanIndex
from repro.core.params import SystemParams
from repro.core.sketch import ChebyshevSketch
from repro.crypto.prng import HmacDrbg

K_VALUES = [2, 4, 8, 16]
UNIT = 100
DIMENSION = 400
N_USERS = 500


def _params_for_k(k: int) -> SystemParams:
    # t = a when the interval admits it (k >= 4); k = 2 forces t < a.
    t = UNIT if k >= 4 else UNIT - 1
    # Hold the total range roughly fixed so entropy comparisons are fair.
    v = max(2, 2000 // k)
    return SystemParams(a=UNIT, k=k, v=v, t=t, n=DIMENSION)


def _measure_candidates(params: SystemParams, depth: int = 8) -> float:
    """Mean prefix-index candidate count over impostor probes."""
    sketcher = ChebyshevSketch(params)
    rng = np.random.default_rng(1)
    index = PrefixBucketIndex(params, depth=depth)
    for i in range(N_USERS):
        index.add(sketcher.sketch(sketcher.line.uniform_vector(rng),
                                  HmacDrbg(i.to_bytes(4, "big"))))
    # Instrument: count candidates the verification stage would scan.
    totals = []
    for trial in range(20):
        probe = sketcher.sketch(sketcher.line.uniform_vector(rng),
                                HmacDrbg(trial.to_bytes(4, "big") + b"p"))
        candidates: set[int] | None = None
        for d in range(index.depth):
            level: set[int] = set()
            for bucket in index._candidate_buckets(int(probe[d])):
                level.update(index._postings[d].get(bucket, ()))
            candidates = level if candidates is None else candidates & level
            if not candidates:
                break
        totals.append(len(candidates or ()))
    return float(np.mean(totals))


def test_geometry_ablation_report(benchmark, capsys):
    def sweep():
        rows = []
        for k in K_VALUES:
            params = _params_for_k(k)
            selectivity = (2 * params.t + 1) / params.interval_width
            bits_per_coord = -math.log2(selectivity)
            loss_per_coord = math.log2(params.interval_width)
            residual_per_coord = math.log2(params.v)
            candidates = _measure_candidates(params)
            rows.append((k, params.t, selectivity, bits_per_coord,
                         loss_per_coord, residual_per_coord, candidates))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    with capsys.disabled():
        print("\n=== E8: geometry ablation (a=100, t~a, range held fixed) ===")
        print(f"{'k':>4}{'t':>6}{'select.':>10}{'bits/coord':>12}"
              f"{'loss/coord':>12}{'resid/coord':>13}{'candidates':>12}")
        for k, t, sel, bits, loss, resid, cand in rows:
            print(f"{k:>4}{t:>6}{sel:>10.3f}{bits:>12.3f}{loss:>12.2f}"
                  f"{resid:>13.2f}{cand:>12.1f}")
        print(f"(candidates = mean prefix-index survivors over "
              f"{N_USERS}-user DB, impostor probes, depth 8)")

    by_k = {row[0]: row for row in rows}
    # k=2 gives near-unit selectivity: sketch matching barely discriminates.
    assert by_k[2][2] > 0.9
    # k=4 (the paper's choice) halves it; each doubling halves again.
    assert by_k[4][2] == pytest.approx(0.5, abs=0.01)
    assert by_k[8][2] == pytest.approx(0.25, abs=0.01)
    # The price: entropy loss grows one bit per doubling.
    assert by_k[8][4] - by_k[4][4] == pytest.approx(1.0, abs=0.01)
    # And the sub-linear index only becomes useful once selectivity drops.
    assert by_k[16][6] < by_k[4][6]


@pytest.mark.parametrize("k", K_VALUES)
def test_bench_scan_by_geometry(benchmark, k):
    """Scan cost is geometry-independent (selectivity only moves the
    constant); benchmarked per k for the record."""
    params = _params_for_k(k)
    sketcher = ChebyshevSketch(params)
    rng = np.random.default_rng(2)
    index = VectorizedScanIndex(params)
    for i in range(N_USERS):
        index.add(sketcher.sketch(sketcher.line.uniform_vector(rng),
                                  HmacDrbg(i.to_bytes(4, "big"))))
    probe = sketcher.sketch(sketcher.line.uniform_vector(rng),
                            HmacDrbg(b"probe"))
    benchmark(index.search, probe)
