"""Table II reproduction: implementation parameters and security figures.

Paper (Table II, Section VII)::

    a = 100, k = 4, v = 500, t = 100, n = 1000..31000
    Rep. Range  [-100000, 100000]
    m~ ~ 44,829 bits   (n = 5000)
    Storage ~ 45,000 bits  (n = 5000)
    Random Extractor: SHA256
    Signature: DSA

This bench prints every row next to our measured/computed value and
benchmarks the n=5000 primitives the table is parameterised around.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.security import security_report
from repro.core.extractor import SuccinctFuzzyExtractor
from repro.core.params import SystemParams
from repro.crypto.prng import HmacDrbg

PAPER_RESIDUAL_BITS = 44_829
PAPER_STORAGE_BITS = 45_000


@pytest.fixture(scope="module")
def params():
    return SystemParams.paper_defaults(n=5000)


@pytest.fixture(scope="module")
def fe(params):
    return SuccinctFuzzyExtractor(params)


@pytest.fixture(scope="module")
def template(params, bench_rng):
    return bench_rng.integers(-params.half_range, params.half_range,
                              size=params.n, dtype=np.int64)


class TestTable2Rows:
    def test_print_table2(self, benchmark, params, capsys):
        report = benchmark.pedantic(security_report, args=(params,),
                                    rounds=1, iterations=1)
        rows = dict(report.rows())
        lines = [
            "",
            "=== Table II: implementation parameters (paper vs this repo) ===",
            f"{'row':<28}{'paper':>22}{'ours':>22}",
            f"{'a':<28}{'100':>22}{rows['a']:>22}",
            f"{'k':<28}{'4':>22}{rows['k']:>22}",
            f"{'v':<28}{'500':>22}{rows['v']:>22}",
            f"{'t':<28}{'100':>22}{rows['t']:>22}",
            f"{'n':<28}{'1000-31000':>22}{'5000 (swept in fig4)':>22}",
            f"{'Rep. Range':<28}{'[-100000, 100000]':>22}"
            f"{rows['Rep. Range']:>22}",
            f"{'m~ (residual entropy)':<28}{'~44,829 bits':>22}"
            f"{rows['m~ (residual)']:>22}",
            f"{'Storage':<28}{'~45,000 bits':>22}{rows['storage']:>22}",
            f"{'Random Extractor':<28}{'SHA256':>22}{'SHA256':>22}",
            f"{'Signature':<28}{'DSA':>22}{'DSA-1024':>22}",
            f"{'false-close bound':<28}{'negligible':>22}"
            f"{dict(report.rows())['false-close bound']:>22}",
        ]
        with capsys.disabled():
            print("\n".join(lines))
        # Assertions: the quantitative rows must match the paper.
        assert report.residual_entropy_bits == pytest.approx(
            PAPER_RESIDUAL_BITS, abs=1.0
        )
        assert report.storage_bits == pytest.approx(
            PAPER_STORAGE_BITS, rel=0.05
        )

    def test_sketch_wire_size_matches_information_bound(self, benchmark,
                                                        fe, template):
        """The serialised sketch is within a small factor of the
        information-theoretic n*log2(ka+1) bound (we use fixed 8-byte
        words on the wire; the bound is what Table II reports)."""
        _, helper = benchmark.pedantic(fe.generate,
                                       args=(template, HmacDrbg(b"t2")),
                                       rounds=1, iterations=1)
        wire_bits = 8 * helper.storage_bytes()
        bound_bits = fe.params.storage_bits
        assert bound_bits < wire_bits < 8 * bound_bits


class TestTable2Primitives:
    """The primitive costs behind the table's n=5000 configuration."""

    def test_bench_gen_n5000(self, benchmark, fe, template):
        benchmark(fe.generate, template, HmacDrbg(b"bench"))

    def test_bench_rep_n5000(self, benchmark, fe, template, params, bench_rng):
        _, helper = fe.generate(template, HmacDrbg(b"bench"))
        noisy = (template + bench_rng.integers(
            -params.t, params.t + 1, size=params.n))
        noisy = fe.sketcher.line.reduce(noisy)
        result = benchmark(fe.reproduce, noisy, helper)
        assert result == fe.generate(template, HmacDrbg(b"bench"))[0]

    def test_bench_sketch_only_n5000(self, benchmark, fe, template):
        benchmark(fe.sketcher.sketch, template, HmacDrbg(b"bench"))

    def test_bench_recover_only_n5000(self, benchmark, fe, template):
        sketch = fe.sketcher.sketch(template, HmacDrbg(b"bench"))
        benchmark(fe.sketcher.recover, template, sketch)
