"""Primitive microbenchmarks: the cost model behind every protocol figure.

Breaks the protocol into its atoms — sketch, recover, extract, keygen,
sign, verify — so the Fig. 4 flat line can be read off as "one of each",
and the baseline's slope as "Rep + Sign + Verify per record".  Also
compares the three signature back-ends (the paper uses DSA; EC schemes
are the modern drop-ins).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.extractor import SuccinctFuzzyExtractor
from repro.core.params import SystemParams
from repro.crypto.prng import HmacDrbg
from repro.crypto.signatures import get_scheme

DIMENSIONS = [1000, 5000, 31000]
SCHEMES = ["dsa-1024", "dsa-2048", "ecdsa-p-256", "schnorr-p-256"]


@pytest.mark.parametrize("dimension", DIMENSIONS)
class TestSketchPrimitives:
    def _fixture(self, dimension):
        params = SystemParams.paper_defaults(n=dimension)
        fe = SuccinctFuzzyExtractor(params)
        rng = np.random.default_rng(dimension)
        template = fe.sketcher.line.uniform_vector(rng)
        noisy = fe.sketcher.line.reduce(
            template + rng.integers(-params.t, params.t + 1, dimension)
        )
        return fe, template, noisy

    def test_bench_ss(self, benchmark, dimension):
        fe, template, _ = self._fixture(dimension)
        benchmark(fe.sketcher.sketch, template, HmacDrbg(b"b"))

    def test_bench_rec(self, benchmark, dimension):
        fe, template, noisy = self._fixture(dimension)
        sketch = fe.sketcher.sketch(template, HmacDrbg(b"b"))
        result = benchmark(fe.sketcher.recover, noisy, sketch)
        assert np.array_equal(result, fe.sketcher.line.reduce(template))

    def test_bench_gen(self, benchmark, dimension):
        fe, template, _ = self._fixture(dimension)
        benchmark(fe.generate, template, HmacDrbg(b"b"))

    def test_bench_rep(self, benchmark, dimension):
        fe, template, noisy = self._fixture(dimension)
        secret, helper = fe.generate(template, HmacDrbg(b"b"))
        result = benchmark(fe.reproduce, noisy, helper)
        assert result == secret


@pytest.mark.parametrize("scheme_name", SCHEMES)
class TestSignaturePrimitives:
    def test_bench_keygen(self, benchmark, scheme_name):
        scheme = get_scheme(scheme_name)
        benchmark(scheme.keygen_from_seed, b"R" * 32)

    def test_bench_sign(self, benchmark, scheme_name):
        scheme = get_scheme(scheme_name)
        keypair = scheme.keygen_from_seed(b"R" * 32)
        benchmark(scheme.sign, keypair.signing_key, b"challenge")

    def test_bench_verify(self, benchmark, scheme_name):
        scheme = get_scheme(scheme_name)
        keypair = scheme.keygen_from_seed(b"R" * 32)
        signature = scheme.sign(keypair.signing_key, b"challenge")
        assert benchmark(scheme.verify, keypair.verify_key, b"challenge",
                         signature)
