"""Verification-mode latency (Section VII text).

Paper: "one protocol execution for user verification needs 99
milliseconds (n = 5000)" and identification "is around 110 milliseconds
which is close to the speed in verification mode".

Absolute numbers are hardware-bound; the reproduced claim is the
*relationship*: identification cost ~ verification cost (within a small
factor), because both reduce to one Rep + one signature round.
"""

from __future__ import annotations

import time

import pytest

from conftest import build_stack
from repro.core.params import SystemParams
from repro.protocols.runners import run_identification, run_verification
from repro.protocols.transport import DuplexLink

N_USERS = 20
DIMENSION = 5000


@pytest.fixture(scope="module")
def stack():
    return build_stack(SystemParams.paper_defaults(n=DIMENSION), N_USERS)


def test_bench_verification_n5000(benchmark, stack):
    device, server, population = stack

    def run_once():
        result = run_verification(
            device, server, DuplexLink(), "user-0007",
            population.genuine_reading(7),
        )
        assert result.outcome.verified
        return result

    benchmark.pedantic(run_once, rounds=5, iterations=1, warmup_rounds=1)


def test_bench_identification_n5000(benchmark, stack):
    device, server, population = stack

    def run_once():
        result = run_identification(
            device, server, DuplexLink(), population.genuine_reading(7)
        )
        assert result.outcome.identified
        return result

    benchmark.pedantic(run_once, rounds=5, iterations=1, warmup_rounds=1)


def test_identification_close_to_verification(benchmark, stack, capsys):
    device, server, population = stack
    reps = 5

    def measure():
        start = time.perf_counter()
        for _ in range(reps):
            result = run_verification(device, server, DuplexLink(),
                                      "user-0003",
                                      population.genuine_reading(3))
            assert result.outcome.verified
        verify = (time.perf_counter() - start) / reps * 1e3
        start = time.perf_counter()
        for _ in range(reps):
            result = run_identification(device, server, DuplexLink(),
                                        population.genuine_reading(3))
            assert result.outcome.identified
        identify = (time.perf_counter() - start) / reps * 1e3
        return verify, identify

    verify_ms, identify_ms = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)

    with capsys.disabled():
        print("\n=== Verification vs identification (n=5000, 20 users) ===")
        print(f"paper:  verification 99 ms, identification ~110 ms "
              f"(ratio 1.11)")
        print(f"ours:   verification {verify_ms:.1f} ms, identification "
              f"{identify_ms:.1f} ms (ratio {identify_ms / verify_ms:.2f})")

    # The paper's ratio is 110/99 ~ 1.11; allow generous slack for the
    # sketch-search overhead on different hardware, but identification
    # must remain the same order of magnitude as verification.
    assert identify_ms < 3.0 * verify_ms
