"""Benchmark: observability must cost <= 5% of service throughput.

The obs layer's contract is "near-zero cost": every counter increment,
histogram observation, and span record first checks a shared ``enabled``
flag, so the *instrumented* service bench may run at most 5% slower than
the *disabled* one — the PR's acceptance bound.  The harness is
:func:`repro.service.bench.run_obs_overhead_bench`: identical sizes and
seeds, obs toggled between passes, fastest-of-N per mode so scheduler
noise does not masquerade as overhead.

Sizes here stay deliberately small — the bound is about the obs layer's
per-event cost, which is independent of database scale, and small runs
keep the repeat count affordable.
"""

from __future__ import annotations

from repro.service.bench import run_obs_overhead_bench

OVERHEAD_CEILING = 0.05


def test_obs_overhead_within_five_percent(benchmark, capsys):
    report = benchmark.pedantic(
        lambda: run_obs_overhead_bench(
            repeats=3, n_users=5_000, n_requests=64, clients=8,
            verify_requests=32, seed=2017),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        for line in report.summary_lines():
            print(line)
    assert report.overhead_frac <= OVERHEAD_CEILING, (
        f"observability costs {report.overhead_frac * 100:.1f}% of service "
        f"throughput; the obs layer promises <= {OVERHEAD_CEILING * 100:.0f}%"
    )
    # The comparison must be real: the instrumented pass actually
    # recorded per-stage histograms and the disabled pass recorded none.
    assert set(report.instrumented.stage_latency_ms) >= \
        {"queue-wait", "batch-wait", "scan", "verify"}
    assert report.disabled.stage_latency_ms == {}


def test_overhead_report_row_pair_is_trajectory_ready(tmp_path):
    """The --obs-overhead CLI appends two tagged, strictly-JSON rows."""
    import json

    from repro.service.bench import run_obs_overhead_bench, write_trajectory

    report = run_obs_overhead_bench(n_users=64, pool_users=4, n_requests=8,
                                    clients=2, verify_requests=0, seed=1)
    path = tmp_path / "BENCH_service.json"
    write_trajectory(report.instrumented, path, extra={"obs": "instrumented"})
    write_trajectory(report.disabled, path, extra={"obs": "disabled"})
    runs = json.loads(path.read_text())["runs"]
    assert [r["obs"] for r in runs] == ["instrumented", "disabled"]
    # NaN coalescing-factor fields from the disabled pass must have been
    # scrubbed — a strict parser already proved it, but pin the value.
    assert runs[1]["mean_batch"] == 0.0 or runs[1]["mean_batch"] > 0
