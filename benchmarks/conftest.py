"""Shared fixtures for the benchmark suite.

Benchmarks are pytest-benchmark tests; run them with::

    pytest benchmarks/ --benchmark-only

Protocol-level benches use ``benchmark.pedantic`` with a small round count
because a single baseline-identification round at a 100-user database is
itself hundreds of signature operations.

Stacks are built once per module (scope="module") — enrollment of a
5000-dimension population is itself seconds of work and is benchmarked
separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.crypto.dsa import Dsa
from repro.crypto.dsa_groups import GROUP_1024
from repro.protocols.device import BiometricDevice
from repro.protocols.runners import run_enrollment
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink


def paper_scheme() -> Dsa:
    """DSA with paper-era parameters (Table II: 'DSA')."""
    return Dsa(GROUP_1024)


def build_stack(params: SystemParams, n_users: int, seed: int = 0):
    """Enroll ``n_users`` synthetic users; returns (device, server, population)."""
    scheme = paper_scheme()
    population = UserPopulation(
        params, size=n_users, noise=BoundedUniformNoise(params.t), seed=seed
    )
    device = BiometricDevice(params, scheme, seed=b"bench-device")
    server = AuthenticationServer(params, scheme, seed=b"bench-server")
    for i, user_id in enumerate(population.user_ids()):
        run = run_enrollment(device, server, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted
    return device, server, population


@pytest.fixture(scope="module")
def bench_rng():
    return np.random.default_rng(2017)
