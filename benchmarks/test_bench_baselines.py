"""Ablation: baseline fuzzy extractors vs the proposed scheme.

Positions the paper's contribution against the related-work constructions
(Section VIII): the BCH-backed code-offset extractor (Juels-Wattenberg)
and the RS-backed fuzzy vault (Juels-Sudan).

Two comparisons:

* primitive cost — Gen/Rep (lock/unlock) per scheme;
* identification cost — what an identification round costs when the
  database must be searched by running each scheme's Rep per record
  (the only option for Hamming/set-difference helpers, which expose
  nothing searchable), vs the proposed scheme's sketch search.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.fuzzy_vault import FuzzyVault
from repro.baselines.hamming_extractor import HammingFuzzyExtractor
from repro.coding.bch import BchCode
from repro.core.extractor import SuccinctFuzzyExtractor
from repro.core.index import VectorizedScanIndex
from repro.core.params import SystemParams
from repro.core.sketch import ChebyshevSketch
from repro.crypto.prng import HmacDrbg
from repro.exceptions import RecoveryError

N_USERS = 50


@pytest.fixture(scope="module")
def hamming_fe():
    return HammingFuzzyExtractor(BchCode(8, 20))  # n=255 bits, t=20


@pytest.fixture(scope="module")
def chebyshev_fe():
    return SuccinctFuzzyExtractor(SystemParams.paper_defaults(n=2000))


@pytest.fixture(scope="module")
def vault_scheme():
    return FuzzyVault(m=16, k=8, n_chaff=300)


class TestPrimitiveCosts:
    def test_bench_chebyshev_gen(self, benchmark, chebyshev_fe, bench_rng):
        params = chebyshev_fe.params
        template = bench_rng.integers(-params.half_range, params.half_range,
                                      size=params.n, dtype=np.int64)
        benchmark(chebyshev_fe.generate, template, HmacDrbg(b"c"))

    def test_bench_hamming_gen(self, benchmark, hamming_fe, bench_rng):
        template = bench_rng.integers(0, 2, size=hamming_fe.n, dtype=np.uint8)
        benchmark(hamming_fe.generate, template, HmacDrbg(b"h"))

    def test_bench_hamming_rep(self, benchmark, hamming_fe, bench_rng):
        template = bench_rng.integers(0, 2, size=hamming_fe.n, dtype=np.uint8)
        secret, helper = hamming_fe.generate(template, HmacDrbg(b"h"))
        noisy = template.copy()
        noisy[bench_rng.choice(hamming_fe.n, size=hamming_fe.t,
                               replace=False)] ^= 1
        result = benchmark(hamming_fe.reproduce, noisy, helper)
        assert result == secret

    def test_bench_vault_lock(self, benchmark, vault_scheme, bench_rng):
        features = bench_rng.choice(2 ** 16, size=40, replace=False
                                    ).astype(np.int64)
        secret = vault_scheme.secret_from_bytes(b"vault-secret")
        benchmark(vault_scheme.lock, features, secret, HmacDrbg(b"v"))

    def test_bench_vault_unlock(self, benchmark, vault_scheme, bench_rng):
        features = bench_rng.choice(2 ** 16, size=40, replace=False
                                    ).astype(np.int64)
        secret = vault_scheme.secret_from_bytes(b"vault-secret")
        vault = vault_scheme.lock(features, secret, HmacDrbg(b"v"))
        query = features[:32]
        result = benchmark(vault_scheme.unlock, query, vault)
        assert result == secret

    def test_bench_concatenated_gen(self, benchmark, bench_rng):
        """Iris-scale concatenated (BCH ∘ RS) extractor: full 2032 bits."""
        from repro.baselines.block_code_offset import (
            ConcatenatedCodeOffsetExtractor,
        )
        from repro.coding.bch import BchCode

        fe = ConcatenatedCodeOffsetExtractor(BchCode(7, 13), 16, 8)
        template = bench_rng.integers(0, 2, size=fe.template_bits,
                                      dtype=np.uint8)
        benchmark(fe.generate, template, HmacDrbg(b"cc"))

    def test_bench_concatenated_rep(self, benchmark, bench_rng):
        from repro.baselines.block_code_offset import (
            ConcatenatedCodeOffsetExtractor,
        )
        from repro.coding.bch import BchCode

        fe = ConcatenatedCodeOffsetExtractor(BchCode(7, 13), 16, 8)
        template = bench_rng.integers(0, 2, size=fe.template_bits,
                                      dtype=np.uint8)
        secret, helper = fe.generate(template, HmacDrbg(b"cc"))
        noisy = template.copy()
        noisy[bench_rng.choice(fe.template_bits, size=120,
                               replace=False)] ^= 1
        result = benchmark(fe.reproduce, noisy, helper)
        assert result == secret


class TestIdentificationGap:
    """The motivating gap: per-record Rep scan vs sketch search."""

    def test_hamming_identification_is_linear(self, benchmark, hamming_fe,
                                              bench_rng, capsys):
        def measure():
            return self._measure_gap(hamming_fe, bench_rng)

        scan_ms, search_ms, rep_calls, found, matches = benchmark.pedantic(
            measure, rounds=1, iterations=1)
        assert found == N_USERS - 1
        assert rep_calls == N_USERS
        assert matches == [N_USERS - 1]
        with capsys.disabled():
            print(f"\n=== Identification search over {N_USERS} users ===")
            print(f"Hamming FE (Rep per record): {scan_ms:8.2f} ms, "
                  f"{rep_calls} Rep calls")
            print(f"Proposed (sketch search):    {search_ms:8.2f} ms, "
                  f"0 Rep calls")
            print(f"speedup: {scan_ms / max(search_ms, 1e-6):.0f}x")
        assert search_ms < scan_ms

    @staticmethod
    def _measure_gap(hamming_fe, bench_rng):
        # Enroll N users with the Hamming FE.
        helpers = []
        secrets = []
        templates = []
        for i in range(N_USERS):
            template = bench_rng.integers(0, 2, size=hamming_fe.n,
                                          dtype=np.uint8)
            secret, helper = hamming_fe.generate(
                template, HmacDrbg(i.to_bytes(4, "big"))
            )
            templates.append(template)
            helpers.append(helper)
            secrets.append(secret)

        # Identification of the last-enrolled user = exhaustive Rep scan.
        probe = templates[-1].copy()
        probe[bench_rng.choice(hamming_fe.n, size=5, replace=False)] ^= 1

        start = time.perf_counter()
        found = None
        rep_calls = 0
        for i, helper in enumerate(helpers):
            rep_calls += 1
            try:
                if hamming_fe.reproduce(probe, helper) == secrets[i]:
                    found = i
                    break
            except RecoveryError:
                continue
        scan_ms = (time.perf_counter() - start) * 1e3

        # The proposed scheme's search over the same population size.
        params = SystemParams.paper_defaults(n=2000)
        sketcher = ChebyshevSketch(params)
        index = VectorizedScanIndex(params)
        rng = np.random.default_rng(7)
        last_template = None
        for i in range(N_USERS):
            last_template = sketcher.line.uniform_vector(rng)
            index.add(sketcher.sketch(last_template,
                                      HmacDrbg(i.to_bytes(4, "big") + b"c")))
        noisy = sketcher.line.reduce(
            last_template + rng.integers(-params.t, params.t + 1, params.n)
        )
        sketch_probe = sketcher.sketch(noisy, HmacDrbg(b"probe"))
        start = time.perf_counter()
        matches = index.search(sketch_probe)
        search_ms = (time.perf_counter() - start) * 1e3
        return scan_ms, search_ms, rep_calls, found, matches

    def test_bench_hamming_rep_scan_50_users(self, benchmark, hamming_fe,
                                             bench_rng):
        helpers = []
        templates = []
        for i in range(N_USERS):
            template = bench_rng.integers(0, 2, size=hamming_fe.n,
                                          dtype=np.uint8)
            _, helper = hamming_fe.generate(template,
                                            HmacDrbg(i.to_bytes(4, "big")))
            templates.append(template)
            helpers.append(helper)
        probe = templates[-1]

        def scan():
            hits = 0
            for helper in helpers:
                try:
                    hamming_fe.reproduce(probe, helper)
                    hits += 1
                except RecoveryError:
                    continue
            return hits

        assert benchmark.pedantic(scan, rounds=3, iterations=1) == 1
