"""Benchmark: concurrent micro-batched serving vs the serial loop.

The service layer exists so concurrent identification traffic stops
paying one full sketch scan per request.  This bench drives the
closed-loop harness behind ``repro service-bench`` — the same engine and
signature scheme serving (a) one client calling the server directly, one
request at a time, and (b) ``clients`` closed-loop threads through the
:class:`~repro.service.frontend.ServiceFrontend` — and asserts the PR's
acceptance floor: at serving scale (100k enrolled records, well past the
criterion's 50k), the micro-batched frontend sustains >= 3x the
identifications/sec of the serial loop.  Every identification in both
phases is checked to land on the presented user, so the speedup is
parity-guaranteed.

Set ``REPRO_BENCH_SMOKE=1`` (the CI service-smoke job does) to run the
same harness at reduced sizes; the floor drops with the database size
because the scan the batcher amortises is exactly what shrinks (at 30k
records the fixed crypto cost dominates, so >= 1.25x is the honest
bound there).
"""

from __future__ import annotations

import os

from repro.service.bench import run_service_bench

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: (n_users, n_requests, clients, speedup floor) per mode.
N_USERS = 30_000 if SMOKE else 100_000
N_REQUESTS = 128 if SMOKE else 256
CLIENTS = 16 if SMOKE else 32
SPEEDUP_FLOOR = 1.25 if SMOKE else 3.0


def test_frontend_speedup_floor(benchmark, capsys):
    """Acceptance floor: micro-batched frontend >= 3x the serial loop
    (>= 1.25x at smoke sizes) on one engine, one scheme."""
    report = benchmark.pedantic(
        lambda: run_service_bench(n_users=N_USERS, n_requests=N_REQUESTS,
                                  clients=CLIENTS, seed=2017),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        for line in report.summary_lines():
            print(line)
    assert report.speedup >= SPEEDUP_FLOOR, (
        f"frontend only x{report.speedup:.2f} over the serial loop at "
        f"N={N_USERS}; the service layer promises >= {SPEEDUP_FLOOR}x"
    )
    # The speedup must come from real coalescing, not timer noise.
    assert report.mean_batch >= CLIENTS / 2
    assert report.frontend_latency_ms[0] > 0
