"""Benchmark: the rebuilt signature kernel vs the retained affine reference.

The signature back-end dominates end-to-end identification once the
sketch search is sublinear (paper Table II), so the crypto kernel carries
the serving latency.  This suite times the kernel's layers and asserts
the PR's acceptance floors:

* Jacobian/wNAF scalar multiplication on the protocol hot path (the
  fixed-base generator mult that keygen and signing perform) >= 8x the
  retained affine double-and-add reference;
* precomputed-table verification >= 5x the cold affine reference verify
  for both EC schemes (DSA's fixed-base tables get a smaller floor — its
  cold baseline is builtin C ``pow``, not Python affine arithmetic).

``run_crypto_bench`` parity-checks every fast path against the reference
implementations while timing, so a reported speedup can never come from a
wrong answer.  The acceptance run also appends to the ``BENCH_crypto.json``
trajectory artifact at the repo root.

Set ``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job does) to run the same
assertions at reduced iteration counts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.crypto.bench import run_crypto_bench, write_trajectory
from repro.crypto.ec import P256
from repro.crypto.signatures import get_scheme

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

ITERATIONS = 3 if SMOKE else 8
IDENTIFY_USERS = 4 if SMOKE else 8
IDENTIFY_REQUESTS = 4 if SMOKE else 8
EC_SCHEMES = ["ecdsa-p-256", "schnorr-p-256"]


@pytest.fixture(scope="module")
def warm_curve():
    """P-256 with the comb and generator tables built outside the timers."""
    P256.multiply_base(1)
    P256.shamir_multiply(1, 1, P256.generator)
    return P256


class TestBenchScalarMult:
    K = 0x1CE1522F374F3AA2CE1522F374F3AA2C5D1522F374F3AA2CE1522F374F3AA2C5

    def test_bench_affine_reference(self, benchmark, warm_curve):
        benchmark.pedantic(
            lambda: warm_curve.multiply_affine(self.K, warm_curve.generator),
            rounds=1 if SMOKE else 2, iterations=1,
        )

    def test_bench_fixed_base(self, benchmark, warm_curve):
        result = benchmark(warm_curve.multiply, self.K, warm_curve.generator)
        assert not result.is_infinity

    def test_bench_wnaf_variable_point(self, benchmark, warm_curve):
        q = warm_curve.multiply(7, warm_curve.generator)
        result = benchmark(warm_curve.multiply, self.K, q)
        assert not result.is_infinity

    def test_bench_shamir_warm_table(self, benchmark, warm_curve):
        q = warm_curve.multiply(7, warm_curve.generator)
        table = warm_curve.precompute_table(q)
        result = benchmark(warm_curve.shamir_multiply, self.K, self.K + 1,
                           table=table)
        assert not result.is_infinity


@pytest.mark.parametrize("scheme_name", EC_SCHEMES + ["dsa-1024"])
class TestBenchVerifyPaths:
    def _fixture(self, scheme_name):
        scheme = get_scheme(scheme_name)
        keypair = scheme.keygen_from_seed(b"bench" * 8)
        signature = scheme.sign(keypair.signing_key, b"challenge")
        table = scheme.precompute(keypair.verify_key)
        return scheme, keypair, signature, table

    def test_bench_verify_cold_reference(self, benchmark, scheme_name):
        scheme, keypair, signature, _ = self._fixture(scheme_name)
        assert benchmark.pedantic(
            lambda: scheme.verify_reference(keypair.verify_key, b"challenge",
                                            signature),
            rounds=1 if SMOKE else 2, iterations=1,
        )

    def test_bench_verify_warm_table(self, benchmark, scheme_name):
        scheme, keypair, signature, table = self._fixture(scheme_name)
        assert benchmark(scheme.verify, keypair.verify_key, b"challenge",
                         signature, table)


def test_kernel_speedup_floors(benchmark, capsys):
    """Acceptance floors: >= 8x scalar mult, >= 5x warm-table EC verify.

    One ``run_crypto_bench`` pass measures everything (parity-checked
    against the reference implementations while timed) and appends the
    run to the BENCH_crypto.json trajectory.
    """
    report = benchmark.pedantic(
        lambda: run_crypto_bench(
            iterations=ITERATIONS,
            identify_users=IDENTIFY_USERS,
            identify_requests=IDENTIFY_REQUESTS,
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        for line in report.summary_lines():
            print(line)
    write_trajectory(report, Path(__file__).resolve().parents[1]
                     / "BENCH_crypto.json")

    assert report.scalar_mult_speedup >= 8.0, (
        f"fixed-base wNAF/Jacobian scalar mult only "
        f"x{report.scalar_mult_speedup:.1f} over the affine reference; "
        f"the kernel promises >= 8x"
    )
    for name in EC_SCHEMES:
        speedup = report.verify_speedup(name)
        assert speedup >= 5.0, (
            f"{name} warm-table verify only x{speedup:.1f} over the cold "
            f"affine reference; the kernel promises >= 5x"
        )
    # DSA's cold baseline is builtin C pow, so the honest floor is lower.
    assert report.verify_speedup("dsa-1024") >= 2.5
    # Loose sanity bound only — each pass is a handful of requests, so the
    # ratio is noisy; this catches "caching made identification terrible",
    # not jitter.  The ratio itself is recorded in BENCH_crypto.json.
    identify = report.identify["ecdsa-p-256"]
    assert identify["identify_warm"] <= identify["identify_cold"] * 3.0
