"""Benchmark: the rebuilt signature kernel vs the retained affine reference.

The signature back-end dominates end-to-end identification once the
sketch search is sublinear (paper Table II), so the crypto kernel carries
the serving latency.  This suite times the kernel's layers and asserts
the PR's acceptance floors:

* Jacobian/wNAF scalar multiplication on the protocol hot path (the
  fixed-base generator mult that keygen and signing perform) >= 8x the
  retained affine double-and-add reference;
* precomputed-table verification >= 5x the cold affine reference verify
  for both EC schemes (DSA's fixed-base tables get a smaller floor — its
  cold baseline is builtin C ``pow``, not Python affine arithmetic);
* randomized Schnorr batch verification at k=32 >= 3x the *warm*
  single-table verify throughput on P-256 (>= 2.5x under smoke sizes,
  where the two-iteration timing is noisier) — the whole batch rides one
  multi-scalar multiplication, so the shared doubling chain is the win.

``run_crypto_bench`` parity-checks every fast path against the reference
implementations while timing, so a reported speedup can never come from a
wrong answer.  The acceptance run also appends to the ``BENCH_crypto.json``
trajectory artifact at the repo root.

Set ``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job does) to run the same
assertions at reduced iteration counts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.crypto.bench import run_crypto_bench, write_trajectory
from repro.crypto.ec import P256
from repro.crypto.signatures import get_scheme

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

ITERATIONS = 3 if SMOKE else 8
IDENTIFY_USERS = 4 if SMOKE else 8
IDENTIFY_REQUESTS = 4 if SMOKE else 8
EC_SCHEMES = ["ecdsa-p-256", "schnorr-p-256"]
#: Batch-verify leg shape and floor (the acceptance criterion is k=32
#: at >= 3x; smoke keeps k but loosens the floor for two-iteration noise).
BATCH_K = 32
BATCH_FLOOR = 2.5 if SMOKE else 3.0


@pytest.fixture(scope="module")
def warm_curve():
    """P-256 with the comb and generator tables built outside the timers."""
    P256.multiply_base(1)
    P256.shamir_multiply(1, 1, P256.generator)
    return P256


class TestBenchScalarMult:
    K = 0x1CE1522F374F3AA2CE1522F374F3AA2C5D1522F374F3AA2CE1522F374F3AA2C5

    def test_bench_affine_reference(self, benchmark, warm_curve):
        benchmark.pedantic(
            lambda: warm_curve.multiply_affine(self.K, warm_curve.generator),
            rounds=1 if SMOKE else 2, iterations=1,
        )

    def test_bench_fixed_base(self, benchmark, warm_curve):
        result = benchmark(warm_curve.multiply, self.K, warm_curve.generator)
        assert not result.is_infinity

    def test_bench_wnaf_variable_point(self, benchmark, warm_curve):
        q = warm_curve.multiply(7, warm_curve.generator)
        result = benchmark(warm_curve.multiply, self.K, q)
        assert not result.is_infinity

    def test_bench_shamir_warm_table(self, benchmark, warm_curve):
        q = warm_curve.multiply(7, warm_curve.generator)
        table = warm_curve.precompute_table(q)
        result = benchmark(warm_curve.shamir_multiply, self.K, self.K + 1,
                           table=table)
        assert not result.is_infinity


@pytest.mark.parametrize("scheme_name", EC_SCHEMES + ["dsa-1024"])
class TestBenchVerifyPaths:
    def _fixture(self, scheme_name):
        scheme = get_scheme(scheme_name)
        keypair = scheme.keygen_from_seed(b"bench" * 8)
        signature = scheme.sign(keypair.signing_key, b"challenge")
        table = scheme.precompute(keypair.verify_key)
        return scheme, keypair, signature, table

    def test_bench_verify_cold_reference(self, benchmark, scheme_name):
        scheme, keypair, signature, _ = self._fixture(scheme_name)
        assert benchmark.pedantic(
            lambda: scheme.verify_reference(keypair.verify_key, b"challenge",
                                            signature),
            rounds=1 if SMOKE else 2, iterations=1,
        )

    def test_bench_verify_warm_table(self, benchmark, scheme_name):
        scheme, keypair, signature, table = self._fixture(scheme_name)
        assert benchmark(scheme.verify, keypair.verify_key, b"challenge",
                         signature, table)


class TestBenchBatchVerify:
    def _batch(self, k=BATCH_K):
        scheme = get_scheme("schnorr-p-256")
        keypairs = [scheme.keygen_from_seed(b"bbv%02d" % i * 6)
                    for i in range(k)]
        signatures = [scheme.sign(kp.signing_key, b"challenge")
                      for kp in keypairs]
        tables = [scheme.precompute(kp.verify_key) for kp in keypairs]
        items = [(kp.verify_key, b"challenge", sig)
                 for kp, sig in zip(keypairs, signatures)]
        return scheme, items, tables

    def test_bench_batch_verify_warm(self, benchmark):
        scheme, items, tables = self._batch()
        verdicts = benchmark(scheme.verify_batch, items, tables)
        assert verdicts == [True] * BATCH_K

    def test_bench_batch_verify_with_one_forgery(self, benchmark):
        """The bisection path: one forged member costs ~log k extra
        aggregate checks, never a full serial fallback."""
        scheme, items, tables = self._batch()
        key, message, signature = items[BATCH_K // 2]
        bad = bytearray(signature)
        bad[-1] ^= 1
        items[BATCH_K // 2] = (key, message, bytes(bad))
        verdicts = benchmark(scheme.verify_batch, items, tables)
        assert verdicts == [i != BATCH_K // 2 for i in range(BATCH_K)]


def test_kernel_speedup_floors(benchmark, capsys):
    """Acceptance floors: >= 8x scalar mult, >= 5x warm-table EC verify.

    One ``run_crypto_bench`` pass measures everything (parity-checked
    against the reference implementations while timed) and appends the
    run to the BENCH_crypto.json trajectory.
    """
    report = benchmark.pedantic(
        lambda: run_crypto_bench(
            iterations=ITERATIONS,
            identify_users=IDENTIFY_USERS,
            identify_requests=IDENTIFY_REQUESTS,
            batch_k=BATCH_K,
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        for line in report.summary_lines():
            print(line)
    write_trajectory(report, Path(__file__).resolve().parents[1]
                     / "BENCH_crypto.json")

    assert report.scalar_mult_speedup >= 8.0, (
        f"fixed-base wNAF/Jacobian scalar mult only "
        f"x{report.scalar_mult_speedup:.1f} over the affine reference; "
        f"the kernel promises >= 8x"
    )
    for name in EC_SCHEMES:
        speedup = report.verify_speedup(name)
        assert speedup >= 5.0, (
            f"{name} warm-table verify only x{speedup:.1f} over the cold "
            f"affine reference; the kernel promises >= 5x"
        )
    # DSA's cold baseline is builtin C pow, so the honest floor is lower.
    assert report.verify_speedup("dsa-1024") >= 2.5
    # The PR-5 acceptance floor: randomized batch verification at k=32
    # beats the warm single-table verify per-signature throughput >= 3x
    # (2.5x at smoke iteration counts).
    batch_speedup = report.batch_verify_speedup("schnorr-p-256")
    assert batch_speedup >= BATCH_FLOOR, (
        f"schnorr-p-256 verify_batch at k={BATCH_K} only "
        f"x{batch_speedup:.2f} the warm single-verify throughput; the "
        f"multi-scalar kernel promises >= {BATCH_FLOOR}x"
    )
    # Loose sanity bound only — each pass is a handful of requests, so the
    # ratio is noisy; this catches "caching made identification terrible",
    # not jitter.  The ratio itself is recorded in BENCH_crypto.json.
    identify = report.identify["ecdsa-p-256"]
    assert identify["identify_warm"] <= identify["identify_cold"] * 3.0
