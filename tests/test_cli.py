"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_defaults_are_paper_values(self):
        args = build_parser().parse_args(["report"])
        assert (args.unit, args.units_per_interval, args.intervals,
                args.threshold, args.dimension) == (100, 4, 500, 100, 5000)

    def test_short_flags(self):
        args = build_parser().parse_args(
            ["report", "-a", "10", "-k", "8", "-v", "20", "-t", "30",
             "-n", "64"])
        assert (args.unit, args.units_per_interval, args.intervals,
                args.threshold, args.dimension) == (10, 8, 20, 30, 64)


class TestReport:
    def test_prints_table(self, capsys):
        assert main(["report", "-n", "5000"]) == 0
        out = capsys.readouterr().out
        assert "44,829 bits" in out
        assert "Rep. Range" in out
        assert "[-100000, 100000]" in out

    def test_invalid_parameters_exit_2(self, capsys):
        assert main(["report", "-t", "99999"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAdvise:
    def test_prints_dimension(self, capsys):
        assert main(["advise", "--target-bits", "80"]) == 0
        out = capsys.readouterr().out
        assert "n >= 81" in out
        assert "residual key entropy" in out

    def test_respects_geometry(self, capsys):
        # k=8 gives ~2 bits/coordinate -> roughly half the dimension.
        assert main(["advise", "-k", "8", "--target-bits", "80"]) == 0
        out = capsys.readouterr().out
        assert "n >= 41" in out


class TestDemo:
    def test_end_to_end(self, capsys):
        code = main(["demo", "-n", "100", "--users", "3",
                     "--scheme", "dsa-512"])
        assert code == 0
        out = capsys.readouterr().out
        assert "identified=True" in out
        assert "identified=False" in out  # the stranger

    def test_unknown_scheme_fails_cleanly(self, capsys):
        assert main(["demo", "--scheme", "rsa-types"]) == 2
        assert "error:" in capsys.readouterr().err


class TestEngineBench:
    def test_runs_and_reports(self, capsys):
        code = main(["engine-bench", "--records", "300", "--probes", "8",
                     "-n", "16", "--shards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "probes/s" in out
        assert "speedup vs loop" in out
        assert "300 records" in out

    def test_defaults(self):
        args = build_parser().parse_args(["engine-bench"])
        assert (args.records, args.probes, args.shards,
                args.dimension) == (10_000, 64, 4, 128)

    def test_bad_parameters_exit_2(self, capsys):
        assert main(["engine-bench", "--records", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sign_scheme_appends_round_trip(self, capsys):
        code = main(["engine-bench", "--records", "300", "--probes", "8",
                     "-n", "16", "--shards", "2",
                     "--sign-scheme", "dsa-512"])
        assert code == 0
        out = capsys.readouterr().out
        assert "signature round-trip [dsa-512]" in out
        assert "full flow" in out

    def test_unknown_sign_scheme_exits_2(self, capsys):
        assert main(["engine-bench", "--records", "300", "--probes", "8",
                     "-n", "16", "--sign-scheme", "rsa-4096"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCryptoBench:
    def test_runs_reports_and_writes_trajectory(self, capsys, tmp_path):
        artifact = tmp_path / "BENCH_crypto.json"
        code = main(["crypto-bench", "--iterations", "2",
                     "--schemes", "dsa-512",
                     "--identify-scheme", "dsa-512",
                     "--users", "2", "--requests", "2", "-n", "64",
                     "--json", str(artifact)])
        assert code == 0
        out = capsys.readouterr().out
        assert "scalar multiplication" in out
        assert "dsa-512" in out
        assert "identify end-to-end" in out
        data = json.loads(artifact.read_text())
        assert len(data["runs"]) == 1
        run = data["runs"][0]
        assert run["scalar_mult_speedup"] > 1.0
        assert "dsa-512" in run["verify_speedups"]

    def test_trajectory_appends_across_runs(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_crypto.json"
        args = ["crypto-bench", "--iterations", "2", "--schemes", "dsa-512",
                "--no-identify", "--json", str(artifact)]
        assert main(args) == 0
        assert main(args) == 0
        capsys.readouterr()
        assert len(json.loads(artifact.read_text())["runs"]) == 2

    def test_empty_json_skips_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["crypto-bench", "--iterations", "2",
                     "--schemes", "dsa-512", "--no-identify", "--json", ""])
        assert code == 0
        assert not (tmp_path / "BENCH_crypto.json").exists()

    def test_unknown_scheme_exits_2(self, capsys):
        assert main(["crypto-bench", "--schemes", "rsa-4096",
                     "--no-identify"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_engine_store_reports_counters(self, capsys):
        code = main(["simulate", "-n", "100", "--users", "3",
                     "--requests", "6", "--scheme", "dsa-512",
                     "--engine-shards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "probes served: 6" in out
        assert "latency histogram" in out

    def test_runs_and_reports(self, capsys):
        code = main(["simulate", "-n", "100", "--users", "3",
                     "--requests", "12", "--scheme", "dsa-512",
                     "--genuine", "0.7", "--stranger", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "12 requests" in out

    def test_bad_mix_fails_cleanly(self, capsys):
        assert main(["simulate", "--genuine", "0.9", "--stranger", "0.9",
                     "--scheme", "dsa-512", "-n", "100"]) == 2
        assert "error:" in capsys.readouterr().err


class TestServiceBench:
    _SMALL = ["service-bench", "--users", "1500", "--pool-users", "6",
              "--requests", "24", "--clients", "6", "-n", "64",
              "--scheme", "dsa-512", "--window-ms", "10", "--linger-ms", "1"]

    def test_runs_reports_and_writes_trajectory(self, capsys, tmp_path,
                                                watchdog):
        artifact = tmp_path / "BENCH_service.json"
        code = main(self._SMALL + ["--json", str(artifact)])
        assert code == 0
        out = capsys.readouterr().out
        assert "service bench: 1,500 enrolled" in out
        assert "serial loop" in out and "frontend" in out
        assert "speedup" in out
        data = json.loads(artifact.read_text())
        assert len(data["runs"]) == 1
        run = data["runs"][0]
        assert run["n_enrolled"] == 1500
        assert run["serial_ids_per_s"] > 0
        assert run["frontend_ids_per_s"] > 0
        assert len(run["frontend_latency_ms"]) == 3

    def test_empty_json_skips_artifact(self, capsys, tmp_path, monkeypatch,
                                       watchdog):
        monkeypatch.chdir(tmp_path)
        assert main(self._SMALL + ["--json", ""]) == 0
        assert not (tmp_path / "BENCH_service.json").exists()

    def test_bad_parameters_exit_2(self, capsys):
        assert main(["service-bench", "--users", "4",
                     "--pool-users", "8"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSimulateFrontend:
    def test_frontend_routing_reports_batches(self, capsys, watchdog):
        code = main(["simulate", "-n", "100", "--users", "3",
                     "--requests", "8", "--scheme", "dsa-512",
                     "--engine-shards", "2", "--frontend"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "probes served: 8" in out       # engine counters intact
        assert "identification micro-batches" in out
