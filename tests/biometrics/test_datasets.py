"""Tests for the modality dataset simulators."""

import numpy as np
import pytest

from repro.biometrics.datasets import (
    FaceLikeDataset,
    FingerprintLikeDataset,
    IrisLikeDataset,
)
from repro.core.params import SystemParams
from repro.exceptions import ParameterError


class TestIrisLike:
    @pytest.fixture
    def dataset(self):
        return IrisLikeDataset(n_users=6, code_bits=2048,
                               genuine_flip_rate=0.12, seed=1)

    def test_genuine_distance_distribution(self, dataset, rng):
        """Genuine comparisons ~12% disagreement, impostor ~50%."""
        genuine = [
            dataset.hamming(dataset.template(0), dataset.genuine_reading(0, rng))
            for _ in range(20)
        ]
        impostor = [
            dataset.hamming(dataset.template(0), dataset.impostor_reading(rng))
            for _ in range(20)
        ]
        assert 0.08 < np.mean(genuine) / 2048 < 0.16
        assert 0.45 < np.mean(impostor) / 2048 < 0.55

    def test_daugman_separation(self, dataset, rng):
        from repro.biometrics.metrics import decidability

        genuine = np.array([
            dataset.hamming(dataset.template(1), dataset.genuine_reading(1, rng))
            for _ in range(30)
        ], dtype=float)
        impostor = np.array([
            dataset.hamming(dataset.template(1), dataset.impostor_reading(rng))
            for _ in range(30)
        ], dtype=float)
        assert decidability(genuine, impostor) > 4

    def test_reproducible(self):
        d1 = IrisLikeDataset(n_users=2, seed=9)
        d2 = IrisLikeDataset(n_users=2, seed=9)
        assert np.array_equal(d1.template(0), d2.template(0))

    def test_rejects_bad_flip_rate(self):
        with pytest.raises(ParameterError):
            IrisLikeDataset(n_users=2, genuine_flip_rate=0.6)


class TestFaceLike:
    @pytest.fixture
    def dataset(self):
        return FaceLikeDataset(n_users=5, dim=128, seed=2)

    def test_embeddings_unit_norm(self, dataset, rng):
        for i in range(5):
            assert np.linalg.norm(dataset.template_embedding(i)) == \
                pytest.approx(1.0)
        assert np.linalg.norm(dataset.genuine_embedding(0, rng)) == \
            pytest.approx(1.0)

    def test_genuine_closer_than_impostor(self, dataset, rng):
        centre = dataset.template_embedding(0)
        genuine_sim = float(centre @ dataset.genuine_embedding(0, rng))
        impostor_sim = float(centre @ dataset.impostor_embedding(rng))
        assert genuine_sim > 0.8
        assert abs(impostor_sim) < 0.5

    def test_on_line_quantisation(self, dataset, rng):
        params = SystemParams.paper_defaults(n=128)
        template = dataset.template_on_line(0, params)
        genuine = dataset.genuine_on_line(0, params, rng)
        assert template.shape == (128,)
        # Genuine readings should land close in Chebyshev terms relative
        # to impostors, though not necessarily within the paper's t.
        from repro.core.numberline import NumberLine

        line = NumberLine(params)
        genuine_d = line.chebyshev_distance(template, genuine)
        impostor_d = line.chebyshev_distance(
            template, dataset.impostor_on_line(params, rng)
        )
        assert genuine_d < impostor_d

    def test_dimension_mismatch_rejected(self, dataset):
        with pytest.raises(ParameterError, match="dim"):
            dataset.template_on_line(0, SystemParams.paper_defaults(n=64))


class TestFingerprintLike:
    @pytest.fixture
    def dataset(self):
        params = SystemParams.paper_defaults(n=256)
        return FingerprintLikeDataset(n_users=4, params=params,
                                      base_jitter=40, outlier_rate=0.01,
                                      seed=3)

    def test_genuine_mostly_close(self, dataset, rng):
        from repro.core.numberline import NumberLine

        line = NumberLine(dataset.params)
        template = dataset.template(0)
        reading = dataset.genuine_reading(0, rng)
        per_coord = line.ring_distance(template, reading)
        # Most coordinates jitter within base_jitter; a few are outliers.
        assert np.mean(per_coord <= 40) > 0.95

    def test_outliers_occur(self, dataset):
        rng = np.random.default_rng(11)
        from repro.core.numberline import NumberLine

        line = NumberLine(dataset.params)
        total_outliers = 0
        for _ in range(20):
            reading = dataset.genuine_reading(0, rng)
            per_coord = line.ring_distance(dataset.template(0), reading)
            total_outliers += int(np.count_nonzero(per_coord > 40))
        assert total_outliers > 0

    def test_impostor_far(self, dataset, rng):
        from repro.core.numberline import NumberLine

        line = NumberLine(dataset.params)
        d = line.chebyshev_distance(dataset.template(0),
                                    dataset.impostor_reading(rng))
        assert d > dataset.params.t
