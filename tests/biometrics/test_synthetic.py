"""Tests for synthetic populations and noise models."""

import numpy as np
import pytest

from repro.biometrics.synthetic import (
    BoundedUniformNoise,
    SparseOutlierNoise,
    TruncatedGaussianNoise,
    UserPopulation,
)
from repro.core.params import SystemParams
from repro.exceptions import ParameterError


class TestNoiseModels:
    def test_bounded_uniform_respects_amplitude(self, rng):
        noise = BoundedUniformNoise(5).sample(rng, 10_000)
        assert noise.min() >= -5 and noise.max() <= 5
        # Both extremes should actually occur.
        assert noise.min() == -5 and noise.max() == 5

    def test_bounded_uniform_zero_amplitude(self, rng):
        assert not np.any(BoundedUniformNoise(0).sample(rng, 100))

    def test_bounded_uniform_rejects_negative(self):
        with pytest.raises(ParameterError):
            BoundedUniformNoise(-1)

    def test_truncated_gaussian_clipped(self, rng):
        noise = TruncatedGaussianNoise(sigma=50, clip=10).sample(rng, 10_000)
        assert noise.min() >= -10 and noise.max() <= 10

    def test_truncated_gaussian_integer_valued(self, rng):
        noise = TruncatedGaussianNoise(sigma=2.5, clip=10).sample(rng, 100)
        assert noise.dtype == np.int64

    def test_sparse_outlier_rate(self, rng):
        model = SparseOutlierNoise(base_amplitude=2, outlier_rate=0.1,
                                   outlier_amplitude=1000)
        noise = model.sample(rng, 50_000)
        outliers = np.abs(noise) > 2
        rate = outliers.mean()
        assert 0.07 < rate < 0.13

    def test_sparse_outlier_rejects_bad_rate(self):
        with pytest.raises(ParameterError):
            SparseOutlierNoise(1, 1.5, 10)


class TestUserPopulation:
    @pytest.fixture
    def pop(self, paper_params):
        return UserPopulation(paper_params, size=20,
                              noise=BoundedUniformNoise(paper_params.t), seed=3)

    def test_templates_reproducible(self, paper_params):
        p1 = UserPopulation(paper_params, size=5, seed=7)
        p2 = UserPopulation(paper_params, size=5, seed=7)
        for i in range(5):
            assert np.array_equal(p1.template(i), p2.template(i))

    def test_templates_in_range(self, pop, paper_params):
        for i in range(len(pop)):
            t = pop.template(i)
            assert t.min() >= -paper_params.half_range
            assert t.max() < paper_params.half_range

    def test_template_returns_copy(self, pop):
        original = pop.template(0).copy()
        mutated = pop.template(0)
        mutated[:] = 0
        assert np.array_equal(pop.template(0), original)

    def test_genuine_reading_within_threshold(self, pop, paper_params):
        for i in range(5):
            reading = pop.genuine_reading(i)
            assert pop.chebyshev_to_template(i, reading) <= paper_params.t

    def test_impostor_far_from_everyone(self, pop, paper_params):
        reading = pop.impostor_reading()
        distances = [
            pop.chebyshev_to_template(i, reading) for i in range(len(pop))
        ]
        assert min(distances) > paper_params.t

    def test_user_ids_stable(self, pop):
        ids = pop.user_ids()
        assert ids[0] == "user-0000"
        assert len(ids) == 20
        assert len(set(ids)) == 20

    def test_rejects_empty_population(self, paper_params):
        with pytest.raises(ParameterError):
            UserPopulation(paper_params, size=0)

    def test_readings_vary(self, pop):
        r1 = pop.genuine_reading(0)
        r2 = pop.genuine_reading(0)
        assert not np.array_equal(r1, r2)

    def test_external_rng_reproducible(self, pop):
        r1 = pop.genuine_reading(0, np.random.default_rng(55))
        r2 = pop.genuine_reading(0, np.random.default_rng(55))
        assert np.array_equal(r1, r2)
