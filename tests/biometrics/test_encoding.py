"""Tests for feature-to-line encodings."""

import numpy as np
import pytest

from repro.biometrics.encoding import (
    binarize,
    bits_to_line,
    line_to_bits,
    quantize_to_line,
)
from repro.core.numberline import NumberLine
from repro.core.params import SystemParams
from repro.exceptions import EncodingError


@pytest.fixture
def params():
    return SystemParams.paper_defaults(n=8)


class TestQuantizeToLine:
    def test_output_in_range(self, params, rng):
        features = rng.normal(0, 0.5, size=64)
        points = quantize_to_line(features, params.with_dimension(64))
        line = NumberLine(params)
        assert points.min() >= -line.half_range
        assert points.max() < line.half_range

    def test_monotone(self, params):
        features = np.linspace(-1, 1, 8)
        points = quantize_to_line(features, params)
        assert np.all(np.diff(points) > 0)

    def test_endpoints(self, params):
        points = quantize_to_line(np.array([-1.0] * 4 + [1.0] * 4), params)
        line = NumberLine(params)
        assert points[0] == -line.half_range
        assert points[-1] == line.half_range - 1

    def test_clipping(self, params):
        points = quantize_to_line(np.array([-5.0, 5.0] + [0.0] * 6), params)
        clipped = quantize_to_line(np.array([-1.0, 1.0] + [0.0] * 6), params)
        assert points[0] == clipped[0] and points[1] == clipped[1]

    def test_close_features_close_points(self, params):
        a = quantize_to_line(np.full(8, 0.5), params)
        b = quantize_to_line(np.full(8, 0.5001), params)
        assert np.max(np.abs(a - b)) <= 25  # 1e-4 of a 200001-point range

    def test_rejects_matrix(self, params):
        with pytest.raises(EncodingError):
            quantize_to_line(np.zeros((2, 4)), params)

    def test_rejects_bad_range(self, params):
        with pytest.raises(EncodingError):
            quantize_to_line(np.zeros(8), params, feature_range=(1.0, -1.0))


class TestBinarize:
    def test_threshold_zero(self):
        bits = binarize(np.array([-1.0, 0.0, 0.5, 2.0]))
        assert bits.tolist() == [0, 0, 1, 1]

    def test_per_coordinate_thresholds(self):
        bits = binarize(np.array([1.0, 1.0]), thresholds=np.array([0.5, 2.0]))
        assert bits.tolist() == [1, 0]

    def test_rejects_matrix(self):
        with pytest.raises(EncodingError):
            binarize(np.zeros((2, 2)))


class TestBitsLineConversions:
    def test_bits_to_line_range(self, params):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=64, dtype=np.uint8)
        points = bits_to_line(bits, params, group=8)
        line = NumberLine(params)
        assert points.min() >= -line.half_range
        assert points.max() <= line.half_range

    def test_bits_to_line_rejects_ragged(self, params):
        with pytest.raises(EncodingError, match="divisible"):
            bits_to_line(np.zeros(10, dtype=np.uint8), params, group=8)

    def test_bits_to_line_rejects_non_binary(self, params):
        with pytest.raises(EncodingError, match="0/1"):
            bits_to_line(np.full(8, 2, dtype=np.uint8), params, group=8)

    def test_line_to_bits_width(self, params, rng):
        line = NumberLine(params)
        points = line.uniform_vector(rng, 8)
        bits = line_to_bits(points, params, bits_per_point=8)
        assert bits.shape == (64,)
        assert set(np.unique(bits)) <= {0, 1}

    def test_line_to_bits_locality(self, params):
        """Nearby points flip few bits — the property baselines depend on."""
        a = np.full(8, 1000, dtype=np.int64)
        b = np.full(8, 1050, dtype=np.int64)  # tiny nudge on a 200k range
        bits_a = line_to_bits(a, params, bits_per_point=8)
        bits_b = line_to_bits(b, params, bits_per_point=8)
        assert np.count_nonzero(bits_a != bits_b) <= 16
