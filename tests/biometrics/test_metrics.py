"""Tests for FAR/FRR/ROC/EER metrics."""

import numpy as np
import pytest

from repro.biometrics.metrics import (
    decidability,
    equal_error_rate,
    false_accept_rate,
    false_reject_rate,
    roc_curve,
)
from repro.exceptions import ParameterError


class TestRates:
    def test_far_counts_at_or_below_threshold(self):
        impostor = np.array([10.0, 20.0, 30.0, 40.0])
        assert false_accept_rate(impostor, 20.0) == 0.5
        assert false_accept_rate(impostor, 5.0) == 0.0
        assert false_accept_rate(impostor, 100.0) == 1.0

    def test_frr_counts_above_threshold(self):
        genuine = np.array([1.0, 2.0, 3.0, 4.0])
        assert false_reject_rate(genuine, 2.0) == 0.5
        assert false_reject_rate(genuine, 0.0) == 1.0
        assert false_reject_rate(genuine, 4.0) == 0.0

    def test_empty_scores_rejected(self):
        with pytest.raises(ParameterError):
            false_accept_rate(np.array([]), 1.0)


class TestRoc:
    def test_monotone_tradeoff(self):
        rng = np.random.default_rng(0)
        genuine = rng.normal(10, 2, 200)
        impostor = rng.normal(50, 5, 200)
        points = roc_curve(genuine, impostor)
        fars = [p.far for p in points]
        frrs = [p.frr for p in points]
        # Thresholds ascend: FAR non-decreasing, FRR non-increasing.
        assert all(a <= b + 1e-12 for a, b in zip(fars, fars[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(frrs, frrs[1:]))

    def test_explicit_thresholds(self):
        points = roc_curve(np.array([1.0, 2.0]), np.array([5.0, 6.0]),
                           thresholds=np.array([3.0]))
        assert len(points) == 1
        assert points[0].far == 0.0 and points[0].frr == 0.0


class TestEer:
    def test_well_separated_distributions(self):
        rng = np.random.default_rng(1)
        genuine = rng.normal(10, 2, 500)
        impostor = rng.normal(60, 5, 500)
        eer, threshold = equal_error_rate(genuine, impostor)
        assert eer < 0.01
        assert 10 < threshold < 60

    def test_overlapping_distributions(self):
        rng = np.random.default_rng(2)
        genuine = rng.normal(10, 5, 500)
        impostor = rng.normal(14, 5, 500)
        eer, _ = equal_error_rate(genuine, impostor)
        assert 0.2 < eer < 0.5  # heavy overlap -> high EER

    def test_identical_distributions_eer_half(self):
        rng = np.random.default_rng(3)
        scores = rng.normal(10, 3, 1000)
        eer, _ = equal_error_rate(scores, scores.copy())
        assert eer == pytest.approx(0.5, abs=0.05)


class TestDecidability:
    def test_large_for_separated(self):
        rng = np.random.default_rng(4)
        assert decidability(rng.normal(0, 1, 500), rng.normal(10, 1, 500)) > 5

    def test_near_zero_for_identical(self):
        rng = np.random.default_rng(5)
        scores = rng.normal(0, 1, 500)
        assert abs(decidability(scores, scores + 0.01)) < 0.3

    def test_zero_variance_rejected(self):
        with pytest.raises(ParameterError):
            decidability(np.ones(10), np.ones(10))
