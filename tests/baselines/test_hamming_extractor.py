"""Tests for the Hamming-metric fuzzy extractor baseline."""

import numpy as np
import pytest

from repro.baselines.hamming_extractor import HammingFuzzyExtractor
from repro.biometrics.datasets import IrisLikeDataset
from repro.coding.bch import BchCode
from repro.crypto.extractors import Sha256Extractor
from repro.crypto.prng import HmacDrbg
from repro.exceptions import RecoveryError


@pytest.fixture
def fe():
    return HammingFuzzyExtractor(BchCode(7, 15))  # n=127, t=15


class TestGenRep:
    def test_roundtrip_exact(self, fe, rng, drbg):
        w = rng.integers(0, 2, size=fe.n, dtype=np.uint8)
        secret, helper = fe.generate(w, drbg)
        assert fe.reproduce(w, helper) == secret

    def test_roundtrip_noisy(self, fe, rng, drbg):
        w = rng.integers(0, 2, size=fe.n, dtype=np.uint8)
        secret, helper = fe.generate(w, drbg)
        w_prime = w.copy()
        w_prime[rng.choice(fe.n, size=fe.t, replace=False)] ^= 1
        assert fe.reproduce(w_prime, helper) == secret

    def test_far_reading_rejected(self, fe, rng, drbg):
        w = rng.integers(0, 2, size=fe.n, dtype=np.uint8)
        _, helper = fe.generate(w, drbg)
        impostor = rng.integers(0, 2, size=fe.n, dtype=np.uint8)
        with pytest.raises(RecoveryError):
            fe.reproduce(impostor, helper)

    def test_distinct_users_distinct_secrets(self, fe, rng):
        w1 = rng.integers(0, 2, size=fe.n, dtype=np.uint8)
        w2 = rng.integers(0, 2, size=fe.n, dtype=np.uint8)
        s1, _ = fe.generate(w1, HmacDrbg(b"u1"))
        s2, _ = fe.generate(w2, HmacDrbg(b"u2"))
        assert s1 != s2

    def test_configurable_extractor(self, rng, drbg):
        fe = HammingFuzzyExtractor(
            BchCode(7, 15), extractor=Sha256Extractor(output_bytes=16)
        )
        w = rng.integers(0, 2, size=fe.n, dtype=np.uint8)
        secret, _ = fe.generate(w, drbg)
        assert len(secret) == 16

    def test_storage_accounting(self, fe, rng, drbg):
        w = rng.integers(0, 2, size=fe.n, dtype=np.uint8)
        _, helper = fe.generate(w, drbg)
        assert helper.storage_bits() == fe.n + 32 * 8 + 32 * 8


class TestOnIrisWorkload:
    """End-to-end: iris-like binary codes through the Hamming extractor.

    A 2048-bit iris code with ~12% genuine flip rate needs t >= ~300, far
    beyond one BCH block; deployed systems split the code into blocks.
    This test uses a single 255-bit slice with a scaled-down flip rate to
    keep the unit test fast while exercising the real pipeline.
    """

    def test_genuine_accepted_impostor_rejected(self):
        code = BchCode(8, 30)  # n=255, t=30 (~12% of 255)
        fe = HammingFuzzyExtractor(code)
        dataset = IrisLikeDataset(n_users=4, code_bits=code.n,
                                  genuine_flip_rate=0.08, seed=5)
        rng = np.random.default_rng(9)
        drbg = HmacDrbg(b"iris")
        secret, helper = fe.generate(dataset.template(0), drbg)

        accepted = 0
        for _ in range(10):
            reading = dataset.genuine_reading(0, rng)
            try:
                accepted += fe.reproduce(reading, helper) == secret
            except RecoveryError:
                pass
        assert accepted >= 8  # binomial tail: flips beyond t are rare

        for _ in range(5):
            with pytest.raises(RecoveryError):
                fe.reproduce(dataset.impostor_reading(rng), helper)
