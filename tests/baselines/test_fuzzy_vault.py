"""Tests for the fuzzy vault (set-difference baseline)."""

import numpy as np
import pytest

from repro.baselines.fuzzy_vault import FuzzyVault
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError


@pytest.fixture
def vault_scheme():
    return FuzzyVault(m=16, k=8, n_chaff=150)


def _features(rng, count, order=2 ** 16):
    return rng.choice(order, size=count, replace=False).astype(np.int64)


class TestLock:
    def test_vault_size(self, vault_scheme, rng, drbg):
        features = _features(rng, 30)
        secret = vault_scheme.secret_from_bytes(b"key")
        vault = vault_scheme.lock(features, secret, drbg)
        assert len(vault) == 30 + 150

    def test_chaff_not_on_polynomial(self, vault_scheme, rng, drbg):
        from repro.coding import polynomial as poly

        features = _features(rng, 20)
        secret = vault_scheme.secret_from_bytes(b"key")
        vault = vault_scheme.lock(features, secret, drbg)
        genuine_x = set(int(x) for x in features)
        for x, y in zip(vault.xs, vault.ys):
            expected = poly.evaluate(vault_scheme.field, secret, int(x))
            if int(x) in genuine_x:
                assert int(y) == expected
            else:
                assert int(y) != expected

    def test_points_shuffled(self, vault_scheme, rng, drbg):
        """Genuine points must not occupy a contiguous prefix."""
        features = _features(rng, 30)
        secret = vault_scheme.secret_from_bytes(b"key")
        vault = vault_scheme.lock(features, secret, drbg)
        genuine_x = set(int(x) for x in features)
        prefix = [int(x) in genuine_x for x in vault.xs[:30]]
        assert not all(prefix)

    def test_rejects_too_few_features(self, vault_scheme, rng, drbg):
        with pytest.raises(ParameterError, match="at least"):
            vault_scheme.lock(_features(rng, 5),
                              vault_scheme.secret_from_bytes(b"k"), drbg)

    def test_rejects_duplicate_features(self, vault_scheme, drbg):
        features = np.array([1, 2, 2, 4, 5, 6, 7, 8, 9, 10], dtype=np.int64)
        with pytest.raises(ParameterError, match="distinct"):
            vault_scheme.lock(features,
                              vault_scheme.secret_from_bytes(b"k"), drbg)

    def test_rejects_wrong_secret_length(self, vault_scheme, rng, drbg):
        with pytest.raises(ParameterError, match="field symbols"):
            vault_scheme.lock(_features(rng, 20), [1, 2, 3], drbg)

    def test_rejects_field_overflow_chaff(self, rng, drbg):
        tiny = FuzzyVault(m=4, k=2, n_chaff=20)  # field has only 16 elements
        with pytest.raises(ParameterError, match="field too small"):
            tiny.lock(np.array([1, 2, 3], dtype=np.int64),
                      tiny.secret_from_bytes(b"k"), drbg)


class TestUnlock:
    def test_full_overlap_unlocks(self, vault_scheme, rng, drbg):
        features = _features(rng, 30)
        secret = vault_scheme.secret_from_bytes(b"the-secret")
        vault = vault_scheme.lock(features, secret, drbg)
        assert vault_scheme.unlock(features, vault) == secret

    def test_partial_overlap_unlocks(self, vault_scheme, rng, drbg):
        features = _features(rng, 30)
        secret = vault_scheme.secret_from_bytes(b"the-secret")
        vault = vault_scheme.lock(features, secret, drbg)
        # 22 genuine + 8 junk: 22 >= k + 2*junk_hits is easily satisfied.
        query = np.concatenate([features[:22], _features(rng, 8)])
        query = np.unique(query)
        assert vault_scheme.unlock(query, vault) == secret

    def test_disjoint_query_rejected(self, vault_scheme, rng, drbg):
        features = _features(rng, 30)
        secret = vault_scheme.secret_from_bytes(b"s")
        vault = vault_scheme.lock(features, secret, drbg)
        stranger = np.setdiff1d(
            _features(rng, 60), features
        )[:30]
        with pytest.raises(RecoveryError):
            vault_scheme.unlock(stranger, vault)

    def test_too_small_query_rejected(self, vault_scheme, rng, drbg):
        features = _features(rng, 30)
        vault = vault_scheme.lock(
            features, vault_scheme.secret_from_bytes(b"s"), drbg
        )
        with pytest.raises(RecoveryError, match="candidate"):
            vault_scheme.unlock(features[:3], vault)

    def test_commitment_check_blocks_wrong_polynomial(self, rng, drbg):
        """A vault whose points decode consistently to the wrong secret
        (e.g. attacker-substituted) must fail the commitment check."""
        scheme = FuzzyVault(m=16, k=4, n_chaff=0)
        features = _features(rng, 12)
        secret = scheme.secret_from_bytes(b"right")
        vault = scheme.lock(features, secret, drbg)
        # Swap the commitment for a different secret's commitment.
        import dataclasses

        other = scheme.secret_from_bytes(b"wrong")
        forged = dataclasses.replace(
            vault, commitment=scheme._commit(other)
        )
        with pytest.raises(RecoveryError, match="commitment"):
            scheme.unlock(features, forged)


class TestSecretEncoding:
    def test_secret_from_bytes_length(self, vault_scheme):
        assert len(vault_scheme.secret_from_bytes(b"abc")) == 8

    def test_secret_symbols_in_field(self, vault_scheme):
        secret = vault_scheme.secret_from_bytes(bytes(range(64)))
        assert all(0 <= s < 2 ** 16 for s in secret)

    def test_deterministic(self, vault_scheme):
        assert vault_scheme.secret_from_bytes(b"x") == \
            vault_scheme.secret_from_bytes(b"x")
