"""Tests for the code-offset (fuzzy commitment) sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.code_offset import CodeOffsetSketch, CodeOffsetSketchValue
from repro.coding.bch import BchCode
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError, TamperDetectedError


@pytest.fixture
def code():
    return BchCode(7, 10)  # n=127, corrects 10 bit flips


@pytest.fixture
def sketcher(code):
    return CodeOffsetSketch(code)


def _template(rng, n):
    return rng.integers(0, 2, size=n, dtype=np.uint8)


class TestRoundTrip:
    @given(seed=st.integers(0, 10 ** 6), n_flips=st.integers(0, 10))
    @settings(max_examples=40)
    def test_recovers_within_t(self, seed, n_flips):
        code = BchCode(7, 10)
        sketcher = CodeOffsetSketch(code)
        rng = np.random.default_rng(seed)
        w = _template(rng, code.n)
        value = sketcher.sketch(w, HmacDrbg(seed.to_bytes(4, "big")))
        w_prime = w.copy()
        if n_flips:
            w_prime[rng.choice(code.n, size=n_flips, replace=False)] ^= 1
        assert np.array_equal(sketcher.recover(w_prime, value), w)

    def test_beyond_t_rejected(self, sketcher, code, rng, drbg):
        w = _template(rng, code.n)
        value = sketcher.sketch(w, drbg)
        w_far = w.copy()
        w_far[rng.choice(code.n, size=60, replace=False)] ^= 1
        with pytest.raises(RecoveryError):
            sketcher.recover(w_far, value)

    def test_offset_hides_template(self, sketcher, code, rng, drbg):
        """The offset alone (uniform codeword mask) differs from w."""
        w = _template(rng, code.n)
        value = sketcher.sketch(w, drbg)
        assert not np.array_equal(value.offset, w)

    def test_deterministic_given_drbg(self, sketcher, code, rng):
        w = _template(rng, code.n)
        v1 = sketcher.sketch(w, HmacDrbg(b"fix"))
        v2 = sketcher.sketch(w, HmacDrbg(b"fix"))
        assert np.array_equal(v1.offset, v2.offset)


class TestRobustness:
    def test_tampered_offset_detected(self, sketcher, code, rng, drbg):
        w = _template(rng, code.n)
        value = sketcher.sketch(w, drbg)
        tampered_offset = value.offset.copy()
        tampered_offset[0] ^= 1
        bad = CodeOffsetSketchValue(offset=tampered_offset, tag=value.tag)
        with pytest.raises(RecoveryError):
            # One flipped offset bit either shifts recovery into a
            # different codeword (tag mismatch) or is absorbed as a
            # correctable error yielding a wrong template (tag mismatch);
            # both must be rejected.
            sketcher.recover(w, bad)

    def test_missing_tag_rejected_in_robust_mode(self, sketcher, code, rng, drbg):
        w = _template(rng, code.n)
        value = sketcher.sketch(w, drbg)
        with pytest.raises(TamperDetectedError, match="missing"):
            sketcher.recover(w, CodeOffsetSketchValue(offset=value.offset,
                                                      tag=None))

    def test_non_robust_mode_skips_tag(self, code, rng, drbg):
        sketcher = CodeOffsetSketch(code, robust=False)
        w = _template(rng, code.n)
        value = sketcher.sketch(w, drbg)
        assert value.tag is None
        assert np.array_equal(sketcher.recover(w, value), w)


class TestValidation:
    def test_rejects_wrong_length(self, sketcher, code):
        with pytest.raises(ParameterError):
            sketcher.sketch(np.zeros(code.n + 1, dtype=np.uint8))

    def test_rejects_non_binary(self, sketcher, code):
        with pytest.raises(ParameterError):
            sketcher.sketch(np.full(code.n, 3, dtype=np.uint8))

    def test_entropy_loss_is_redundancy(self, sketcher, code):
        assert sketcher.entropy_loss_bits() == code.n - code.k

    def test_shortened_code_supported(self, rng, drbg):
        code = BchCode(8, 12, shorten=55)  # n = 200
        sketcher = CodeOffsetSketch(code)
        w = _template(rng, code.n)
        value = sketcher.sketch(w, drbg)
        w_prime = w.copy()
        w_prime[rng.choice(code.n, size=12, replace=False)] ^= 1
        assert np.array_equal(sketcher.recover(w_prime, value), w)
