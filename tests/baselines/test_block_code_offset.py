"""Tests for the concatenated (BCH ∘ RS) fuzzy extractor on iris-scale data."""

import numpy as np
import pytest

from repro.baselines.block_code_offset import (
    ConcatenatedCodeOffsetExtractor,
    ConcatenatedHelperData,
)
from repro.biometrics.datasets import IrisLikeDataset
from repro.coding.bch import BchCode
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError


@pytest.fixture(scope="module")
def extractor():
    # Inner BCH(127, t=13); 16 blocks of 127 bits = 2032-bit templates.
    # Outer RS with k=8 corrects (16-8)/2 = 4 failed blocks.
    return ConcatenatedCodeOffsetExtractor(
        inner=BchCode(7, 13), n_blocks=16, outer_k=8
    )


def _template(rng, extractor):
    return rng.integers(0, 2, size=extractor.template_bits, dtype=np.uint8)


class TestConstruction:
    def test_capacities(self, extractor):
        assert extractor.template_bits == 127 * 16
        assert extractor.inner_error_capacity == 13
        assert extractor.block_failure_capacity == 4
        assert extractor.secret_entropy_bits == 64

    def test_rejects_tiny_inner_code(self):
        with pytest.raises(ParameterError, match="message bits"):
            ConcatenatedCodeOffsetExtractor(BchCode(4, 3), 8, 4)  # k=5 < 8

    def test_rejects_bad_outer_k(self):
        with pytest.raises(ParameterError):
            ConcatenatedCodeOffsetExtractor(BchCode(7, 13), 16, 16)

    def test_rejects_single_block(self):
        with pytest.raises(ParameterError):
            ConcatenatedCodeOffsetExtractor(BchCode(7, 13), 1, 1)


class TestRoundTrip:
    def test_exact_reading(self, extractor, rng, drbg):
        w = _template(rng, extractor)
        secret, helper = extractor.generate(w, drbg)
        assert extractor.reproduce(w, helper) == secret
        assert len(secret) == 32

    def test_scattered_bit_flips(self, extractor, rng, drbg):
        """Flips within every block's radius: classic sensor noise."""
        w = _template(rng, extractor)
        secret, helper = extractor.generate(w, drbg)
        w_noisy = w.copy()
        for block in range(extractor.n_blocks):
            base = block * extractor.inner.n
            flips = rng.choice(extractor.inner.n, size=10, replace=False)
            w_noisy[base + flips] ^= 1
        assert extractor.reproduce(w_noisy, helper) == secret

    def test_burst_destroys_blocks_outer_code_saves(self, extractor, rng,
                                                    drbg):
        """Wipe 4 whole blocks (eyelid occlusion): outer RS corrects."""
        w = _template(rng, extractor)
        secret, helper = extractor.generate(w, drbg)
        w_noisy = w.copy()
        for block in (1, 5, 9, 13):
            base = block * extractor.inner.n
            w_noisy[base: base + extractor.inner.n] ^= 1  # total wipe
        assert extractor.reproduce(w_noisy, helper) == secret

    def test_too_many_dead_blocks_rejected(self, extractor, rng, drbg):
        w = _template(rng, extractor)
        _, helper = extractor.generate(w, drbg)
        w_noisy = w.copy()
        for block in range(9):  # 9 > capacity 4; beyond outer radius
            base = block * extractor.inner.n
            w_noisy[base: base + extractor.inner.n] ^= 1
        with pytest.raises(RecoveryError):
            extractor.reproduce(w_noisy, helper)

    def test_impostor_rejected(self, extractor, rng, drbg):
        w = _template(rng, extractor)
        _, helper = extractor.generate(w, drbg)
        with pytest.raises(RecoveryError):
            extractor.reproduce(_template(rng, extractor), helper)

    def test_mixed_noise(self, extractor, rng, drbg):
        """Realistic mixture: in-radius flips everywhere + 2 dead blocks."""
        w = _template(rng, extractor)
        secret, helper = extractor.generate(w, drbg)
        w_noisy = w.copy()
        for block in range(extractor.n_blocks):
            base = block * extractor.inner.n
            if block in (3, 11):
                w_noisy[base: base + extractor.inner.n] ^= 1
            else:
                flips = rng.choice(extractor.inner.n, size=13, replace=False)
                w_noisy[base + flips] ^= 1
        assert extractor.reproduce(w_noisy, helper) == secret


class TestTamper:
    def test_tampered_offsets_rejected(self, extractor, rng, drbg):
        w = _template(rng, extractor)
        _, helper = extractor.generate(w, drbg)
        bad_offsets = helper.offsets.copy()
        # Corrupt more blocks than the outer code can absorb.
        bad_offsets[:9, :40] ^= 1
        bad = ConcatenatedHelperData(offsets=bad_offsets,
                                     commitment=helper.commitment,
                                     seed=helper.seed)
        with pytest.raises(RecoveryError):
            extractor.reproduce(w, bad)

    def test_tampered_commitment_rejected(self, extractor, rng, drbg):
        w = _template(rng, extractor)
        _, helper = extractor.generate(w, drbg)
        bad = ConcatenatedHelperData(
            offsets=helper.offsets,
            commitment=bytes([helper.commitment[0] ^ 1])
            + helper.commitment[1:],
            seed=helper.seed,
        )
        with pytest.raises(RecoveryError, match="commitment"):
            extractor.reproduce(w, bad)


class TestIrisWorkload:
    """Full 2032-bit iris-like codes at Daugman-like genuine noise."""

    def test_genuine_accept_impostor_reject(self):
        extractor = ConcatenatedCodeOffsetExtractor(
            inner=BchCode(7, 13), n_blocks=16, outer_k=8
        )
        dataset = IrisLikeDataset(n_users=3,
                                  code_bits=extractor.template_bits,
                                  genuine_flip_rate=0.08, seed=4)
        rng = np.random.default_rng(8)
        secret, helper = extractor.generate(dataset.template(0),
                                            HmacDrbg(b"iris"))
        accepted = 0
        for _ in range(10):
            try:
                accepted += extractor.reproduce(
                    dataset.genuine_reading(0, rng), helper) == secret
            except RecoveryError:
                pass
        # ~8% of 127 ≈ 10 flips/block vs t=13 per block, plus 4 spare
        # blocks: acceptance should be high.
        assert accepted >= 8
        for _ in range(5):
            with pytest.raises(RecoveryError):
                extractor.reproduce(dataset.impostor_reading(rng), helper)

    def test_storage_accounting(self, extractor, rng, drbg):
        w = _template(rng, extractor)
        _, helper = extractor.generate(w, drbg)
        expected = extractor.template_bits + 8 * 32 + 8 * 32
        assert helper.storage_bits() == expected
