"""Backend parity suite: python and gmpy2 kernels are byte-identical.

The backend contract is that switching the integer kernel is invisible
everywhere above it — every scheme, the MSM kernels, batch verification,
Tonelli–Shanks, and the fixed-base exponentiation tables must produce
bit-identical outputs under either backend.  The gmpy2 half of each
parity test self-skips when gmpy2 is not importable (the fallback leg
CI runs), so this file is meaningful in both CI matrix legs.
"""

import random

import pytest

from repro.crypto import backend
from repro.crypto import numbertheory as nt
from repro.crypto.signatures import get_scheme

BACKENDS = backend.available_backends()
ALL = pytest.mark.parametrize(
    "backend_name",
    ["python",
     pytest.param("gmpy2", marks=pytest.mark.skipif(
         "gmpy2" not in BACKENDS, reason="gmpy2 not importable"))],
)

P256_P = 2**256 - 2**224 + 2**192 + 2**96 - 1


class TestBackendSelection:
    def test_python_backend_always_available(self):
        assert "python" in BACKENDS
        assert backend._resolve("python").name == "python"

    def test_auto_resolution(self):
        resolved = backend._resolve("auto")
        expected = "gmpy2" if "gmpy2" in BACKENDS else "python"
        assert resolved.name == expected
        assert backend._resolve("").name == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown crypto backend"):
            backend._resolve("libtommath")

    def test_forcing_missing_gmpy2_raises(self):
        if "gmpy2" in BACKENDS:
            pytest.skip("gmpy2 is importable here")
        with pytest.raises(ImportError, match="gmpy2"):
            backend._resolve("gmpy2")

    def test_use_backend_restores(self):
        before = backend.active()
        with backend.use_backend("python"):
            assert backend.active().name == "python"
        assert backend.active() is before


class TestBackendPrimitives:
    @ALL
    def test_modexp_matches_builtin_pow(self, backend_name):
        rng = random.Random(7)
        with backend.use_backend(backend_name):
            for _ in range(50):
                base = rng.randrange(0, P256_P)
                exp = rng.randrange(0, P256_P)
                got = backend.modexp(base, exp, P256_P)
                assert got == pow(base, exp, P256_P)
                assert type(got) is int

    @ALL
    def test_modinv_matches_extended_euclid_reference(self, backend_name):
        rng = random.Random(11)
        with backend.use_backend(backend_name):
            for _ in range(50):
                value = rng.randrange(1, P256_P)
                got = nt.modinv(value, P256_P)
                assert got == nt.modinv_reference(value, P256_P)
                assert value * got % P256_P == 1

    @ALL
    def test_modinv_rejects_non_invertible(self, backend_name):
        with backend.use_backend(backend_name):
            with pytest.raises(ValueError, match="no inverse"):
                nt.modinv(6, 9)
            with pytest.raises(ValueError, match="no inverse"):
                nt.modinv(0, 17)

    @ALL
    def test_batch_modinv_matches_singles(self, backend_name):
        rng = random.Random(13)
        values = [rng.randrange(1, P256_P) for _ in range(33)]
        with backend.use_backend(backend_name):
            got = nt.batch_modinv(values, P256_P)
            assert got == [nt.modinv(v, P256_P) for v in values]
            assert all(type(g) is int for g in got)
            assert nt.batch_modinv([], P256_P) == []

    @ALL
    def test_batch_modinv_rejects_non_invertible_member(self, backend_name):
        with backend.use_backend(backend_name):
            with pytest.raises(ValueError, match="no inverse"):
                nt.batch_modinv([3, 17, 5], 17)


def _python_reference(fn):
    """Run ``fn`` under the pure-python backend (the parity baseline)."""
    with backend.use_backend("python"):
        return fn()


class TestKernelParity:
    @ALL
    def test_sliding_window_pow(self, backend_name):
        rng = random.Random(17)
        cases = [(rng.randrange(2, 1 << 1024), rng.randrange(1, 1 << 160),
                  (1 << 1024) + 643) for _ in range(5)]
        expected = _python_reference(
            lambda: [nt.sliding_window_pow(b, e, m) for b, e, m in cases])
        with backend.use_backend(backend_name):
            got = [nt.sliding_window_pow(b, e, m) for b, e, m in cases]
        assert got == expected
        assert got == [pow(b, e, m) for b, e, m in cases]

    @ALL
    def test_fixed_base_exp(self, backend_name):
        base, modulus = 0xACE5, (1 << 512) + 75
        rng = random.Random(19)
        exps = [rng.randrange(0, 1 << 160) for _ in range(8)]
        with backend.use_backend(backend_name):
            table = nt.FixedBaseExp(base, modulus, 160, window=5)
            got = [table.pow(e) for e in exps]
        assert got == [pow(base, e, modulus) for e in exps]
        assert table.base == base  # stays a plain, comparable int

    @ALL
    def test_tonelli_shanks_both_branches(self, backend_name):
        # p % 4 == 3 fast path and the p % 4 == 1 main loop.
        cases = [(P256_P, 4), (P256_P, 2), (13, 4), (13, 10), (17, 2)]
        with backend.use_backend(backend_name):
            for p, n in cases:
                root = nt.tonelli_shanks(n, p)
                assert root * root % p == n % p
                assert type(root) is int

    @ALL
    def test_curve_scalar_multiply(self, backend_name):
        from repro.crypto.ec import P256

        rng = random.Random(23)
        scalars = [rng.randrange(1, P256.n) for _ in range(4)]
        q_point = P256.multiply(scalars[0], P256.generator)
        expected = _python_reference(
            lambda: [(P256.multiply(k, P256.generator),
                      P256.multiply(k, q_point)) for k in scalars])
        with backend.use_backend(backend_name):
            got = [(P256.multiply(k, P256.generator),
                    P256.multiply(k, q_point)) for k in scalars]
            affine = [P256.multiply_affine(k, P256.generator)
                      for k in scalars]
        assert got == expected
        assert [g for g, _ in got] == affine

    @ALL
    def test_curve_multi_multiply(self, backend_name):
        from repro.crypto.ec import P256

        rng = random.Random(29)
        points = [P256.multiply(rng.randrange(1, P256.n), P256.generator)
                  for _ in range(6)]
        terms = [(rng.randrange(1, P256.n), pt) for pt in points]
        expected = _python_reference(lambda: P256.multi_multiply(terms))
        with backend.use_backend(backend_name):
            assert P256.multi_multiply(terms) == expected

    @ALL
    def test_decode_point_square_root(self, backend_name):
        from repro.crypto.ec import P256

        point = P256.multiply(0x1234567, P256.generator)
        encoded = P256.encode_point(point)
        with backend.use_backend(backend_name):
            assert P256.decode_point(encoded) == point


class TestSchemeParity:
    @pytest.mark.parametrize("scheme_name",
                             ["ecdsa-p-256", "schnorr-p-256", "dsa-1024"])
    @ALL
    def test_sign_verify_byte_identical(self, scheme_name, backend_name):
        scheme = get_scheme(scheme_name)
        seed = b"backend-parity-" + scheme_name.encode()
        message = b"backend parity message"

        def flow():
            keypair = scheme.keygen_from_seed(seed)
            signature = scheme.sign(keypair.signing_key, message)
            table = scheme.precompute(keypair.verify_key)
            assert scheme.verify(keypair.verify_key, message, signature)
            assert scheme.verify(keypair.verify_key, message, signature,
                                 table=table)
            assert scheme.verify_reference(keypair.verify_key, message,
                                           signature)
            bad = bytearray(signature)
            bad[-1] ^= 1
            assert not scheme.verify(keypair.verify_key, message,
                                     bytes(bad), table=table)
            return keypair.signing_key, keypair.verify_key, signature

        expected = _python_reference(flow)
        with backend.use_backend(backend_name):
            assert flow() == expected

    @ALL
    def test_schnorr_verify_batch(self, backend_name):
        scheme = get_scheme("schnorr-p-256")
        message = b"backend batch parity"
        keypairs = [scheme.keygen_from_seed(b"backend-batch-%02d" % i)
                    for i in range(8)]
        items = [(kp.verify_key, message,
                  scheme.sign(kp.signing_key, message)) for kp in keypairs]
        forged = list(items)
        bad = bytearray(items[3][2])
        bad[-1] ^= 1
        forged[3] = (items[3][0], message, bytes(bad))
        with backend.use_backend(backend_name):
            tables = [scheme.precompute(kp.verify_key) for kp in keypairs]
            assert scheme.verify_batch(items, tables=tables) == [True] * 8
            assert scheme.verify_batch(forged, tables=tables) == \
                [i != 3 for i in range(8)]
