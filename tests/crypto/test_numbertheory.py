"""Tests for number-theoretic primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import numbertheory as nt
from repro.crypto.prng import HmacDrbg

# Primes with known properties for fixtures.
SMALL_PRIMES = [2, 3, 5, 7, 11, 101, 257, 65537]
SMALL_COMPOSITES = [1, 4, 9, 15, 91, 561, 41041, 825265]  # incl. Carmichael


class TestMillerRabin:
    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_accepts_primes(self, p):
        assert nt.is_probable_prime(p)

    @pytest.mark.parametrize("c", SMALL_COMPOSITES)
    def test_rejects_composites_including_carmichael(self, c):
        assert not nt.is_probable_prime(c)

    def test_rejects_negatives_and_zero(self):
        assert not nt.is_probable_prime(0)
        assert not nt.is_probable_prime(-7)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert nt.is_probable_prime(2 ** 127 - 1)

    def test_large_known_composite(self):
        assert not nt.is_probable_prime(2 ** 127 + 1)

    def test_mersenne_521(self):
        assert nt.is_probable_prime(2 ** 521 - 1)

    @given(st.integers(2, 10_000))
    @settings(max_examples=200)
    def test_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n ** 0.5) + 1)) and n >= 2
        assert nt.is_probable_prime(n) == by_trial


class TestModInv:
    @given(st.integers(1, 10 ** 9))
    def test_inverse_property(self, a):
        p = 2 ** 61 - 1  # prime modulus
        inv = nt.modinv(a % p or 1, p)
        assert (a % p or 1) * inv % p == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError, match="no inverse"):
            nt.modinv(6, 9)


class TestPrimeGeneration:
    def test_generated_prime_size_and_primality(self):
        drbg = HmacDrbg(b"pgen")
        p = nt.generate_prime(64, drbg)
        assert p.bit_length() == 64
        assert nt.is_probable_prime(p)

    def test_deterministic_from_seed(self):
        p1 = nt.generate_prime(48, HmacDrbg(b"same"))
        p2 = nt.generate_prime(48, HmacDrbg(b"same"))
        assert p1 == p2

    def test_rejects_tiny_size(self):
        with pytest.raises(ValueError):
            nt.generate_prime(1, HmacDrbg(b"x"))

    def test_prime_with_factor_structure(self):
        drbg = HmacDrbg(b"dsa-like")
        q = nt.generate_prime(32, drbg)
        p = nt.generate_prime_with_factor(128, q, drbg)
        assert p.bit_length() == 128
        assert (p - 1) % q == 0
        assert nt.is_probable_prime(p)

    def test_prime_with_factor_rejects_oversized_q(self):
        drbg = HmacDrbg(b"x")
        q = nt.generate_prime(64, drbg)
        with pytest.raises(ValueError):
            nt.generate_prime_with_factor(64, q, drbg)

    def test_group_generator_has_order_q(self):
        drbg = HmacDrbg(b"ggen")
        q = nt.generate_prime(24, drbg)
        p = nt.generate_prime_with_factor(96, q, drbg)
        g = nt.find_group_generator(p, q, drbg)
        assert pow(g, q, p) == 1
        assert g != 1


class TestTonelliShanks:
    @given(st.integers(1, 10 ** 6))
    @settings(max_examples=100)
    def test_root_squares_back(self, x):
        p = 2 ** 61 - 1
        square = x * x % p
        root = nt.tonelli_shanks(square, p)
        assert root * root % p == square

    def test_zero(self):
        assert nt.tonelli_shanks(0, 101) == 0

    def test_non_residue_raises(self):
        # 5 is a non-residue mod 7 (squares mod 7: 1,2,4).
        with pytest.raises(ValueError, match="not a quadratic residue"):
            nt.tonelli_shanks(5, 7)

    def test_p_equals_1_mod_4_path(self):
        """p ≡ 1 (mod 4) exercises the full Tonelli-Shanks loop."""
        p = 13  # 13 % 4 == 1
        for x in range(1, 13):
            square = x * x % p
            root = nt.tonelli_shanks(square, p)
            assert root * root % p == square


class TestLegendre:
    def test_residue(self):
        assert nt.legendre_symbol(4, 7) == 1

    def test_non_residue(self):
        assert nt.legendre_symbol(5, 7) == -1

    def test_zero(self):
        assert nt.legendre_symbol(7, 7) == 0
