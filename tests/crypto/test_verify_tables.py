"""Precompute surfaces, fast-vs-reference verify parity for every scheme,
the fixed-base/sliding-window modexp kernels, and the LRU verify-table
cache the protocol layer serves warm verifies from."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dsa import Dsa
from repro.crypto.dsa_groups import GROUP_512
from repro.crypto.numbertheory import FixedBaseExp, sliding_window_pow
from repro.crypto.signatures import VerifyTableCache, get_scheme

ALL_SCHEMES = ["dsa-512", "dsa-1024", "ecdsa-p-256", "schnorr-p-256"]


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestVerifyPathParity:
    """fast verify == table verify == retained reference, bit for bit."""

    def _fixture(self, name):
        scheme = get_scheme(name)
        keypair = scheme.keygen_from_seed(name.encode() * 4)
        signature = scheme.sign(keypair.signing_key, b"m")
        return scheme, keypair, signature

    def test_all_paths_accept_good_signature(self, name):
        scheme, keypair, signature = self._fixture(name)
        table = scheme.precompute(keypair.verify_key)
        assert table is not None
        assert scheme.verify(keypair.verify_key, b"m", signature)
        assert scheme.verify(keypair.verify_key, b"m", signature, table=table)
        assert scheme.verify_reference(keypair.verify_key, b"m", signature)

    def test_all_paths_reject_bitflips(self, name):
        scheme, keypair, signature = self._fixture(name)
        table = scheme.precompute(keypair.verify_key)
        for pos in range(0, len(signature), max(1, len(signature) // 6)):
            mutated = bytearray(signature)
            mutated[pos] ^= 0x20
            mutated = bytes(mutated)
            cold = scheme.verify(keypair.verify_key, b"m", mutated)
            warm = scheme.verify(keypair.verify_key, b"m", mutated,
                                 table=table)
            reference = scheme.verify_reference(keypair.verify_key, b"m",
                                                mutated)
            assert cold == warm == reference == False  # noqa: E712

    def test_all_paths_reject_wrong_message(self, name):
        scheme, keypair, signature = self._fixture(name)
        table = scheme.precompute(keypair.verify_key)
        assert not scheme.verify(keypair.verify_key, b"other", signature,
                                 table=table)
        assert not scheme.verify_reference(keypair.verify_key, b"other",
                                           signature)

    def test_mispaired_table_fails_closed(self, name):
        """A table built for key A must never authenticate under key B."""
        scheme = get_scheme(name)
        kp_a = scheme.keygen_from_seed(b"pair-a" * 6)
        kp_b = scheme.keygen_from_seed(b"pair-b" * 6)
        sig_a = scheme.sign(kp_a.signing_key, b"m")
        table_a = scheme.precompute(kp_a.verify_key)
        # Correct pairing verifies; swapping in B's key with A's table
        # must fail even though the table alone would check out.
        assert scheme.verify(kp_a.verify_key, b"m", sig_a, table=table_a)
        assert not scheme.verify(kp_b.verify_key, b"m", sig_a,
                                 table=table_a)

    def test_precompute_rejects_malformed_key(self, name):
        scheme, keypair, _ = self._fixture(name)
        assert scheme.precompute(b"\x01" * len(keypair.verify_key)) is None
        assert scheme.precompute(b"") is None

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=5)
    def test_paths_agree_on_random_messages(self, name, message):
        scheme, keypair, _ = self._fixture(name)
        table = scheme.precompute(keypair.verify_key)
        signature = scheme.sign(keypair.signing_key, message)
        assert scheme.verify(keypair.verify_key, message, signature,
                             table=table)
        assert scheme.verify_reference(keypair.verify_key, message,
                                       signature)


class TestModexpKernels:
    P = GROUP_512.p
    G = GROUP_512.g
    Q = GROUP_512.q

    @given(st.integers(2, 2 ** 512), st.integers(0, 2 ** 200))
    @settings(max_examples=25)
    def test_sliding_window_matches_builtin(self, base, exponent):
        assert sliding_window_pow(base, exponent, self.P) == \
            pow(base, exponent, self.P)

    @pytest.mark.parametrize("window", [1, 3, 6])
    def test_sliding_window_widths(self, window):
        assert sliding_window_pow(7, 0xABCDEF0123, self.P, window) == \
            pow(7, 0xABCDEF0123, self.P)

    def test_sliding_window_edge_cases(self):
        assert sliding_window_pow(5, 0, self.P) == 1
        assert sliding_window_pow(5, 1, self.P) == 5
        assert sliding_window_pow(5, 3, 1) == 0
        with pytest.raises(ValueError):
            sliding_window_pow(5, -1, self.P)

    @given(st.integers(0, 2 ** 160 - 1))
    @settings(max_examples=25)
    def test_fixed_base_matches_builtin(self, exponent):
        fb = FixedBaseExp(self.G, self.P, 160, window=5)
        assert fb.pow(exponent) == pow(self.G, exponent, self.P)

    def test_fixed_base_rejects_out_of_range(self):
        fb = FixedBaseExp(self.G, self.P, 16)
        with pytest.raises(ValueError, match="exceeds"):
            fb.pow(1 << 32)
        with pytest.raises(ValueError):
            fb.pow(-1)

    def test_fixed_base_q_boundary(self):
        fb = FixedBaseExp(self.G, self.P, self.Q.bit_length())
        assert fb.pow(self.Q - 1) == pow(self.G, self.Q - 1, self.P)
        assert fb.pow(0) == 1


class TestDsaGeneratorTable:
    def test_sign_and_keygen_unchanged_by_table(self):
        """The cached g-table must not change any byte of the outputs."""
        scheme = Dsa(GROUP_512)
        keypair = scheme.keygen_from_seed(b"table-parity" * 3)
        signature = scheme.sign(keypair.signing_key, b"m")
        fresh = Dsa(GROUP_512)  # no table built yet
        assert fresh.keygen_from_seed(b"table-parity" * 3) == keypair
        # Reference check: y = g^x with builtin pow.
        x = int.from_bytes(keypair.signing_key, "big")
        y = int.from_bytes(keypair.verify_key, "big")
        assert pow(GROUP_512.g, x, GROUP_512.p) == y
        assert scheme.verify_reference(keypair.verify_key, b"m", signature)


class TestVerifyTableCache:
    def _scheme(self):
        return get_scheme("dsa-512")

    def _keypair(self, tag=b"cache-key"):
        return self._scheme().keygen_from_seed(tag * 4)

    def test_builds_on_second_use(self):
        scheme, keypair = self._scheme(), self._keypair()
        cache = VerifyTableCache(capacity=4)
        assert cache.table_for(scheme, keypair.verify_key) is None  # seen once
        assert cache.table_for(scheme, keypair.verify_key) is not None
        assert len(cache) == 1
        assert cache.misses == 2 and cache.hits == 0
        assert cache.table_for(scheme, keypair.verify_key) is not None
        assert cache.hits == 1

    def test_verify_through_cache(self):
        scheme, keypair = self._scheme(), self._keypair()
        cache = VerifyTableCache(capacity=4)
        signature = scheme.sign(keypair.signing_key, b"m")
        for _ in range(3):  # cold, promoting, warm
            assert cache.verify(scheme, keypair.verify_key, b"m", signature)
        assert not cache.verify(scheme, keypair.verify_key, b"x", signature)
        assert len(cache) == 1

    def test_lru_eviction(self):
        scheme = self._scheme()
        cache = VerifyTableCache(capacity=2)
        keys = [self._keypair(bytes([65 + i]) * 9).verify_key
                for i in range(3)]
        for key in keys:
            cache.table_for(scheme, key)
            cache.table_for(scheme, key)  # promote
        assert len(cache) == 2
        assert cache.evictions == 1
        # keys[0] was evicted; keys[1] and keys[2] still warm.
        assert cache.hits == 0
        cache.table_for(scheme, keys[2])
        assert cache.hits == 1

    def test_malformed_key_cached_as_negative(self):
        scheme = self._scheme()
        cache = VerifyTableCache(capacity=4)
        junk = b"\x00" * 64
        cache.table_for(scheme, junk)
        assert cache.table_for(scheme, junk) is None  # built: None
        assert cache.table_for(scheme, junk) is None  # cached negative
        assert cache.hits == 1
        assert len(cache) == 0  # negatives never occupy table capacity
        assert not cache.verify(scheme, junk, b"m", b"sig")

    def test_garbage_key_flood_cannot_evict_warm_tables(self):
        scheme, keypair = self._scheme(), self._keypair()
        cache = VerifyTableCache(capacity=2)
        cache.table_for(scheme, keypair.verify_key)
        assert cache.table_for(scheme, keypair.verify_key) is not None
        for i in range(10):  # 5 junk keys, each seen twice
            junk = bytes([i]) * 64
            cache.table_for(scheme, junk)
            cache.table_for(scheme, junk)
        assert cache.evictions == 0
        assert cache.table_for(scheme, keypair.verify_key) is not None
        assert len(cache) == 1

    def test_scheme_without_precompute_degrades(self):
        class Bare:
            name = "bare"

            def verify(self, verify_key, message, signature):
                return message == b"ok"

        cache = VerifyTableCache(capacity=2)
        assert cache.table_for(Bare(), b"key") is None
        assert cache.verify(Bare(), b"key", b"ok", b"sig")
        assert not cache.verify(Bare(), b"key", b"no", b"sig")
        assert len(cache) == 0

    def test_clear_drops_tables_keeps_counters(self):
        scheme, keypair = self._scheme(), self._keypair()
        cache = VerifyTableCache(capacity=4)
        cache.table_for(scheme, keypair.verify_key)
        cache.table_for(scheme, keypair.verify_key)
        misses = cache.misses
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == misses

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            VerifyTableCache(capacity=0)

    def test_stats_snapshot(self):
        cache = VerifyTableCache(capacity=8)
        stats = cache.stats()
        assert stats.as_dict() == {
            "entries": 0, "capacity": 8, "hits": 0,
            "misses": 0, "evictions": 0, "batch_calls": 0,
            "batch_items": 0, "batch_max": 0, "batch_warm": 0}
        # Dict-style item access stays for pre-dataclass consumers.
        assert stats["capacity"] == 8
        with pytest.raises(KeyError):
            stats["nope"]


class TestVerifyTableCacheBatch:
    """The batched verify surface and its counters."""

    def _stack(self, name="schnorr-p-256", k=4, message=b"batch"):
        scheme = get_scheme(name)
        keypairs = [scheme.keygen_from_seed(f"cb-{i}".encode() * 6)
                    for i in range(k)]
        items = [(kp.verify_key, message,
                  scheme.sign(kp.signing_key, message)) for kp in keypairs]
        return scheme, keypairs, items

    def test_batch_counters_advance(self):
        scheme, _, items = self._stack()
        cache = VerifyTableCache(capacity=8)
        assert cache.verify_batch(scheme, items) == [True] * 4
        assert cache.verify_batch(scheme, items[:3]) == [True] * 3
        stats = cache.stats()
        assert stats["batch_calls"] == 2
        assert stats["batch_items"] == 7
        assert stats["batch_max"] == 4
        # First call: every key seen once (cold).  Second call: the three
        # recurring keys get tables built and verify warm.
        assert stats["batch_warm"] == 3
        # Each batched item still counts one hit or miss via table_for.
        assert stats["hits"] + stats["misses"] == 7

    def test_batch_parity_with_serial_cache_verify(self):
        scheme, keypairs, items = self._stack()
        bad = bytearray(items[2][2])
        bad[-1] ^= 1
        items[2] = (items[2][0], items[2][1], bytes(bad))
        batched = VerifyTableCache(capacity=8)
        serial = VerifyTableCache(capacity=8)
        for _ in range(3):  # cold, promoting, warm
            got = batched.verify_batch(scheme, items)
            want = [serial.verify(scheme, *item) for item in items]
            assert got == want == [True, True, False, True]

    def test_empty_batch_is_free(self):
        scheme, _, _ = self._stack(k=1)
        cache = VerifyTableCache(capacity=2)
        assert cache.verify_batch(scheme, []) == []
        assert cache.stats()["batch_calls"] == 0

    def test_batch_degrades_without_scheme_batch_surface(self):
        class Bare:
            name = "bare"

            def verify(self, verify_key, message, signature):
                return message == b"ok"

        cache = VerifyTableCache(capacity=2)
        verdicts = cache.verify_batch(
            Bare(), [(b"k1", b"ok", b"s"), (b"k2", b"no", b"s")])
        assert verdicts == [True, False]
        assert cache.stats()["batch_calls"] == 1

    def test_batch_with_garbage_keys_fails_those_items_only(self):
        scheme, _, items = self._stack(k=3)
        items[1] = (b"\x00" * 33, items[1][1], items[1][2])
        cache = VerifyTableCache(capacity=8)
        for _ in range(3):
            assert cache.verify_batch(scheme, items) == [True, False, True]
        assert len(cache) == 2  # the garbage key never occupies a slot

    def test_concurrent_batches_keep_counters_consistent(self, watchdog):
        """Satellite: lock-safety stress over the new batch path —
        verify workers batching against one shared cache must neither
        produce a wrong verdict nor lose a counter update."""
        import threading

        scheme, keypairs, items = self._stack(k=6, message=b"stress")
        cache = VerifyTableCache(capacity=16)
        n_threads, per_thread = 6, 20
        failures: list[str] = []
        barrier = threading.Barrier(n_threads)

        def worker(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                lo = (tid + i) % len(items)
                batch = items[lo:] + items[:lo]  # rotated: all keys, every call
                verdicts = cache.verify_batch(scheme, batch)
                if verdicts != [True] * len(batch):
                    failures.append(f"thread {tid} call {i}: {verdicts}")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        stats = cache.stats()
        total_calls = n_threads * per_thread
        assert stats["batch_calls"] == total_calls
        assert stats["batch_items"] == total_calls * len(items)
        assert stats["batch_max"] == len(items)
        # Every batched item resolves to exactly one hit or one miss.
        assert stats["hits"] + stats["misses"] == total_calls * len(items)
        assert len(cache) == len(items)  # all six keys promoted


class TestVerifyTableCacheThreadSafety:
    """The cache is shared by the service frontend's verify workers."""

    def test_concurrent_verifies_keep_counters_consistent(self, watchdog):
        import threading

        scheme = Dsa(GROUP_512)
        keypairs = [scheme.keygen_from_seed(f"vt-{i}".encode() * 4)
                    for i in range(4)]
        signatures = [scheme.sign(kp.signing_key, b"stress")
                      for kp in keypairs]
        cache = VerifyTableCache(capacity=8)
        n_threads, per_thread = 6, 30
        failures: list[str] = []
        barrier = threading.Barrier(n_threads)

        def worker(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                j = (tid + i) % len(keypairs)
                ok = cache.verify(scheme, keypairs[j].verify_key,
                                  b"stress", signatures[j])
                if not ok:
                    failures.append(f"thread {tid} verify {i} failed")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        # Every table_for call counts exactly one hit or one miss, even
        # under contention — lost updates would break this invariant.
        assert cache.hits + cache.misses == n_threads * per_thread
        assert len(cache) == len(keypairs)  # all four keys promoted
        # Per key: one seen-once miss, one build miss, plus at most one
        # straggler miss per racing thread in the build window.
        assert cache.misses <= (2 + n_threads) * len(keypairs)
