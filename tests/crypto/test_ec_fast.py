"""The Jacobian/wNAF kernel vs the retained affine reference law, plus
NIST P-256 known-answer vectors (RFC 6979 A.2.5, SHA-256) anchoring the
implementation to an external standard."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ec import P256, Point, _wnaf_digits
from repro.crypto.ecdsa import Ecdsa

#: A fixed non-generator point for variable-point tests.
Q_POINT = P256.multiply_affine(
    0xB5E1D9C870FB3AD5283C8F1C6B2A49507D6A5C4E3F2B1A0918273645F0E1D2C3,
    P256.generator,
)

EDGE_SCALARS = [0, 1, 2, 3, P256.n - 2, P256.n - 1, P256.n, P256.n + 1,
                2 * P256.n + 5]


class TestWnafDigits:
    @given(st.integers(0, P256.n), st.integers(2, 8))
    @settings(max_examples=40)
    def test_digits_reconstruct_scalar(self, scalar, window):
        digits = _wnaf_digits(scalar, window)
        assert sum(d << i for i, d in enumerate(digits)) == scalar

    @given(st.integers(1, P256.n), st.integers(2, 8))
    @settings(max_examples=40)
    def test_nonzero_digits_are_odd_and_bounded(self, scalar, window):
        for digit in _wnaf_digits(scalar, window):
            if digit:
                assert digit % 2 == 1 or digit % 2 == -1
                assert abs(digit) < 1 << (window - 1)

    def test_zero_scalar_has_no_digits(self):
        assert _wnaf_digits(0, 5) == []


class TestMultiplyParity:
    """The fast kernel agrees with the affine reference on every input."""

    @given(st.integers(0, P256.n + 10))
    @settings(max_examples=15)
    def test_generator_parity_random(self, k):
        assert P256.multiply(k, P256.generator) == \
            P256.multiply_affine(k, P256.generator)

    @given(st.integers(0, P256.n + 10))
    @settings(max_examples=10)
    def test_variable_point_parity_random(self, k):
        assert P256.multiply(k, Q_POINT) == P256.multiply_affine(k, Q_POINT)

    @pytest.mark.parametrize("k", EDGE_SCALARS)
    def test_edge_scalars_generator(self, k):
        assert P256.multiply(k, P256.generator) == \
            P256.multiply_affine(k, P256.generator)

    @pytest.mark.parametrize("k", EDGE_SCALARS)
    def test_edge_scalars_variable_point(self, k):
        assert P256.multiply(k, Q_POINT) == P256.multiply_affine(k, Q_POINT)

    def test_point_at_infinity_input(self):
        assert P256.multiply(5, Point.infinity()).is_infinity
        assert P256.multiply(0, Point.infinity()).is_infinity

    def test_order_annihilates_fast_path(self):
        assert P256.multiply(P256.n, P256.generator).is_infinity
        assert P256.multiply(P256.n, Q_POINT).is_infinity

    def test_fast_results_on_curve(self):
        for k in (1, 7, 12345, P256.n - 1):
            assert P256.is_on_curve(P256.multiply(k, Q_POINT))


class TestPrecomputedTables:
    def test_table_matches_on_the_fly(self):
        table = P256.precompute_table(Q_POINT)
        for k in (1, 3, 9_999_999, P256.n - 1):
            assert P256.multiply(k, Q_POINT, table=table) == \
                P256.multiply_affine(k, Q_POINT)

    def test_table_odd_multiples_are_correct(self):
        table = P256.precompute_table(Q_POINT, window=4)
        for i, (x, y) in enumerate(table.odd):
            assert P256.multiply_affine(2 * i + 1, Q_POINT) == Point(x, y)

    def test_identity_refused(self):
        with pytest.raises(ValueError, match="identity"):
            P256.precompute_table(Point.infinity())

    def test_mispaired_table_rejected(self):
        table = P256.precompute_table(Q_POINT)
        with pytest.raises(ValueError, match="different point"):
            P256.multiply(11, P256.generator, table=table)
        with pytest.raises(ValueError, match="different point"):
            P256.shamir_multiply(1, 2, P256.generator, table=table)

    def test_precompute_verify_key_surface(self):
        encoded = P256.encode_point(Q_POINT)
        table = P256.precompute_verify_key(encoded)
        assert table is not None
        assert table.point == Q_POINT and table.verify_key == encoded
        assert P256.precompute_verify_key(b"junk") is None
        assert P256.precompute_verify_key(b"\x00") is None  # identity

    def test_comb_table_covers_full_scalar_range(self):
        # The top comb window must exist: a scalar just below n uses it.
        assert P256.multiply_base(P256.n - 1) == \
            P256.multiply_affine(P256.n - 1, P256.generator)


class TestShamirParity:
    @given(st.integers(0, P256.n), st.integers(0, P256.n))
    @settings(max_examples=10)
    def test_double_scalar_parity(self, u1, u2):
        want = P256.add(P256.multiply_affine(u1, P256.generator),
                        P256.multiply_affine(u2, Q_POINT))
        assert P256.shamir_multiply(u1, u2, Q_POINT) == want

    def test_warm_table_path(self):
        table = P256.precompute_table(Q_POINT)
        u1, u2 = 0xDEADBEEF, 0xCAFEF00D
        want = P256.add(P256.multiply_affine(u1, P256.generator),
                        P256.multiply_affine(u2, Q_POINT))
        assert P256.shamir_multiply(u1, u2, table=table) == want

    @pytest.mark.parametrize("u1,u2", [(0, 0), (0, 5), (5, 0),
                                       (P256.n, 7), (7, P256.n),
                                       (P256.n - 1, P256.n - 1)])
    def test_zero_and_edge_scalars(self, u1, u2):
        want = P256.add(P256.multiply_affine(u1, P256.generator),
                        P256.multiply_affine(u2, Q_POINT))
        assert P256.shamir_multiply(u1, u2, Q_POINT) == want

    def test_cancellation_to_infinity(self):
        # u1*G + u2*Q == O when u2 = -u1 * dlog(Q)^-1; use Q = G for a
        # directly constructible cancellation.
        assert P256.shamir_multiply(5, P256.n - 5, P256.generator) \
            .is_infinity

    def test_requires_point_or_table(self):
        with pytest.raises(ValueError, match="point or a table"):
            P256.shamir_multiply(1, 2)


class TestMultiMultiplyParity:
    """The Straus multi-scalar kernel vs the affine reference."""

    def _reference(self, terms):
        acc = Point.infinity()
        for scalar, point in terms:
            acc = P256.add(acc, P256.multiply_affine(scalar % P256.n, point))
        return acc

    @given(st.lists(st.tuples(
        st.integers(-(1 << 130), P256.n + 10),
        st.sampled_from([0, 1])), min_size=0, max_size=6))
    @settings(max_examples=15)
    def test_parity_random_terms(self, raw):
        points = [P256.generator, Q_POINT]
        terms = [(k, points[which]) for k, which in raw]
        assert P256.multi_multiply(terms) == self._reference(terms)

    def test_parity_with_warm_tables(self):
        table = P256.precompute_table(Q_POINT)
        terms = [(0xDEADBEEF, P256.generator), (0xCAFEF00D, Q_POINT),
                 (-0x1234567890ABCDEF, Q_POINT)]
        tables = [None, table, table]
        assert P256.multi_multiply(terms, tables) == self._reference(terms)

    def test_negative_scalar_is_the_group_inverse(self):
        assert P256.multi_multiply([(7, Q_POINT), (-7, Q_POINT)]).is_infinity
        assert P256.multi_multiply([(-3, Q_POINT)]) == \
            P256.multiply_affine(P256.n - 3, Q_POINT)

    def test_empty_zero_and_infinity_terms(self):
        assert P256.multi_multiply([]).is_infinity
        assert P256.multi_multiply([(0, Q_POINT)]).is_infinity
        assert P256.multi_multiply(
            [(5, Point.infinity()), (P256.n, Q_POINT)]).is_infinity

    def test_many_terms_shared_chain(self):
        points = [P256.multiply_affine(3 + i, P256.generator)
                  for i in range(9)]
        terms = [((i + 1) * 0x0123456789ABCDEF ^ (1 << (120 + i)), pt)
                 for i, pt in enumerate(points)]
        assert P256.multi_multiply(terms) == self._reference(terms)

    def test_mismatched_tables_rejected(self):
        table = P256.precompute_table(Q_POINT)
        with pytest.raises(ValueError, match="different point"):
            P256.multi_multiply([(5, P256.generator)], [table])
        with pytest.raises(ValueError, match="parallel"):
            P256.multi_multiply([(5, Q_POINT)], [])

    def test_shamir_shape_agreement(self):
        """The 2-term case must agree with shamir_multiply exactly."""
        u1, u2 = 0xFEEDFACE, 0xBADDCAFE
        assert P256.multi_multiply([(u1, P256.generator), (u2, Q_POINT)]) \
            == P256.shamir_multiply(u1, u2, Q_POINT)


class TestNistP256KnownAnswers:
    """RFC 6979 appendix A.2.5 (ECDSA, NIST P-256, SHA-256).

    The private key, public key, per-message nonces and signatures are
    published test vectors; they anchor this from-scratch implementation
    (curve constants, scalar multiplication, ECDSA equations, hash
    truncation) to an external standard rather than only to itself.
    """

    D = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
    UX = 0x60FED4BA255A9D31C961EB74C6356D68C049B8923B61FA6CE669622E60F29FB6
    UY = 0x7903FE1008B8BC99A41AE9E95628BC64F2F1B20C2D7E9F5177A3C294D4462299

    #: (message, k, r, s) straight from the RFC.
    VECTORS = [
        (b"sample",
         0xA6E3C57DD01ABE90086538398355DD4C3B17AA873382B0F24D6129493D8AAD60,
         0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716,
         0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8),
        (b"test",
         0xD16B6AE827F17175E040871A1C7EC3500192C4C92677336EC2537ACAEE0008E0,
         0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367,
         0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083),
    ]

    def _verify_key(self) -> bytes:
        return P256.encode_point(Point(self.UX, self.UY))

    def test_public_key_derivation(self):
        assert P256.multiply(self.D, P256.generator) == \
            Point(self.UX, self.UY)

    @pytest.mark.parametrize("message,k,r,s", VECTORS)
    def test_signature_equations_reproduce_vectors(self, message, k, r, s):
        """r = (k*G).x mod n and s = k^-1 (h + r*d) match the RFC."""
        n = P256.n
        h = int.from_bytes(hashlib.sha256(message).digest(), "big") % n
        assert P256.multiply(k, P256.generator).x % n == r
        assert pow(k, -1, n) * (h + r * self.D) % n == s

    @pytest.mark.parametrize("message,k,r,s", VECTORS)
    def test_verify_accepts_vectors(self, message, k, r, s):
        scheme = Ecdsa()
        signature = r.to_bytes(32, "big") + s.to_bytes(32, "big")
        assert scheme.verify(self._verify_key(), message, signature)
        assert scheme.verify_reference(self._verify_key(), message,
                                       signature)
        table = scheme.precompute(self._verify_key())
        assert scheme.verify(self._verify_key(), message, signature,
                             table=table)

    @pytest.mark.parametrize("message,k,r,s", VECTORS)
    def test_verify_rejects_corrupted_vectors(self, message, k, r, s):
        scheme = Ecdsa()
        bad_r = ((r + 1) % P256.n).to_bytes(32, "big") + s.to_bytes(32, "big")
        bad_s = r.to_bytes(32, "big") + ((s + 1) % P256.n).to_bytes(32, "big")
        for signature in (bad_r, bad_s):
            assert not scheme.verify(self._verify_key(), message, signature)

    def test_vectors_fail_under_wrong_message(self):
        scheme = Ecdsa()
        _, _, r, s = self.VECTORS[0]
        signature = r.to_bytes(32, "big") + s.to_bytes(32, "big")
        assert not scheme.verify(self._verify_key(), b"tampered", signature)
