"""Cross-scheme tests: ECDSA, EC-Schnorr, and the scheme registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import available_schemes, get_scheme
from repro.crypto.ecdsa import Ecdsa
from repro.crypto.schnorr import EcSchnorr
from repro.exceptions import SignatureError

ALL_SCHEMES = ["dsa-512", "dsa-1024", "ecdsa-p-256", "schnorr-p-256"]


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestSchemeContract:
    """Every registered scheme satisfies the SignatureScheme contract."""

    def test_roundtrip(self, name):
        scheme = get_scheme(name)
        kp = scheme.keygen_from_seed(b"R" * 32)
        sig = scheme.sign(kp.signing_key, b"challenge")
        assert scheme.verify(kp.verify_key, b"challenge", sig)

    def test_wrong_message_rejected(self, name):
        scheme = get_scheme(name)
        kp = scheme.keygen_from_seed(b"R" * 32)
        sig = scheme.sign(kp.signing_key, b"m1")
        assert not scheme.verify(kp.verify_key, b"m2", sig)

    def test_cross_key_rejected(self, name):
        scheme = get_scheme(name)
        kp1 = scheme.keygen_from_seed(b"1" * 32)
        kp2 = scheme.keygen_from_seed(b"2" * 32)
        sig = scheme.sign(kp1.signing_key, b"m")
        assert not scheme.verify(kp2.verify_key, b"m", sig)

    def test_keygen_deterministic(self, name):
        scheme = get_scheme(name)
        assert scheme.keygen_from_seed(b"x" * 32) == scheme.keygen_from_seed(b"x" * 32)

    def test_empty_signature_rejected(self, name):
        scheme = get_scheme(name)
        kp = scheme.keygen_from_seed(b"R" * 32)
        assert not scheme.verify(kp.verify_key, b"m", b"")

    def test_bitflip_rejected_everywhere(self, name):
        scheme = get_scheme(name)
        kp = scheme.keygen_from_seed(b"R" * 32)
        sig = scheme.sign(kp.signing_key, b"m")
        for pos in range(0, len(sig), max(1, len(sig) // 8)):
            mutated = bytearray(sig)
            mutated[pos] ^= 0x40
            assert not scheme.verify(kp.verify_key, b"m", bytes(mutated)), \
                f"bit flip at byte {pos} accepted"


class TestRegistry:
    def test_all_expected_schemes_present(self):
        names = available_schemes()
        for expected in ALL_SCHEMES:
            assert expected in names

    def test_unknown_scheme_raises_with_hint(self):
        with pytest.raises(KeyError, match="known:"):
            get_scheme("rsa-4096")


class TestEcdsaSpecifics:
    def test_signature_length(self):
        scheme = Ecdsa()
        kp = scheme.keygen_from_seed(b"R" * 32)
        assert len(scheme.sign(kp.signing_key, b"m")) == 64

    def test_verify_key_is_compressed_point(self):
        scheme = Ecdsa()
        kp = scheme.keygen_from_seed(b"R" * 32)
        assert len(kp.verify_key) == 33
        assert kp.verify_key[0] in (2, 3)

    def test_sign_rejects_bad_key_length(self):
        with pytest.raises(SignatureError):
            Ecdsa().sign(b"short", b"m")

    def test_garbage_verify_key_rejected(self):
        scheme = Ecdsa()
        kp = scheme.keygen_from_seed(b"R" * 32)
        sig = scheme.sign(kp.signing_key, b"m")
        assert not scheme.verify(b"\x02" + b"\x00" * 32, b"m", sig)

    @given(st.binary(max_size=100))
    @settings(max_examples=10)
    def test_roundtrip_messages(self, message):
        scheme = Ecdsa()
        kp = scheme.keygen_from_seed(b"prop" * 8)
        sig = scheme.sign(kp.signing_key, message)
        assert scheme.verify(kp.verify_key, message, sig)


class TestSchnorrSpecifics:
    def test_signature_layout(self):
        scheme = EcSchnorr()
        kp = scheme.keygen_from_seed(b"R" * 32)
        sig = scheme.sign(kp.signing_key, b"m")
        assert len(sig) == 33 + 32  # compressed commitment + scalar

    def test_key_prefixing_blocks_key_substitution(self):
        """A signature under key A must not verify under any other key."""
        scheme = EcSchnorr()
        kp_a = scheme.keygen_from_seed(b"a" * 32)
        kp_b = scheme.keygen_from_seed(b"b" * 32)
        sig = scheme.sign(kp_a.signing_key, b"m")
        assert not scheme.verify(kp_b.verify_key, b"m", sig)

    def test_sign_rejects_bad_key(self):
        with pytest.raises(SignatureError):
            EcSchnorr().sign(b"nope", b"m")

    @given(st.binary(max_size=100))
    @settings(max_examples=10)
    def test_roundtrip_messages(self, message):
        scheme = EcSchnorr()
        kp = scheme.keygen_from_seed(b"prop" * 8)
        assert scheme.verify(
            kp.verify_key, message, scheme.sign(kp.signing_key, message)
        )
