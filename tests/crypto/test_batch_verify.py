"""Randomized Schnorr batch verification: adversarial soundness (a forged
signature must not hide in a batch of honest ones; a crafted cancellation
pair must be caught), bisection correctness (exactly the bad indices are
isolated), and per-item parity with single ``verify`` across every scheme
and awkward batch sizes.

The concurrency-free tests here still take the ``watchdog`` fixture where
they recurse (bisection) or loop adversarially — a kernel bug that turned
bisection into infinite recursion or an unbounded retry must fail the
suite in seconds, not hang it.
"""

from __future__ import annotations

import pytest

import repro.crypto.schnorr as schnorr_mod
from repro.crypto.signatures import get_scheme

ALL_SCHEMES = ["dsa-512", "ecdsa-p-256", "schnorr-p-256"]
#: Edge batch sizes: singleton, pair, odd, non-power-of-two, past one
#: bisection level.
BATCH_SIZES = [1, 2, 3, 5, 7, 12]


def _stack(name: str, k: int, message: bytes = b"batch-m"):
    scheme = get_scheme(name)
    keypairs = [scheme.keygen_from_seed(f"bv-{name}-{i}".encode() * 3)
                for i in range(k)]
    signatures = [scheme.sign(kp.signing_key, message) for kp in keypairs]
    items = [(kp.verify_key, message, sig)
             for kp, sig in zip(keypairs, signatures)]
    tables = [scheme.precompute(kp.verify_key) for kp in keypairs]
    return scheme, keypairs, items, tables


def _corrupt(item, flip_last=True):
    key, message, signature = item
    mutated = bytearray(signature)
    mutated[-1 if flip_last else 0] ^= 1
    return (key, message, bytes(mutated))


class TestBatchParity:
    """verify_batch(items)[i] == verify(*items[i]) for every composition."""

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @pytest.mark.parametrize("k", BATCH_SIZES)
    def test_all_honest_batches_accept(self, name, k):
        scheme, _, items, tables = _stack(name, k)
        assert scheme.verify_batch(items) == [True] * k
        assert scheme.verify_batch(items, tables=tables) == [True] * k

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_mixed_batch_matches_single_verify(self, name):
        scheme, _, items, tables = _stack(name, 6)
        items[1] = _corrupt(items[1])
        items[4] = _corrupt(items[4], flip_last=False)
        want = [scheme.verify(*item) for item in items]
        assert scheme.verify_batch(items) == want
        assert scheme.verify_batch(items, tables=tables) == want
        assert want.count(False) == 2

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_empty_batch(self, name):
        scheme = get_scheme(name)
        assert scheme.verify_batch([]) == []

    def test_wrong_message_rejected_per_item(self):
        scheme, _, items, tables = _stack("schnorr-p-256", 4)
        key, _, sig = items[2]
        items[2] = (key, b"a different message", sig)
        assert scheme.verify_batch(items, tables=tables) == \
            [True, True, False, True]


class TestBatchAdversarial:
    """The randomized-weights soundness story."""

    def test_forged_signature_cannot_hide_among_honest(self, watchdog):
        scheme, keypairs, items, tables = _stack("schnorr-p-256", 8)
        for bad in (0, 3, 7):  # first, middle, last position
            forged = list(items)
            forged[bad] = _corrupt(items[bad])
            verdicts = scheme.verify_batch(forged, tables=tables)
            assert verdicts == [i != bad for i in range(8)]

    def test_bisection_isolates_exactly_the_bad_indices(self, watchdog):
        scheme, _, items, tables = _stack("schnorr-p-256", 12)
        for bad_set in ({0}, {11}, {0, 11}, {2, 3, 4}, {1, 5, 6, 10},
                        set(range(12))):
            forged = [(_corrupt(item) if i in bad_set else item)
                      for i, item in enumerate(items)]
            verdicts = scheme.verify_batch(forged, tables=tables)
            assert verdicts == [i not in bad_set for i in range(12)], bad_set

    def test_cancellation_pair_defeats_fixed_weights_not_random(
            self, monkeypatch, watchdog):
        """The attack the random weights exist to stop: two signatures
        with responses ``s_1 + δ`` and ``s_2 - δ`` are individually
        invalid but cancel in an *unweighted* (or equal-weighted)
        aggregate.  Pinning the weight source makes the forged batch
        pass — demonstrating the attack — and restoring real randomness
        makes both members fail."""
        scheme, keypairs, items, tables = _stack("schnorr-p-256", 5)
        n = scheme.curve.n
        point_len = 1 + scheme.curve.coordinate_bytes
        delta = 0xDEADBEEF

        def shift(item, d):
            key, message, signature = item
            s = int.from_bytes(signature[point_len:], "big")
            return (key, message,
                    signature[:point_len] + ((s + d) % n).to_bytes(32, "big"))

        forged = list(items)
        forged[1] = shift(items[1], delta)
        forged[3] = shift(items[3], -delta)
        # Sanity: each member alone is an invalid signature.
        assert not scheme.verify(*forged[1])
        assert not scheme.verify(*forged[3])

        monkeypatch.setattr(schnorr_mod, "_batch_weight", lambda: 1)
        assert scheme.verify_batch(forged, tables=tables) == [True] * 5, \
            "equal weights must admit the cancellation pair (the attack)"
        monkeypatch.undo()

        verdicts = scheme.verify_batch(forged, tables=tables)
        assert verdicts == [True, False, True, False, True]

    def test_weights_are_fresh_per_check(self):
        """Two aggregate evaluations must not reuse weights — a repeated
        weight vector would let an observer of one accepted batch craft
        the cancellation pair for the next."""
        seen: list[int] = []
        original = schnorr_mod._batch_weight

        def spy():
            weight = original()
            seen.append(weight)
            return weight

        scheme, _, items, tables = _stack("schnorr-p-256", 3)
        try:
            schnorr_mod._batch_weight = spy
            scheme.verify_batch(items, tables=tables)
            scheme.verify_batch(items, tables=tables)
        finally:
            schnorr_mod._batch_weight = original
        assert len(seen) == 6
        assert len(set(seen)) == 6  # 128-bit draws: collisions are a bug
        assert all(w >= 1 for w in seen)


class TestBatchStructuralRejects:
    """Malformed members fail closed, alone, before any curve work."""

    def test_structural_garbage_is_isolated(self):
        scheme, keypairs, items, tables = _stack("schnorr-p-256", 6)
        items[0] = (items[0][0], items[0][1], b"")               # empty
        items[2] = (items[2][0], items[2][1], items[2][2][:-5])  # truncated
        zero_s = items[4][2][:33] + (0).to_bytes(32, "big")      # s == 0
        items[4] = (items[4][0], items[4][1], zero_s)
        assert scheme.verify_batch(items, tables=tables) == \
            [False, True, False, True, False, True]

    def test_garbage_commitment_point(self):
        scheme, _, items, _ = _stack("schnorr-p-256", 3)
        bad = b"\x02" + b"\xff" * 32 + items[1][2][33:]
        items[1] = (items[1][0], items[1][1], bad)
        assert scheme.verify_batch(items) == [True, False, True]

    def test_mispaired_table_fails_that_item_only(self):
        scheme, keypairs, items, tables = _stack("schnorr-p-256", 4)
        swapped = [tables[0], tables[2], tables[1], tables[3]]
        assert scheme.verify_batch(items, tables=swapped) == \
            [True, False, False, True]

    def test_malformed_verify_key(self):
        scheme, _, items, _ = _stack("schnorr-p-256", 3)
        items[1] = (b"\x01" * 33, items[1][1], items[1][2])
        assert scheme.verify_batch(items) == [True, False, True]

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_mismatched_tables_length_raises(self, name):
        """A short tables list must raise, not silently report the
        zip-truncated tail as forged."""
        scheme, _, items, tables = _stack(name, 3)
        with pytest.raises(ValueError, match="parallel"):
            scheme.verify_batch(items, tables=tables[:2])
        with pytest.raises(ValueError, match="parallel"):
            scheme.verify_batch(items, tables=tables + [None])
