"""Tests for the HMAC-DRBG and derived generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.prng import HmacDrbg, derive_drbg, rng_from_seed


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert HmacDrbg(b"seed").generate(64) == HmacDrbg(b"seed").generate(64)

    def test_different_seeds_differ(self):
        assert HmacDrbg(b"seed1").generate(32) != HmacDrbg(b"seed2").generate(32)

    def test_personalization_separates(self):
        a = HmacDrbg(b"seed", personalization=b"x").generate(32)
        b = HmacDrbg(b"seed", personalization=b"y").generate(32)
        assert a != b

    def test_stream_position_matters(self):
        drbg = HmacDrbg(b"seed")
        first = drbg.generate(32)
        second = drbg.generate(32)
        assert first != second

    def test_chunking_independence(self):
        """Draws of 16+16 bytes differ from one 32-byte draw by design
        (each generate call finalises state), but each is reproducible."""
        a = HmacDrbg(b"s")
        b = HmacDrbg(b"s")
        assert a.generate(16) + a.generate(16) == b.generate(16) + b.generate(16)

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        b.reseed(b"extra")
        assert a.generate(32) != b.generate(32)


class TestGenerate:
    @given(st.integers(0, 500))
    def test_length(self, n):
        assert len(HmacDrbg(b"s").generate(n)) == n

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").generate(-1)

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            HmacDrbg("not bytes")  # type: ignore[arg-type]


class TestRandomInt:
    @given(st.integers(1, 10 ** 12))
    def test_range(self, bound):
        value = HmacDrbg(b"s").random_int(bound)
        assert 0 <= value < bound

    def test_bound_one_always_zero(self):
        drbg = HmacDrbg(b"s")
        assert all(drbg.random_int(1) == 0 for _ in range(10))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").random_int(0)

    def test_no_gross_bias(self):
        """Uniformity smoke test: all residues of a small bound occur."""
        drbg = HmacDrbg(b"bias")
        counts = [0] * 5
        for _ in range(2000):
            counts[drbg.random_int(5)] += 1
        assert min(counts) > 300  # expected 400 each

    def test_range_inclusive(self):
        drbg = HmacDrbg(b"r")
        values = {drbg.random_int_range(3, 5) for _ in range(100)}
        assert values == {3, 4, 5}

    def test_range_single_point(self):
        assert HmacDrbg(b"r").random_int_range(7, 7) == 7

    def test_range_rejects_inverted(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"r").random_int_range(5, 3)


class TestCoin:
    def test_both_sides_occur(self):
        drbg = HmacDrbg(b"coin")
        flips = {drbg.coin() for _ in range(64)}
        assert flips == {0, 1}

    def test_roughly_fair(self):
        drbg = HmacDrbg(b"fair")
        heads = sum(drbg.coin() for _ in range(2000))
        assert 850 < heads < 1150


class TestDerive:
    def test_children_independent(self):
        root = HmacDrbg(b"root")
        a = derive_drbg(root, b"a")
        root2 = HmacDrbg(b"root")
        b = derive_drbg(root2, b"b")
        assert a.generate(32) != b.generate(32)

    def test_derivation_deterministic(self):
        a = derive_drbg(HmacDrbg(b"root"), b"x").generate(32)
        b = derive_drbg(HmacDrbg(b"root"), b"x").generate(32)
        assert a == b


class TestNumpyRng:
    def test_seeded_reproducible(self):
        assert rng_from_seed(7).integers(0, 100, 5).tolist() == \
            rng_from_seed(7).integers(0, 100, 5).tolist()
