"""Tests for the strong randomness extractors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.entropy import uniformity_distance
from repro.crypto import numbertheory as nt
from repro.crypto.extractors import (
    Sha256Extractor,
    ToeplitzExtractor,
    UniversalHashExtractor,
    default_extractor,
)

EXTRACTOR_FACTORIES = [
    pytest.param(lambda: Sha256Extractor(output_bytes=16), id="sha256"),
    pytest.param(
        lambda: UniversalHashExtractor(output_bytes=16, field_bits=521),
        id="universal",
    ),
    pytest.param(
        lambda: ToeplitzExtractor(output_bytes=16, input_bytes=128),
        id="toeplitz",
    ),
]


@pytest.mark.parametrize("factory", EXTRACTOR_FACTORIES)
class TestExtractorContract:
    def test_deterministic(self, factory):
        ext = factory()
        seed = bytes(range(ext.seed_bytes % 256)) * (ext.seed_bytes // 256 + 1)
        seed = seed[: ext.seed_bytes]
        assert ext.extract(b"data", seed) == ext.extract(b"data", seed)

    def test_output_length(self, factory):
        ext = factory()
        seed = b"\x01" * ext.seed_bytes
        assert len(ext.extract(b"data", seed)) == ext.output_bytes

    def test_seed_sensitivity(self, factory):
        ext = factory()
        s1 = b"\x01" * ext.seed_bytes
        s2 = b"\x02" * ext.seed_bytes
        assert ext.extract(b"data", s1) != ext.extract(b"data", s2)

    def test_input_sensitivity(self, factory):
        ext = factory()
        seed = b"\x03" * ext.seed_bytes
        assert ext.extract(b"data-a", seed) != ext.extract(b"data-b", seed)

    def test_wrong_seed_length_rejected(self, factory):
        ext = factory()
        with pytest.raises(ValueError, match="seed"):
            ext.extract(b"data", b"\x00" * (ext.seed_bytes + 1))

    def test_output_looks_uniform(self, factory):
        """First output byte over many random inputs ~ uniform on 256."""
        ext = factory()
        rng = np.random.default_rng(0)
        samples = []
        for i in range(4096):
            seed = rng.bytes(ext.seed_bytes)
            data = rng.bytes(32)
            samples.append(ext.extract(data, seed)[0])
        # Noise floor for 4096 samples over 256 buckets is ~0.08; a broken
        # extractor (constant/linear-only output) would sit near 0.5+.
        assert uniformity_distance(samples, 256) < 0.25


class TestSha256Extractor:
    def test_default_is_paper_config(self):
        ext = default_extractor()
        assert ext.output_bytes == 32
        assert ext.seed_bytes == 32
        assert ext.name == "sha256"

    def test_rejects_oversized_output(self):
        with pytest.raises(ValueError):
            Sha256Extractor(output_bytes=33)

    def test_rejects_zero_output(self):
        with pytest.raises(ValueError):
            Sha256Extractor(output_bytes=0)


class TestUniversalHashExtractor:
    def test_field_primes_are_prime(self):
        # The smaller Mersenne moduli; the larger are too slow to test here.
        for bits in (521, 607, 1279):
            assert nt.is_probable_prime(
                UniversalHashExtractor._FIELD_PRIMES[bits]
            ), bits

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="field_bits"):
            UniversalHashExtractor(field_bits=1000)

    def test_rejects_output_wider_than_field(self):
        with pytest.raises(ValueError, match="below the field"):
            UniversalHashExtractor(output_bytes=70, field_bits=521)

    def test_long_input_folding(self):
        ext = UniversalHashExtractor(output_bytes=16, field_bits=521)
        seed = b"\x05" * ext.seed_bytes
        long_input = bytes(range(256)) * 4  # 1 KiB > field size
        assert len(ext.extract(long_input, seed)) == 16

    def test_linear_structure(self):
        """h(x) is affine in x for fixed seed: h(x1) - h(x2) depends only
        on x1 - x2 in the field — verified via three colinear points."""
        ext = UniversalHashExtractor(output_bytes=32, field_bits=521)
        seed = b"\x09" * ext.seed_bytes
        prime = ext._prime
        xs = [100, 200, 300]  # arithmetic progression
        values = []
        for x in xs:
            a = int.from_bytes(seed[: ext._coeff_bytes], "big") % prime or 1
            b = int.from_bytes(seed[ext._coeff_bytes:], "big") % prime
            values.append((a * x + b) % prime)
        assert (values[1] - values[0]) % prime == (values[2] - values[1]) % prime


class TestToeplitzExtractor:
    def test_linearity_over_gf2(self):
        """Toeplitz extraction is GF(2)-linear: T(x^y) == T(x)^T(y)."""
        ext = ToeplitzExtractor(output_bytes=8, input_bytes=32)
        rng = np.random.default_rng(1)
        seed = rng.bytes(ext.seed_bytes)
        x = rng.bytes(32)
        y = rng.bytes(32)
        xy = bytes(a ^ b for a, b in zip(x, y))
        t_x = ext.extract(x, seed)
        t_y = ext.extract(y, seed)
        t_xy = ext.extract(xy, seed)
        assert t_xy == bytes(a ^ b for a, b in zip(t_x, t_y))

    def test_zero_input_maps_to_zero(self):
        ext = ToeplitzExtractor(output_bytes=8, input_bytes=32)
        seed = b"\x5a" * ext.seed_bytes
        assert ext.extract(bytes(32), seed) == bytes(8)

    def test_short_input_padded(self):
        ext = ToeplitzExtractor(output_bytes=8, input_bytes=32)
        seed = b"\x5a" * ext.seed_bytes
        assert ext.extract(b"ab", seed) == ext.extract(b"ab" + bytes(30), seed)

    def test_oversized_input_rejected(self):
        ext = ToeplitzExtractor(output_bytes=8, input_bytes=32)
        with pytest.raises(ValueError, match="longer"):
            ext.extract(bytes(33), b"\x00" * ext.seed_bytes)

    def test_seed_bytes_formula(self):
        ext = ToeplitzExtractor(output_bytes=4, input_bytes=16)
        assert ext.seed_bytes == (32 + 128 - 1 + 7) // 8
