"""Tests for elliptic-curve arithmetic over P-256."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.ec import P256, Curve, Point


class TestCurveStructure:
    def test_p256_validates(self):
        P256.validate()  # primality of p and n, base point order

    def test_base_point_on_curve(self):
        assert P256.is_on_curve(P256.generator)

    def test_infinity_on_curve(self):
        assert P256.is_on_curve(Point.infinity())

    def test_off_curve_point_detected(self):
        assert not P256.is_on_curve(Point(1, 1))

    def test_bad_base_point_rejected_at_construction(self):
        with pytest.raises(ValueError, match="not on the curve"):
            Curve(name="bad", p=P256.p, a=P256.a, b=P256.b,
                  gx=1, gy=1, n=P256.n)


class TestGroupLaw:
    def test_identity(self):
        g = P256.generator
        assert P256.add(g, Point.infinity()) == g
        assert P256.add(Point.infinity(), g) == g

    def test_inverse_sums_to_identity(self):
        g = P256.generator
        assert P256.add(g, P256.negate(g)).is_infinity

    def test_commutativity(self):
        g = P256.generator
        g2 = P256.multiply(2, g)
        assert P256.add(g, g2) == P256.add(g2, g)

    def test_associativity_sample(self):
        g = P256.generator
        a = P256.multiply(3, g)
        b = P256.multiply(5, g)
        c = P256.multiply(7, g)
        assert P256.add(P256.add(a, b), c) == P256.add(a, P256.add(b, c))

    def test_doubling_matches_addition_chain(self):
        g = P256.generator
        assert P256.multiply(4, g) == P256.add(
            P256.add(g, g), P256.add(g, g)
        )

    def test_order_annihilates(self):
        assert P256.multiply(P256.n, P256.generator).is_infinity

    def test_scalar_reduction_mod_n(self):
        g = P256.generator
        assert P256.multiply(P256.n + 5, g) == P256.multiply(5, g)

    @given(st.integers(1, 2 ** 32), st.integers(1, 2 ** 32))
    @settings(max_examples=10)
    def test_scalar_distributivity(self, a, b):
        g = P256.generator
        lhs = P256.multiply(a + b, g)
        rhs = P256.add(P256.multiply(a, g), P256.multiply(b, g))
        assert lhs == rhs

    def test_multiply_by_zero(self):
        assert P256.multiply(0, P256.generator).is_infinity


class TestPointEncoding:
    def test_roundtrip_generator(self):
        encoded = P256.encode_point(P256.generator)
        assert P256.decode_point(encoded) == P256.generator

    @given(st.integers(1, 2 ** 40))
    @settings(max_examples=15)
    def test_roundtrip_random_points(self, k):
        point = P256.multiply(k, P256.generator)
        assert P256.decode_point(P256.encode_point(point)) == point

    def test_compressed_length(self):
        assert len(P256.encode_point(P256.generator)) == 33

    def test_infinity_roundtrip(self):
        assert P256.decode_point(P256.encode_point(Point.infinity())).is_infinity

    def test_bad_prefix_rejected(self):
        encoded = bytearray(P256.encode_point(P256.generator))
        encoded[0] = 0x07
        with pytest.raises(ValueError):
            P256.decode_point(bytes(encoded))

    def test_non_residue_x_rejected(self):
        # x = 5 has no square root on P-256 for one of the prefixes; find a
        # bad x by scanning a few small values.
        for x in range(2, 50):
            data = b"\x02" + x.to_bytes(32, "big")
            try:
                point = P256.decode_point(data)
            except ValueError:
                break
            assert P256.is_on_curve(point)
        else:
            pytest.skip("no non-residue found in scan range")

    def test_oversized_x_rejected(self):
        data = b"\x02" + (P256.p + 1).to_bytes(32, "big")
        with pytest.raises(ValueError):
            P256.decode_point(data)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            P256.decode_point(P256.encode_point(P256.generator)[:-1])
