"""Tests for hashing utilities and canonical encodings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import hashing


class TestEncodeIntVector:
    def test_roundtrip(self):
        vec = np.array([0, 1, -1, 100_000, -100_000], dtype=np.int64)
        assert np.array_equal(
            hashing.decode_int_vector(hashing.encode_int_vector(vec)), vec
        )

    @given(st.lists(st.integers(-2 ** 62, 2 ** 62), min_size=0, max_size=50))
    def test_roundtrip_property(self, values):
        vec = np.array(values, dtype=np.int64)
        decoded = hashing.decode_int_vector(hashing.encode_int_vector(vec))
        assert np.array_equal(decoded, vec)

    def test_fixed_width(self):
        assert len(hashing.encode_int_vector(np.arange(7))) == 7 * 8

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            hashing.encode_int_vector(np.zeros((2, 2), dtype=np.int64))

    def test_decode_rejects_ragged_length(self):
        with pytest.raises(ValueError, match="multiple"):
            hashing.decode_int_vector(b"\x00" * 9)

    def test_injective_across_boundaries(self):
        """[1, 256] and [256, 1] must encode differently (no ambiguity)."""
        a = hashing.encode_int_vector(np.array([1, 256]))
        b = hashing.encode_int_vector(np.array([256, 1]))
        assert a != b


class TestHashVectors:
    def test_deterministic(self):
        v = np.array([1, 2, 3])
        assert hashing.hash_vectors(v) == hashing.hash_vectors(v)

    def test_label_separates_domains(self):
        v = np.array([1, 2, 3])
        assert hashing.hash_vectors(v, label=b"a") != \
            hashing.hash_vectors(v, label=b"b")

    def test_boundary_shift_changes_hash(self):
        """(x=[1,2], s=[3]) vs (x=[1], s=[2,3]) must differ (framing)."""
        h1 = hashing.hash_vectors(np.array([1, 2]), np.array([3]))
        h2 = hashing.hash_vectors(np.array([1]), np.array([2, 3]))
        assert h1 != h2

    def test_order_matters(self):
        a, b = np.array([1]), np.array([2])
        assert hashing.hash_vectors(a, b) != hashing.hash_vectors(b, a)

    def test_digest_size(self):
        assert len(hashing.hash_vectors(np.array([1]))) == 32


class TestExpand:
    def test_length_exact(self):
        for length in (0, 1, 31, 32, 33, 100):
            assert len(hashing.expand(b"seed", length)) == length

    def test_prefix_consistency(self):
        long = hashing.expand(b"seed", 100)
        short = hashing.expand(b"seed", 50)
        assert long[:50] == short

    def test_seed_sensitivity(self):
        assert hashing.expand(b"a", 32) != hashing.expand(b"b", 32)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            hashing.expand(b"s", -1)


class TestHashToInt:
    @given(st.binary(min_size=0, max_size=64), st.integers(1, 512))
    def test_range(self, data, bits):
        value = hashing.hash_to_int(data, bits)
        assert 0 <= value < 2 ** bits

    def test_deterministic(self):
        assert hashing.hash_to_int(b"x", 100) == hashing.hash_to_int(b"x", 100)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            hashing.hash_to_int(b"x", 0)


class TestConstantTimeEqual:
    def test_equal(self):
        assert hashing.constant_time_equal(b"abc", b"abc")

    def test_unequal(self):
        assert not hashing.constant_time_equal(b"abc", b"abd")

    def test_length_mismatch(self):
        assert not hashing.constant_time_equal(b"abc", b"abcd")


class TestHashConcat:
    def test_framing_injective(self):
        assert hashing.hash_concat([b"ab", b"c"]) != hashing.hash_concat([b"a", b"bc"])

    def test_empty_parts_differ_from_no_parts(self):
        assert hashing.hash_concat([b""]) != hashing.hash_concat([])
