"""Tests for DSA: group parameters, keygen, signing, verification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import numbertheory as nt
from repro.crypto.dsa import Dsa, DsaGroup, generate_group
from repro.crypto.dsa_groups import GENERATION_SEEDS, GROUP_512, GROUP_1024, GROUP_2048
from repro.exceptions import SignatureError


class TestPinnedGroups:
    @pytest.mark.parametrize("group,p_bits,q_bits", [
        (GROUP_512, 512, 160),
        (GROUP_1024, 1024, 160),
        (GROUP_2048, 2048, 256),
    ])
    def test_structure(self, group, p_bits, q_bits):
        group.validate()
        assert group.p_bits == p_bits
        assert group.q_bits == q_bits

    def test_pinned_512_reproducible_from_seed(self):
        regenerated = generate_group(512, 160, GENERATION_SEEDS[512])
        assert regenerated == GROUP_512


class TestGroupValidation:
    def test_rejects_composite_p(self):
        with pytest.raises(ValueError, match="p is not prime"):
            DsaGroup(p=GROUP_512.p + 2, q=GROUP_512.q, g=GROUP_512.g).validate()

    def test_rejects_wrong_order_generator(self):
        with pytest.raises(ValueError):
            DsaGroup(p=GROUP_512.p, q=GROUP_512.q, g=2).validate()

    def test_rejects_q_not_dividing(self):
        q = nt.generate_prime(160, __import__(
            "repro.crypto.prng", fromlist=["HmacDrbg"]).HmacDrbg(b"other-q"))
        with pytest.raises(ValueError):
            DsaGroup(p=GROUP_512.p, q=q, g=GROUP_512.g).validate()


class TestSignVerify:
    @pytest.fixture
    def dsa(self):
        return Dsa(GROUP_512)

    def test_roundtrip(self, dsa):
        kp = dsa.keygen_from_seed(b"R" * 32)
        sig = dsa.sign(kp.signing_key, b"challenge-response")
        assert dsa.verify(kp.verify_key, b"challenge-response", sig)

    def test_wrong_message_rejected(self, dsa):
        kp = dsa.keygen_from_seed(b"R" * 32)
        sig = dsa.sign(kp.signing_key, b"message")
        assert not dsa.verify(kp.verify_key, b"other", sig)

    def test_wrong_key_rejected(self, dsa):
        kp1 = dsa.keygen_from_seed(b"1" * 32)
        kp2 = dsa.keygen_from_seed(b"2" * 32)
        sig = dsa.sign(kp1.signing_key, b"m")
        assert not dsa.verify(kp2.verify_key, b"m", sig)

    def test_bitflipped_signature_rejected(self, dsa):
        kp = dsa.keygen_from_seed(b"R" * 32)
        sig = bytearray(dsa.sign(kp.signing_key, b"m"))
        sig[5] ^= 1
        assert not dsa.verify(kp.verify_key, b"m", bytes(sig))

    def test_truncated_signature_rejected(self, dsa):
        kp = dsa.keygen_from_seed(b"R" * 32)
        sig = dsa.sign(kp.signing_key, b"m")
        assert not dsa.verify(kp.verify_key, b"m", sig[:-1])

    def test_zero_signature_rejected(self, dsa):
        kp = dsa.keygen_from_seed(b"R" * 32)
        assert not dsa.verify(kp.verify_key, b"m", bytes(40))

    def test_garbage_verify_key_rejected(self, dsa):
        kp = dsa.keygen_from_seed(b"R" * 32)
        sig = dsa.sign(kp.signing_key, b"m")
        assert not dsa.verify(bytes(len(kp.verify_key)), b"m", sig)

    def test_signing_deterministic(self, dsa):
        """RFC-6979-style nonces: same key+message -> same signature."""
        kp = dsa.keygen_from_seed(b"R" * 32)
        assert dsa.sign(kp.signing_key, b"m") == dsa.sign(kp.signing_key, b"m")

    def test_different_messages_different_nonces(self, dsa):
        kp = dsa.keygen_from_seed(b"R" * 32)
        sig1 = dsa.sign(kp.signing_key, b"m1")
        sig2 = dsa.sign(kp.signing_key, b"m2")
        q_len = (GROUP_512.q.bit_length() + 7) // 8
        r1, r2 = sig1[:q_len], sig2[:q_len]
        assert r1 != r2, "nonce reuse across messages leaks the key"

    def test_keygen_deterministic(self, dsa):
        assert dsa.keygen_from_seed(b"S" * 32) == dsa.keygen_from_seed(b"S" * 32)

    def test_keygen_seed_sensitivity(self, dsa):
        kp1 = dsa.keygen_from_seed(b"a" * 32)
        kp2 = dsa.keygen_from_seed(b"b" * 32)
        assert kp1.verify_key != kp2.verify_key

    def test_sign_rejects_malformed_key(self, dsa):
        with pytest.raises(SignatureError):
            dsa.sign(b"short", b"m")

    def test_sign_rejects_out_of_range_key(self, dsa):
        q_len = (GROUP_512.q.bit_length() + 7) // 8
        with pytest.raises(SignatureError):
            dsa.sign(b"\xff" * q_len, b"m")

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=20)
    def test_roundtrip_arbitrary_messages(self, message):
        dsa = Dsa(GROUP_512)
        kp = dsa.keygen_from_seed(b"prop" * 8)
        assert dsa.verify(kp.verify_key, message, dsa.sign(kp.signing_key, message))

    def test_scheme_name(self):
        assert Dsa(GROUP_512).name == "dsa-512"
        assert Dsa(GROUP_1024).name == "dsa-1024"

    def test_1024_group_roundtrip(self):
        dsa = Dsa(GROUP_1024)
        kp = dsa.keygen_from_seed(b"R" * 32)
        sig = dsa.sign(kp.signing_key, b"paper-scale")
        assert dsa.verify(kp.verify_key, b"paper-scale", sig)


class TestGroupGeneration:
    def test_small_group_end_to_end(self):
        group = generate_group(256, 160, b"test-small")
        group.validate()
        dsa = Dsa(group)
        kp = dsa.keygen_from_seed(b"k" * 32)
        assert dsa.verify(kp.verify_key, b"m", dsa.sign(kp.signing_key, b"m"))

    def test_rejects_q_bits_ge_p_bits(self):
        with pytest.raises(ValueError):
            generate_group(160, 160, b"x")
