"""Versioned identity records: rotate / revoke / compact, end to end.

Covers the lifecycle tentpole at the engine layer:

* version semantics — re-enroll keeps the old sketch verify-only,
  rotate supersedes it, revoke retires versions (idempotently) and
  promotes the newest verify-only survivor;
* identification searches *active* versions only, while verify-only
  versions stay resolvable for verification;
* lifecycle ops are write-ahead journaled (typed entries) and replay
  exactly on reopen, recover, and replication;
* ``compact_store`` rewrites a store keeping live rows only and starts
  a fresh typed journal base, after which primary and a
  journal-following standby still answer identically;
* format-v1 stores (no ``status.bin``, no lifecycle manifest keys) open
  unchanged through the compatibility shim.

Run under the SIGALRM watchdog: these tests spin real engines with
journals and mmap stores, and a deadlock should fail loudly, not hang
the suite.
"""

import json

import numpy as np
import pytest

from repro.core.extractor import SuccinctFuzzyExtractor
from repro.crypto.prng import HmacDrbg
from repro.engine import IdentificationEngine, compact_store
from repro.engine.journal import EnrollmentJournal, journal_path
from repro.engine.lifecycle import (
    ALL_VERSIONS,
    OP_REVOKE,
    OP_ROTATE,
    decode_entry,
    encode_revoke_entry,
)
from repro.exceptions import EnrollmentError, ParameterError
from repro.protocols.database import UserRecord

pytestmark = pytest.mark.usefixtures("watchdog")


@pytest.fixture
def population(paper_params, rng):
    """Enrollable records + templates + the extractor that made them."""
    fe = SuccinctFuzzyExtractor(paper_params)

    def make(user_id: str, template=None):
        x = fe.sketcher.line.uniform_vector(rng) if template is None \
            else template
        _, helper = fe.generate(x, HmacDrbg(f"{user_id}-{rng.integers(1 << 30)}".encode()))
        return UserRecord(user_id=user_id, verify_key=user_id.encode() * 3,
                          helper_data=helper.to_bytes()), x

    records, templates = [], {}
    for i in range(4):
        record, x = make(f"user-{i}")
        records.append(record)
        templates[record.user_id] = x
    return records, templates, fe, make


def _probe(fe, params, template, rng):
    noisy = fe.sketcher.line.reduce(
        template + rng.integers(-params.t, params.t + 1, params.n))
    return fe.sketcher.sketch(noisy, HmacDrbg(b"probe"))


class TestVersionSemantics:
    def test_reenroll_keeps_old_version_verify_only(self, paper_params,
                                                    population):
        records, templates, fe, make = population
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        fresh, _ = make("user-1", templates["user-1"])
        assert engine.reenroll(fresh) == 1
        versions = engine.get_versions("user-1")
        assert [v.status_name for v in versions] == ["verify-only", "active"]
        assert engine.active_version("user-1") == 1
        assert engine.get("user-1") == fresh
        # The demoted sketch still resolves for verification.
        assert engine.get_version("user-1", 0) == records[1]
        # Identity count is versions-blind.
        assert engine.identity_count() == 4
        assert len(engine) == 5  # rows, not identities

    def test_rotate_supersedes_old_version(self, paper_params, population):
        records, templates, fe, make = population
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        fresh, _ = make("user-2", templates["user-2"])
        assert engine.rotate(fresh) == 1
        versions = engine.get_versions("user-2")
        assert [v.status_name for v in versions] == ["superseded", "active"]
        # A superseded sketch no longer resolves.
        assert engine.get_version("user-2", 0) is None
        assert engine.get_version("user-2", 1) == fresh

    def test_lifecycle_on_unknown_identity_refused(self, paper_params,
                                                   population):
        records, _, _, make = population
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        ghost, _ = make("nobody")
        with pytest.raises(EnrollmentError, match="not enrolled"):
            engine.rotate(ghost)
        with pytest.raises(EnrollmentError, match="not enrolled"):
            engine.reenroll(ghost)

    def test_revoke_single_version_promotes_survivor(self, paper_params,
                                                     population):
        records, templates, _, make = population
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        fresh, _ = make("user-0", templates["user-0"])
        engine.reenroll(fresh)
        # Revoking the active version falls back to the newest
        # verify-only predecessor — never to a superseded one.
        assert engine.revoke("user-0", version=1) == 1
        assert engine.active_version("user-0") == 0
        assert engine.get("user-0") == records[0]
        statuses = [v.status_name for v in engine.get_versions("user-0")]
        assert statuses == ["active", "revoked"]

    def test_revoke_all_goes_dark_until_fresh_enroll(self, paper_params,
                                                     population):
        records, templates, fe, make = population
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        fresh, _ = make("user-3", templates["user-3"])
        engine.reenroll(fresh)
        assert engine.revoke("user-3") == 2  # both versions retired
        assert engine.get("user-3") is None
        assert engine.active_version("user-3") is None

    def test_revoke_is_idempotent(self, paper_params, population):
        records, _, _, _ = population
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        assert engine.revoke("user-1") == 1
        assert engine.revoke("user-1") == 0  # already revoked
        assert engine.revoke("user-1", version=0) == 0
        assert engine.revoke("ghost") == 0  # unknown identity: no-op
        assert engine.revoke("user-2", version=99) == 0  # out of range

    def test_search_sees_active_versions_only(self, paper_params, rng,
                                              population):
        records, templates, fe, make = population
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        probe = _probe(fe, paper_params, templates["user-1"], rng)
        assert [r.user_id for r in engine.find_by_sketch(probe)] == \
               ["user-1"]
        # Rotate to a *different* template: the old sketch would still
        # match the probe, but it is superseded — the search must not
        # return it.
        other, _ = make("user-1")
        engine.rotate(other)
        assert engine.find_by_sketch(probe) == []
        # Revoked identities disappear from identification entirely.
        probe2 = _probe(fe, paper_params, templates["user-2"], rng)
        engine.revoke("user-2")
        assert engine.find_by_sketch(probe2) == []


class TestLifecycleJournalReplay:
    def test_ops_replay_exactly_on_reopen(self, tmp_path, paper_params,
                                          rng, population):
        records, templates, fe, make = population
        store = tmp_path / "store"
        engine = IdentificationEngine(paper_params, shards=2,
                                      journal=journal_path(store))
        engine.add_many(records)
        engine.save(store)
        # Everything after the checkpoint lives only in the journal.
        fresh, _ = make("user-0", templates["user-0"])
        engine.reenroll(fresh)
        rotated, x_rot = make("user-1")
        engine.rotate(rotated)
        engine.revoke("user-2")
        engine.journal.close()

        reopened = IdentificationEngine.open(store)
        try:
            assert reopened.journal_seq() == 7
            assert [v.status_name
                    for v in reopened.get_versions("user-0")] == \
                   ["verify-only", "active"]
            assert [v.status_name
                    for v in reopened.get_versions("user-1")] == \
                   ["superseded", "active"]
            assert reopened.get("user-2") is None
            probe = _probe(fe, paper_params, x_rot, rng)
            assert [r.user_id for r in reopened.find_by_sketch(probe)] == \
                   ["user-1"]
        finally:
            reopened.journal.close()

    def test_typed_entry_round_trip(self, paper_params, population):
        records, _, _, _ = population
        op, body = decode_entry(
            encode_revoke_entry("user-9", None))
        assert op == OP_REVOKE and body == ("user-9", None)
        op, body = decode_entry(encode_revoke_entry("u", 3))
        assert op == OP_REVOKE and body == ("u", 3)
        assert ALL_VERSIONS == 0xFFFFFFFF

    def test_lifecycle_refused_on_record_format_journal(
            self, tmp_path, paper_params, population):
        records, templates, _, make = population
        # A pre-lifecycle journal: created directly, record format.
        journal = EnrollmentJournal(tmp_path / "journal.log",
                                    params=paper_params)
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records[:2])
        engine.attach_journal(journal)
        fresh, _ = make("user-0", templates["user-0"])
        with pytest.raises(ParameterError, match="repro compact"):
            engine.rotate(fresh)
        # Plain enrollment still works against the old journal.
        engine.add(records[2])
        journal.close()

    def test_replicated_lifecycle_reaches_standby(self, paper_params,
                                                  population):
        records, templates, _, make = population
        primary = IdentificationEngine(paper_params, shards=2)
        # In-memory engines carry the typed-entry semantics through
        # apply_replicated exactly as the wire does.
        primary.add_many(records)
        fresh, _ = make("user-1", templates["user-1"])
        entries = [(i, p) for i, p in enumerate(
            self._journal_entries(paper_params, records, fresh))]
        standby = IdentificationEngine(paper_params, shards=2)
        applied = standby.apply_replicated(entries)
        assert applied == len(entries)
        assert [v.status_name for v in standby.get_versions("user-1")] == \
               ["superseded", "active"]
        assert standby.get("user-3") is None

    @staticmethod
    def _journal_entries(params, records, fresh):
        from repro.engine.lifecycle import (
            OP_ENROLL,
            encode_record_entry,
        )
        payloads = [encode_record_entry(OP_ENROLL, r) for r in records]
        payloads.append(encode_record_entry(OP_ROTATE, fresh))
        payloads.append(encode_revoke_entry("user-3", None))
        return payloads


class TestCompaction:
    def _build(self, tmp_path, paper_params, population):
        records, templates, fe, make = population
        store = tmp_path / "store"
        engine = IdentificationEngine(paper_params, shards=2,
                                      journal=journal_path(store))
        engine.add_many(records)
        fresh, x_fresh = make("user-1")
        engine.rotate(fresh)
        engine.revoke("user-2")
        engine.save(store)
        engine.journal.close()
        return store, fresh, x_fresh

    def test_compact_drops_dead_rows_and_rebases_journal(
            self, tmp_path, paper_params, rng, population):
        records, templates, fe, make = population
        store, fresh, x_fresh = self._build(tmp_path, paper_params,
                                            population)
        stats = compact_store(store, shards=2)
        assert stats["rows_dropped"] == 2  # superseded + revoked
        assert stats["rows_kept"] == 3
        assert stats["identities"] == 3
        assert stats["journaled"] is True
        assert stats["journal_base"] == 6  # 4 enrolls + rotate + revoke

        reopened = IdentificationEngine.open(store)
        try:
            assert len(reopened) == 3
            assert reopened.journal_seq() == 6
            assert reopened.journal.base == 6
            assert reopened.journal.entry_format == "typed"
            # Live state is untouched by compaction.
            assert reopened.get("user-1") == fresh
            assert reopened.get("user-2") is None
            probe = _probe(fe, paper_params, x_fresh, rng)
            assert [r.user_id
                    for r in reopened.find_by_sketch(probe)] == ["user-1"]
            # Lifecycle keeps working on the compacted store.
            another, _ = make("user-0", templates["user-0"])
            assert reopened.rotate(another) == 1
            assert reopened.journal_seq() == 7
        finally:
            reopened.journal.close()

    def test_compact_upgrades_record_format_journal(self, tmp_path,
                                                    paper_params,
                                                    population):
        records, _, _, _ = population
        store = tmp_path / "store"
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        # Attach a pre-lifecycle (record format) journal, then save.
        engine.attach_journal(EnrollmentJournal(
            journal_path(store), params=paper_params))
        engine.save(store)
        engine.journal.close()

        compact_store(store, shards=2)
        upgraded = IdentificationEngine.open(store)
        try:
            assert upgraded.journal.entry_format == "typed"
            # Lifecycle ops are accepted now.
            fresh = records[0]
            assert upgraded.revoke("user-3") == 1
        finally:
            upgraded.journal.close()

    def test_standby_parity_through_rotate_revoke_compact_restart(
            self, tmp_path, paper_params, rng, population):
        """The acceptance scenario: a standby that followed the journal
        answers identically to a primary that rotated, revoked,
        compacted, and restarted."""
        records, templates, fe, make = population
        store = tmp_path / "primary"
        primary = IdentificationEngine(paper_params, shards=2,
                                       journal=journal_path(store))
        primary.add_many(records)
        fresh, x_fresh = make("user-1")
        primary.rotate(fresh)
        primary.revoke("user-2")

        # Standby follows the journal (as JournalFollower would, minus
        # the socket) with its own journal for durability.
        standby_journal = tmp_path / "standby" / "journal.log"
        standby = IdentificationEngine(paper_params, shards=2,
                                       journal=standby_journal)
        standby.apply_replicated(primary.journal.read(0))
        standby.journal.close()

        # Primary compacts and restarts from the compacted store.
        primary.save(store)
        primary.journal.close()
        compact_store(store, shards=2)
        restarted = IdentificationEngine.open(store)

        # Standby restarts from its own journal.
        standby2 = IdentificationEngine(
            paper_params, shards=2,
            journal=EnrollmentJournal(standby_journal,
                                      params=paper_params))
        try:
            assert restarted.journal_seq() == standby2.journal_seq() == 6
            # Byte-identical answers over the whole population.
            for uid, template in templates.items():
                probe = _probe(fe, paper_params, template, rng)
                assert [r.user_id
                        for r in restarted.find_by_sketch(probe)] == \
                       [r.user_id for r in standby2.find_by_sketch(probe)]
                assert restarted.get(uid) == standby2.get(uid)
            probe = _probe(fe, paper_params, x_fresh, rng)
            assert [r.user_id for r in restarted.find_by_sketch(probe)] \
                == [r.user_id for r in standby2.find_by_sketch(probe)] \
                == ["user-1"]
        finally:
            restarted.journal.close()
            standby2.journal.close()


class TestStoreCompatShim:
    def test_v1_store_opens_through_shim(self, tmp_path, paper_params,
                                         rng, population):
        """A pre-lifecycle (format 1) store opens unchanged: statuses
        default to all-active and the operation count to the record
        count."""
        records, templates, fe, _ = population
        store = tmp_path / "store"
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records)
        engine.save(store)

        # Rewrite the directory to the v1 layout: format 1 manifest
        # without the lifecycle keys, no status sidecar.
        manifest_path = store / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = 1
        manifest.pop("journal_seq", None)
        manifest.pop("journal", None)
        manifest_path.write_text(json.dumps(manifest))
        (store / "status.bin").unlink()

        shimmed = IdentificationEngine.open(store)
        assert len(shimmed) == len(records)
        assert shimmed.journal_seq() == len(records)
        assert shimmed.journal is None
        for record in records:
            assert shimmed.get(record.user_id) == record
            versions = shimmed.get_versions(record.user_id)
            assert [v.status_name for v in versions] == ["active"]
        probe = _probe(fe, paper_params, templates["user-0"], rng)
        assert [r.user_id for r in shimmed.find_by_sketch(probe)] == \
               ["user-0"]
        # And it round-trips forward: a save writes the v2 layout.
        shimmed.save(store)
        assert (store / "status.bin").exists()
        assert json.loads(manifest_path.read_text())["format"] == 2


class TestJournalModePersistence:
    def test_tri_state_survives_save_reopen(self, tmp_path, paper_params,
                                            population):
        """The close()/open() round-trip keeps the journal attachment
        tri-state: an engine opened with ``journal=True`` stays
        journaled across a checkpoint+reopen without re-passing the
        flag, and an explicitly unjournaled one stays unjournaled even
        though ``journal.log`` exists."""
        records, _, _, _ = population
        store = tmp_path / "store"
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(records[:2])
        engine.save(store)

        journaled = IdentificationEngine.open(store, journal=True)
        journaled.add(records[2])
        journaled.save(store)
        journaled.close()

        # No flag: the manifest remembers the engine was journaled.
        again = IdentificationEngine.open(store)
        try:
            assert again.journal is not None
            assert len(again) == 3
        finally:
            again.journal.close()

        # journal=False persists too: reopening without a flag must not
        # resurrect the attachment the operator opted out of.
        plain = IdentificationEngine.open(store, journal=False)
        plain.save(store)
        plain.close()
        still_plain = IdentificationEngine.open(store)
        assert still_plain.journal is None
