"""Tests for the mmap shard-store format (save / open / lazy records)."""

import json

import numpy as np
import pytest

from repro.core.extractor import SuccinctFuzzyExtractor
from repro.crypto.prng import HmacDrbg
from repro.engine import IdentificationEngine, open_store
from repro.exceptions import ParameterError
from repro.protocols.database import UserRecord


@pytest.fixture
def saved_engine(paper_params, rng, tmp_path):
    """A 10-user engine saved to disk; returns (dir, engine, templates, fe)."""
    fe = SuccinctFuzzyExtractor(paper_params)
    engine = IdentificationEngine(paper_params, shards=3)
    templates = {}
    records = []
    for i in range(10):
        name = f"user-{i}"
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, HmacDrbg(name.encode()))
        templates[name] = x
        records.append(UserRecord(user_id=name, verify_key=name.encode() * 2,
                                  helper_data=helper.to_bytes()))
    engine.add_many(records)
    store_dir = tmp_path / "engine-store"
    engine.save(store_dir)
    return store_dir, engine, templates, fe


def _probe_for(fe, params, template, rng, tag=b"probe"):
    noisy = fe.sketcher.line.reduce(
        template + rng.integers(-params.t, params.t + 1, params.n)
    )
    return fe.sketcher.sketch(noisy, HmacDrbg(tag))


class TestRoundTrip:
    def test_search_results_identical(self, saved_engine, paper_params, rng):
        store_dir, engine, templates, fe = saved_engine
        opened = IdentificationEngine.open(store_dir)
        probes = np.stack([
            _probe_for(fe, paper_params, templates[f"user-{i}"], rng,
                       tag=b"rt%d" % i)
            for i in range(10)
        ])
        assert opened.search_batch(probes) == engine.search_batch(probes)
        for probe in probes:
            assert opened.search(probe) == engine.search(probe)
        opened.close()

    def test_records_round_trip(self, saved_engine):
        store_dir, engine, _, _ = saved_engine
        opened = IdentificationEngine.open(store_dir)
        assert len(opened) == len(engine)
        assert opened.all_records() == engine.all_records()
        assert opened.get("user-4") == engine.get("user-4")
        assert opened.params == engine.params
        opened.close()

    def test_open_is_lazy_about_record_bytes(self, saved_engine,
                                             paper_params, rng):
        """Opening (and searching!) must not parse records.bin: mangling
        the record payload affects neither — only record access."""
        store_dir, _, templates, fe = saved_engine
        blob_path = store_dir / "records.bin"
        size = blob_path.stat().st_size
        blob_path.write_bytes(b"\xff" * size)  # same length, pure garbage
        opened = IdentificationEngine.open(store_dir)  # no parse -> no error
        probe = _probe_for(fe, paper_params, templates["user-2"], rng)
        assert opened.search(probe) == [2]  # sketches untouched
        with pytest.raises(ParameterError):
            opened.all_records()  # record access does hit the garbage
        opened.close()

    def test_warm_touches_all_sketch_bytes(self, saved_engine, paper_params):
        store_dir, _, _, _ = saved_engine
        opened = IdentificationEngine.open(store_dir)
        stats = opened.stats()
        assert stats.cold_opened and not stats.warmed
        touched = opened.warm()
        assert touched >= 10 * paper_params.n * 4  # at least the matrices
        assert opened.stats().warmed
        opened.close()

    def test_empty_engine_round_trips(self, paper_params, tmp_path):
        engine = IdentificationEngine(paper_params, shards=2)
        engine.save(tmp_path / "empty")
        opened = IdentificationEngine.open(tmp_path / "empty")
        assert len(opened) == 0
        assert opened.search(np.zeros(paper_params.n, dtype=np.int64)) == []
        opened.close()

    def test_no_temp_files_left_behind(self, saved_engine):
        store_dir, _, _, _ = saved_engine
        leftovers = list(store_dir.glob("*.tmp"))
        assert leftovers == []


class TestAppendAfterOpen:
    def test_enroll_into_opened_store(self, saved_engine, paper_params, rng):
        store_dir, _, _, fe = saved_engine
        opened = IdentificationEngine.open(store_dir)
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, HmacDrbg(b"late"))
        opened.add(UserRecord(user_id="latecomer", verify_key=b"vk",
                              helper_data=helper.to_bytes()))
        assert len(opened) == 11
        probe = _probe_for(fe, paper_params, x, rng, tag=b"late-probe")
        assert [r.user_id for r in opened.find_by_sketch(probe)] == \
            ["latecomer"]
        # And the grown engine can be saved again and reopened.
        second = store_dir.parent / "engine-store-2"
        opened.save(second)
        reopened = IdentificationEngine.open(second)
        assert len(reopened) == 11
        assert [r.user_id for r in reopened.find_by_sketch(probe)] == \
            ["latecomer"]
        reopened.close()
        opened.close()

    def test_failed_resave_leaves_old_store_untouched(self, saved_engine):
        """A save that dies during serialisation (stage phase) must leave
        the existing store byte-for-byte intact and still openable."""
        store_dir, engine, _, _ = saved_engine
        before = {
            p.name: p.read_bytes() for p in store_dir.iterdir()
        }
        # A record that cannot encode: verify_key=None explodes inside
        # _encode_record, after some shard files were already staged.
        engine._extra.append(UserRecord(
            user_id="broken", verify_key=None, helper_data=b"hd"))
        engine._index.add(np.zeros(engine.params.n, dtype=np.int64))
        with pytest.raises(TypeError):
            engine.save(store_dir)
        after = {
            p.name: p.read_bytes() for p in store_dir.iterdir()
            if not p.name.endswith(".tmp")
        }
        assert after == before
        assert list(store_dir.glob("*.tmp")) == []  # staged temps cleaned
        reopened = IdentificationEngine.open(store_dir)
        assert len(reopened) == 10
        reopened.close()

    def test_resave_with_fewer_shards_sweeps_stale_files(self, saved_engine,
                                                         paper_params):
        """Overwriting a store with a narrower shard layout must not leave
        old shard files that a future layout change could mis-read."""
        store_dir, engine, _, _ = saved_engine  # 3 shards on disk
        narrow = IdentificationEngine(paper_params, shards=1)
        narrow.add_many(engine.all_records())
        narrow.save(store_dir)
        shard_files = sorted(p.name for p in store_dir.glob("shard-*"))
        assert shard_files == ["shard-0000.rows", "shard-0000.sketches"]
        reopened = IdentificationEngine.open(store_dir)
        assert len(reopened) == len(engine)
        reopened.close()

    def test_replace_helper_on_opened_store(self, saved_engine):
        store_dir, _, _, _ = saved_engine
        opened = IdentificationEngine.open(store_dir)
        opened.replace_helper("user-1", b"rewritten")
        assert opened.get("user-1").helper_data == b"rewritten"
        assert opened.get("user-2").helper_data != b"rewritten"
        opened.close()


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ParameterError, match="not an engine store"):
            open_store(tmp_path)

    def test_malformed_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(ParameterError, match="malformed"):
            open_store(tmp_path)

    def test_wrong_format_version(self, saved_engine):
        store_dir, _, _, _ = saved_engine
        manifest = json.loads((store_dir / "manifest.json").read_text())
        manifest["format"] = 99
        (store_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ParameterError, match="unsupported"):
            open_store(store_dir)

    def test_count_mismatch_detected(self, saved_engine):
        store_dir, _, _, _ = saved_engine
        manifest = json.loads((store_dir / "manifest.json").read_text())
        manifest["records"] = 99
        (store_dir / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ParameterError, match="shard counts"):
            open_store(store_dir)

    def test_truncated_shard_file_detected(self, saved_engine):
        store_dir, _, _, _ = saved_engine
        victim = sorted(store_dir.glob("shard-*.sketches"))[0]
        data = victim.read_bytes()
        victim.write_bytes(data[:-4])
        with pytest.raises(ParameterError, match="bytes"):
            open_store(store_dir)

    def test_missing_shard_file_detected(self, saved_engine):
        store_dir, _, _, _ = saved_engine
        candidates = [p for p in sorted(store_dir.glob("shard-*.rows"))
                      if p.stat().st_size]
        candidates[0].unlink()
        with pytest.raises(ParameterError, match="missing"):
            open_store(store_dir)


class TestStoreLifecycle:
    """OpenedStore.close / engine shutdown: no leaked maps or fds."""

    @staticmethod
    def _open_fds() -> int:
        import gc
        import os

        gc.collect()
        return len(os.listdir("/proc/self/fd"))

    @staticmethod
    def _needs_proc():
        import os

        if not os.path.isdir("/proc/self/fd"):  # pragma: no cover
            pytest.skip("needs /proc (Linux)")

    def test_close_releases_fds(self, saved_engine):
        self._needs_proc()
        store_dir, _, _, _ = saved_engine
        before = self._open_fds()
        opened = open_store(store_dir)
        assert opened.records[0].user_id == "user-0"  # record handle too
        while_open = self._open_fds()
        assert while_open > before  # shard + offset maps hold dup'd fds
        opened.close()
        assert self._open_fds() == before

    def test_close_is_idempotent(self, saved_engine):
        store_dir, _, _, _ = saved_engine
        opened = open_store(store_dir)
        opened.close()
        opened.close()

    def test_context_manager_closes(self, saved_engine):
        self._needs_proc()
        store_dir, _, _, _ = saved_engine
        before = self._open_fds()
        with open_store(store_dir) as opened:
            assert len(opened.records) == 10
            assert opened.total_records == 10
        assert opened.total_records == 0
        assert self._open_fds() == before

    def test_records_read_as_empty_after_close(self, saved_engine):
        store_dir, _, _, _ = saved_engine
        opened = open_store(store_dir)
        assert opened.records[0].user_id == "user-0"
        opened.close()
        assert len(opened.records) == 0
        with pytest.raises(IndexError):
            opened.records[0]

    def test_straggler_view_stays_readable(self, saved_engine):
        """Release is by reference dropping: a view kept past close()
        still reads (keeping only its own mapping alive) instead of
        touching unmapped memory."""
        store_dir, _, _, _ = saved_engine
        opened = open_store(store_dir)
        matrix, _ = opened.shard_parts[0]
        checksum = int(matrix.sum())
        opened.close()
        assert int(matrix.sum()) == checksum

    def test_engine_close_releases_store_fds(self, saved_engine):
        self._needs_proc()
        store_dir, _, _, _ = saved_engine
        before = self._open_fds()
        engine = IdentificationEngine.open(store_dir)
        assert engine.get("user-3") is not None
        assert self._open_fds() > before
        engine.close()
        engine.close()  # idempotent through the engine too
        assert self._open_fds() == before
        assert len(engine) == 0  # closed engines read as empty

    def test_open_close_cycles_do_not_leak(self, saved_engine):
        self._needs_proc()
        store_dir, _, _, _ = saved_engine
        # Prime any lazily created fds, then measure a steady state.
        for _ in range(2):
            engine = IdentificationEngine.open(store_dir)
            engine.get("user-0")
            engine.close()
        before = self._open_fds()
        for _ in range(20):
            engine = IdentificationEngine.open(store_dir)
            engine.get("user-5")  # touches the record file handle too
            engine.close()
        assert self._open_fds() <= before

    def test_unclosed_opens_do_accumulate_fds(self, saved_engine):
        """The regression the close path exists to stop, inverted:
        *without* close(), repeated opens pile up file descriptors."""
        self._needs_proc()
        store_dir, _, _, _ = saved_engine
        before = self._open_fds()
        kept = [IdentificationEngine.open(store_dir) for _ in range(5)]
        leaked = self._open_fds() - before
        for engine in kept:
            engine.close()
        kept.clear()
        assert leaked >= 5  # several maps per open stayed alive
        assert self._open_fds() <= before
