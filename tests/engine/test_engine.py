"""Tests for the identification-engine facade and its protocol wiring."""

import numpy as np
import pytest

from repro.core.extractor import SuccinctFuzzyExtractor
from repro.crypto.prng import HmacDrbg
from repro.engine import IdentificationEngine
from repro.exceptions import EnrollmentError
from repro.protocols.database import HelperDataStore, UserRecord


@pytest.fixture
def enrolled_engine(paper_params, rng):
    """An engine with 8 real enrollments + the matching templates."""
    fe = SuccinctFuzzyExtractor(paper_params)
    engine = IdentificationEngine(paper_params, shards=3)
    templates = {}
    records = []
    for i in range(8):
        name = f"user-{i}"
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, HmacDrbg(name.encode()))
        templates[name] = x
        records.append(UserRecord(user_id=name, verify_key=name.encode() * 3,
                                  helper_data=helper.to_bytes()))
    engine.add_many(records[:6])
    for record in records[6:]:
        engine.add(record)
    return engine, templates, fe


def _probe_for(fe, params, template, rng, tag=b"probe"):
    noisy = fe.sketcher.line.reduce(
        template + rng.integers(-params.t, params.t + 1, params.n)
    )
    return fe.sketcher.sketch(noisy, HmacDrbg(tag))


class TestStoreSurface:
    def test_find_by_sketch_matches_enrolled_user(self, enrolled_engine,
                                                  paper_params, rng):
        engine, templates, fe = enrolled_engine
        probe = _probe_for(fe, paper_params, templates["user-3"], rng)
        assert [r.user_id for r in engine.find_by_sketch(probe)] == ["user-3"]

    def test_get_and_iteration(self, enrolled_engine):
        engine, _, _ = enrolled_engine
        assert engine.get("user-5").user_id == "user-5"
        assert engine.get("ghost") is None
        assert [r.user_id for r in engine] == [f"user-{i}" for i in range(8)]
        assert len(engine.all_records()) == len(engine) == 8

    def test_duplicate_identity_refused(self, enrolled_engine):
        engine, _, _ = enrolled_engine
        record = engine.get("user-0")
        with pytest.raises(EnrollmentError, match="already enrolled"):
            engine.add(record)
        with pytest.raises(EnrollmentError, match="already enrolled"):
            engine.add_many([record])

    def test_add_many_rejects_in_batch_duplicates_atomically(
            self, enrolled_engine, paper_params, rng):
        engine, _, fe = enrolled_engine
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, HmacDrbg(b"dup"))
        fresh = UserRecord(user_id="fresh", verify_key=b"vk",
                           helper_data=helper.to_bytes())
        dup = UserRecord(user_id="fresh", verify_key=b"vk2",
                         helper_data=helper.to_bytes())
        before = len(engine)
        with pytest.raises(EnrollmentError):
            engine.add_many([fresh, dup])
        assert len(engine) == before  # nothing half-inserted

    def test_replace_helper_models_insider(self, enrolled_engine):
        engine, _, _ = enrolled_engine
        engine.replace_helper("user-2", b"garbage")
        assert engine.get("user-2").helper_data == b"garbage"
        with pytest.raises(EnrollmentError, match="not enrolled"):
            engine.replace_helper("ghost", b"x")

    def test_agrees_with_helper_data_store(self, enrolled_engine,
                                           paper_params, rng):
        """Engine candidates == flat-store candidates on the same data."""
        engine, templates, fe = enrolled_engine
        store = HelperDataStore(paper_params)
        for record in engine.all_records():
            store.add(record)
        probes = np.stack([
            _probe_for(fe, paper_params, templates[f"user-{i}"], rng,
                       tag=b"p%d" % i)
            for i in range(8)
        ])
        flat = store.find_by_sketch_batch(probes)
        batched = engine.find_by_sketch_batch(probes)
        assert [[r.user_id for r in row] for row in batched] == \
            [[r.user_id for r in row] for row in flat]


class TestCounters:
    def test_counters_accumulate(self, enrolled_engine, paper_params, rng):
        engine, templates, fe = enrolled_engine
        probe = _probe_for(fe, paper_params, templates["user-1"], rng)
        engine.find_by_sketch(probe)
        engine.search_batch(np.stack([probe, probe, probe]))
        stats = engine.stats()
        assert stats.probes_served == 4
        assert stats.batches_served == 2
        assert stats.candidates_returned == 4
        assert stats.candidates_per_probe == pytest.approx(1.0)
        assert sum(stats.latency_buckets.values()) == 2
        assert not stats.cold_opened
        assert len(stats.shard_sizes) == 3
        assert sum(stats.shard_sizes) == 8

    def test_summary_lines_render(self, enrolled_engine):
        engine, _, _ = enrolled_engine
        lines = engine.stats().summary_lines()
        assert any("8 enrolled" in line for line in lines)
        assert any("latency histogram" in line for line in lines)


class TestServerIntegration:
    def test_identification_over_engine_store(self, paper_params,
                                              fast_scheme, rng):
        from repro.protocols.device import BiometricDevice
        from repro.protocols.runners import run_enrollment, run_identification
        from repro.protocols.server import AuthenticationServer
        from repro.protocols.transport import DuplexLink

        server = AuthenticationServer.with_engine(
            paper_params, fast_scheme, shards=2, seed=b"engine-server")
        device = BiometricDevice(paper_params, fast_scheme, seed=b"dev")
        line = SuccinctFuzzyExtractor(paper_params).sketcher.line
        templates = {}
        for name in ("alice", "bob", "carol"):
            templates[name] = line.uniform_vector(rng)
            run = run_enrollment(device, server, DuplexLink(), name,
                                 templates[name])
            assert run.outcome.accepted

        noisy = line.reduce(templates["bob"] + rng.integers(
            -paper_params.t, paper_params.t + 1, paper_params.n))
        run = run_identification(device, server, DuplexLink(), noisy)
        assert run.outcome.identified and run.outcome.user_id == "bob"

        stranger = line.uniform_vector(rng)
        run = run_identification(device, server, DuplexLink(), stranger)
        assert not run.outcome.identified

        stats = server.engine_stats()
        assert stats is not None and stats.probes_served == 2

    def test_classic_store_has_no_engine_stats(self, paper_params,
                                               fast_scheme):
        from repro.protocols.server import AuthenticationServer

        server = AuthenticationServer(paper_params, fast_scheme, seed=b"s")
        assert server.engine_stats() is None


class TestKeyTableCache:
    def test_server_adopts_engine_cache(self, paper_params, fast_scheme):
        from repro.protocols.server import AuthenticationServer

        server = AuthenticationServer.with_engine(
            paper_params, fast_scheme, shards=2, seed=b"s")
        assert server.key_tables is server.store.key_tables

    def test_classic_store_gets_private_cache(self, paper_params,
                                              fast_scheme):
        from repro.protocols.server import AuthenticationServer

        server = AuthenticationServer(paper_params, fast_scheme, seed=b"s",
                                      key_table_capacity=16)
        assert server.key_tables is not None
        assert server.key_tables.capacity == 16
        assert len(server.key_tables) == 0

    def test_explicit_capacity_with_engine_store_rejected(
            self, paper_params, fast_scheme):
        from repro.protocols.server import AuthenticationServer

        engine = IdentificationEngine(paper_params, shards=2,
                                      key_table_capacity=8)
        with pytest.raises(ValueError, match="key_tables"):
            AuthenticationServer(paper_params, fast_scheme, store=engine,
                                 seed=b"s", key_table_capacity=16)
        # Sizing the cache on the store is the supported spelling.
        server = AuthenticationServer(paper_params, fast_scheme,
                                      store=engine, seed=b"s")
        assert server.key_tables.capacity == 8

    def test_repeated_identification_warms_tables(self, paper_params,
                                                  fast_scheme, rng):
        from repro.protocols.device import BiometricDevice
        from repro.protocols.runners import run_enrollment, run_identification
        from repro.protocols.server import AuthenticationServer
        from repro.protocols.transport import DuplexLink

        server = AuthenticationServer.with_engine(
            paper_params, fast_scheme, shards=2, seed=b"warm-server")
        device = BiometricDevice(paper_params, fast_scheme, seed=b"dev")
        line = SuccinctFuzzyExtractor(paper_params).sketcher.line
        template = line.uniform_vector(rng)
        run_enrollment(device, server, DuplexLink(), "alice", template)

        for _ in range(3):
            noisy = line.reduce(template + rng.integers(
                -paper_params.t, paper_params.t + 1, paper_params.n))
            run = run_identification(device, server, DuplexLink(), noisy)
            assert run.outcome.identified

        stats = server.engine_stats()
        # 1st verify: cold (seen once); 2nd: table built; 3rd: warm hit.
        assert stats.key_table_entries == 1
        assert stats.key_table_hits == 1
        assert stats.key_table_misses == 2
        assert any("verify-key tables" in line
                   for line in stats.summary_lines())

    def test_tables_shared_across_servers_on_one_engine(
            self, paper_params, fast_scheme, rng):
        from repro.protocols.device import BiometricDevice
        from repro.protocols.runners import run_enrollment, run_identification
        from repro.protocols.server import AuthenticationServer
        from repro.protocols.transport import DuplexLink

        engine = IdentificationEngine(paper_params, shards=2)
        first = AuthenticationServer(paper_params, fast_scheme,
                                     store=engine, seed=b"a")
        device = BiometricDevice(paper_params, fast_scheme, seed=b"dev")
        line = SuccinctFuzzyExtractor(paper_params).sketcher.line
        template = line.uniform_vector(rng)
        run_enrollment(device, first, DuplexLink(), "bob", template)
        for _ in range(2):
            noisy = line.reduce(template + rng.integers(
                -paper_params.t, paper_params.t + 1, paper_params.n))
            assert run_identification(device, first, DuplexLink(),
                                      noisy).outcome.identified

        # A second server over the same engine starts with warm tables.
        second = AuthenticationServer(paper_params, fast_scheme,
                                      store=engine, seed=b"b")
        assert second.key_tables is engine.key_tables
        noisy = line.reduce(template + rng.integers(
            -paper_params.t, paper_params.t + 1, paper_params.n))
        assert run_identification(device, second, DuplexLink(),
                                  noisy).outcome.identified
        assert engine.key_tables.hits >= 1


class TestSimulationIntegration:
    def test_workload_over_engine(self, paper_params, fast_scheme):
        from repro.protocols.simulation import WorkloadSimulator

        simulator = WorkloadSimulator.with_engine(
            paper_params, fast_scheme, n_users=3, seed=1, shards=2)
        report = simulator.run(10)
        assert report.n_requests == 10
        stats = simulator.engine_stats()
        assert stats is not None
        assert stats.enrolled == 3
        assert stats.probes_served == 10

    def test_engine_and_classic_store_identify_identically(
            self, paper_params, fast_scheme):
        from repro.protocols.simulation import WorkloadSimulator

        classic = WorkloadSimulator(paper_params, fast_scheme,
                                    n_users=4, seed=9)
        engined = WorkloadSimulator.with_engine(paper_params, fast_scheme,
                                                n_users=4, seed=9, shards=3)
        a = classic.run(12)
        b = engined.run(12)
        for klass in a.per_class:
            assert a.per_class[klass].requests == b.per_class[klass].requests
            assert a.per_class[klass].identified == \
                b.per_class[klass].identified


class TestCounterThreadSafety:
    """Concurrent searches must not lose counter updates (service layer
    worker pools drive one engine from many threads)."""

    def test_concurrent_search_counters_consistent(self, enrolled_engine,
                                                   paper_params, rng,
                                                   watchdog):
        import threading

        engine, templates, fe = enrolled_engine
        probes = {
            name: _probe_for(fe, paper_params, template, rng,
                             tag=name.encode())
            for name, template in templates.items()
        }
        probe_list = list(probes.values())
        n_threads, per_thread = 6, 25
        errors: list[str] = []
        barrier = threading.Barrier(n_threads)

        def worker(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                probe = probe_list[(tid + i) % len(probe_list)]
                if len(engine.search(probe)) != 1:
                    errors.append(f"thread {tid} probe {i}: wrong hit count")
                engine.get(f"user-{(tid + i) % 8}")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = engine.stats()
        total = n_threads * per_thread
        assert stats.probes_served == total
        assert stats.batches_served == total
        assert stats.candidates_returned == total
        assert sum(stats.latency_buckets.values()) == total

    def test_cold_open_identity_map_race(self, enrolled_engine, tmp_path,
                                         watchdog):
        """Two threads racing the lazy id-map build both see every user."""
        import threading

        engine, _, _ = enrolled_engine
        engine.save(tmp_path / "store")
        opened = IdentificationEngine.open(tmp_path / "store")
        results: list[set] = []
        barrier = threading.Barrier(4)

        def worker() -> None:
            barrier.wait()
            found = {f"user-{i}" for i in range(8)
                     if opened.get(f"user-{i}") is not None}
            results.append(found)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        opened.close()
        assert all(found == {f"user-{i}" for i in range(8)}
                   for found in results)
