"""Parity and behaviour tests for the sharded sketch index.

The engine's headline guarantee is that sharding and batching are pure
performance moves: every search mode returns *exactly* the match sets of
the naive per-record loop, for any shard count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import NaiveLoopIndex, VectorizedScanIndex
from repro.core.params import SystemParams
from repro.engine.sharded import ShardedSketchIndex
from repro.exceptions import ParameterError

SHARD_COUNTS = [1, 2, 7]

SMALL = SystemParams(a=5, k=4, v=8, t=4, n=6)


def _random_population(params, n_users, seed):
    rng = np.random.default_rng(seed)
    half = params.interval_width // 2
    enrolled = rng.integers(-half, half + 1, size=(n_users, params.n))
    probes = rng.integers(-half, half + 1, size=(8, params.n))
    return enrolled, probes


class TestShardedParity:
    """`ShardedSketchIndex` vs `NaiveLoopIndex`, the satellite property."""

    @given(seed=st.integers(0, 1000), n_users=st.integers(0, 40),
           shards=st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=40)
    def test_search_and_batch_match_naive_loop(self, seed, n_users, shards):
        enrolled, probes = _random_population(SMALL, n_users, seed)
        naive = NaiveLoopIndex(SMALL)
        sharded = ShardedSketchIndex(SMALL, shards=shards)
        if n_users:
            naive.add_many(enrolled)
            sharded.add_many(enrolled)
        expected = [naive.search(probe) for probe in probes]
        assert [sharded.search(probe) for probe in probes] == expected
        assert sharded.search_batch(probes) == expected

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_empty_index_all_modes(self, shards):
        index = ShardedSketchIndex(SMALL, shards=shards)
        probe = np.zeros(SMALL.n, dtype=np.int64)
        assert index.search(probe) == []
        assert index.search_batch(probe.reshape(1, -1)) == [[]]

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_empty_probe_batch(self, shards):
        index = ShardedSketchIndex(SMALL, shards=shards)
        index.add(np.zeros(SMALL.n, dtype=np.int64))
        assert index.search_batch(np.empty((0, SMALL.n), dtype=np.int64)) == []

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_boundary_probes(self, shards):
        """Probes/sketches pinned at the +-ka/2 range boundary still agree
        (the two spellings of the same ring point must match)."""
        half = SMALL.interval_width // 2
        enrolled = np.array([
            [half] * SMALL.n,
            [-half] * SMALL.n,
            [0] * SMALL.n,
        ])
        naive = NaiveLoopIndex(SMALL)
        sharded = ShardedSketchIndex(SMALL, shards=shards)
        naive.add_many(enrolled)
        sharded.add_many(enrolled)
        probes = np.array([[half] * SMALL.n, [-half] * SMALL.n])
        expected = [naive.search(probe) for probe in probes]
        assert sharded.search_batch(probes) == expected
        # +half and -half are the same ring point: both rows must surface.
        assert expected[0] == [0, 1]

    def test_worker_pool_matches_serial(self):
        enrolled, probes = _random_population(SMALL, 60, seed=7)
        serial = ShardedSketchIndex(SMALL, shards=4)
        parallel = ShardedSketchIndex(SMALL, shards=4, workers=4)
        serial.add_many(enrolled)
        parallel.add_many(enrolled)
        try:
            assert parallel.search_batch(probes) == serial.search_batch(probes)
            for probe in probes:
                assert parallel.search(probe) == serial.search(probe)
        finally:
            parallel.close()


class TestShardedBehaviour:
    def test_global_ids_are_enrollment_order(self):
        enrolled, _ = _random_population(SMALL, 20, seed=3)
        index = ShardedSketchIndex(SMALL, shards=3)
        assert index.add_many(enrolled) == list(range(20))
        assert index.add(enrolled[0]) == 20
        assert len(index) == 21

    def test_hash_partition_is_content_stable(self):
        """The same sketch lands in the same shard regardless of history."""
        enrolled, _ = _random_population(SMALL, 30, seed=5)
        a = ShardedSketchIndex(SMALL, shards=4)
        b = ShardedSketchIndex(SMALL, shards=4)
        a.add_many(enrolled)
        for row in enrolled[::-1]:  # reversed insertion order
            b.add(row)
        sizes_a = sorted(a.shard_sizes())
        sizes_b = sorted(b.shard_sizes())
        assert sizes_a == sizes_b
        assert sum(sizes_a) == 30

    def test_all_shards_used_at_scale(self):
        enrolled, _ = _random_population(SMALL, 200, seed=11)
        index = ShardedSketchIndex(SMALL, shards=4)
        index.add_many(enrolled)
        assert all(size > 0 for size in index.shard_sizes())

    def test_rejects_bad_construction(self):
        with pytest.raises(ParameterError, match="shards"):
            ShardedSketchIndex(SMALL, shards=0)
        with pytest.raises(ParameterError, match="chunk"):
            ShardedSketchIndex(SMALL, chunk=0)
        with pytest.raises(ParameterError, match="workers"):
            ShardedSketchIndex(SMALL, workers=0)

    def test_rejects_wrong_shapes_and_range(self):
        index = ShardedSketchIndex(SMALL, shards=2)
        with pytest.raises(ParameterError):
            index.add(np.zeros(3, dtype=np.int64))
        with pytest.raises(ParameterError):
            index.add_many(np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ParameterError):
            index.search(np.zeros(3, dtype=np.int64))
        with pytest.raises(ParameterError):
            index.search_batch(np.zeros((2, 3), dtype=np.int64))
        too_big = np.full(SMALL.n, SMALL.interval_width, dtype=np.int64)
        with pytest.raises(ParameterError, match="movements"):
            index.add(too_big)


class TestBatchKernelAgreement:
    """`VectorizedScanIndex.search_batch` is the shard kernel's flat twin."""

    @given(seed=st.integers(0, 500), n_users=st.integers(0, 40),
           n_probes=st.integers(0, 6))
    @settings(max_examples=40)
    def test_flat_batch_matches_per_probe_search(self, seed, n_users,
                                                 n_probes):
        rng = np.random.default_rng(seed)
        half = SMALL.interval_width // 2
        enrolled = rng.integers(-half, half + 1, size=(n_users, SMALL.n))
        probes = rng.integers(-half, half + 1, size=(n_probes, SMALL.n))
        index = VectorizedScanIndex(SMALL)
        if n_users:
            index.add_many(enrolled)
        expected = [index.search(probe) for probe in probes]
        assert index.search_batch(probes) == expected

    def test_batch_larger_than_bitmask_group(self):
        """> 64 probes forces multiple uint64 groups."""
        rng = np.random.default_rng(42)
        half = SMALL.interval_width // 2
        enrolled = rng.integers(-half, half + 1, size=(50, SMALL.n))
        probes = rng.integers(-half, half + 1, size=(130, SMALL.n))
        index = ShardedSketchIndex(SMALL, shards=2)
        index.add_many(enrolled)
        flat = VectorizedScanIndex(SMALL)
        flat.add_many(enrolled)
        expected = [flat.search(probe) for probe in probes]
        assert index.search_batch(probes) == expected
        assert flat.search_batch(probes) == expected
