"""kill -9 crash-recovery matrix: die at every save phase, lose nothing.

Each case spawns a real subprocess that builds a journaled engine,
checkpoints once, enrolls more records, installs a ``kill9`` fault rule
at one of the store's three commit-path injection points, and calls
``save`` again — dying by actual ``SIGKILL`` at that point.  The parent
then recovers the store directory and asserts the *exact* pre-crash
logical state: every journaled enrollment present, none duplicated,
sketch search answering correctly.

The three points cover the interesting regions of the two-phase save:

* ``store.save.before-staging`` — nothing staged; the old checkpoint is
  intact and the journal suffix replays over it.
* ``store.save.staged`` — temp files written, commit not begun; ditto,
  plus the stale ``*.tmp`` files must not confuse recovery.
* ``store.save.mid-commit`` — manifest deleted, data files half
  replaced; the directory no longer parses as a store and the engine is
  rebuilt wholesale from the full-history journal.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import IdentificationEngine

# The child builds this exact population; the parent asserts against it.
_CHECKPOINTED = 5
_JOURNAL_ONLY = 3
_TOTAL = _CHECKPOINTED + _JOURNAL_ONLY

_CHILD = r"""
import sys
from repro import faults
from repro.core.extractor import SuccinctFuzzyExtractor
from repro.core.params import SystemParams
from repro.crypto.prng import HmacDrbg
from repro.engine import IdentificationEngine
from repro.engine.journal import journal_path
from repro.protocols.database import UserRecord

point, store = sys.argv[1], sys.argv[2]
params = SystemParams.paper_defaults(n=32)
fe = SuccinctFuzzyExtractor(params)

def record(i):
    import numpy as np
    rng = np.random.default_rng(1000 + i)
    x = fe.sketcher.line.uniform_vector(rng)
    _, helper = fe.generate(x, HmacDrbg(f"crash-{i}".encode()))
    return UserRecord(user_id=f"crash-{i}", verify_key=f"vk-{i}".encode(),
                      helper_data=helper.to_bytes())

engine = IdentificationEngine(params, shards=2,
                              journal=journal_path(store))
engine.add_many([record(i) for i in range(@CHECKPOINTED@)])
engine.save(store)
for i in range(@CHECKPOINTED@, @TOTAL@):
    engine.add(record(i))

print("ARMED", flush=True)
faults.install([{"point": point, "style": "kill9"}])
engine.save(store)  # never returns
print("SURVIVED", flush=True)  # the parent treats this as failure
"""


_ROTATE_CHILD = r"""
import sys
import numpy as np
from repro import faults
from repro.core.extractor import SuccinctFuzzyExtractor
from repro.core.params import SystemParams
from repro.crypto.prng import HmacDrbg
from repro.engine import IdentificationEngine
from repro.engine.journal import journal_path
from repro.protocols.database import UserRecord

store = sys.argv[1]
params = SystemParams.paper_defaults(n=32)
fe = SuccinctFuzzyExtractor(params)

def record(uid, seed):
    rng = np.random.default_rng(seed)
    x = fe.sketcher.line.uniform_vector(rng)
    _, helper = fe.generate(x, HmacDrbg(uid.encode()))
    return UserRecord(user_id=uid, verify_key=uid.encode() * 3,
                      helper_data=helper.to_bytes())

engine = IdentificationEngine(params, shards=2,
                              journal=journal_path(store))
engine.add_many([record(f"crash-{i}", 2000 + i) for i in range(3)])
engine.save(store)

print("ARMED", flush=True)
# Dies after the rotate entry hits the journal, before the index or
# status table mutates — the write-ahead window.
faults.install([{"point": "engine.rotate.journaled", "style": "kill9"}])
engine.rotate(record("crash-1", 4242))  # never returns
print("SURVIVED", flush=True)
"""


def _run_child(script: str, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", script, *argv],
        env=env, capture_output=True, text=True, timeout=120)


def _crash_child(point: str, store: Path) -> subprocess.CompletedProcess:
    script = (_CHILD.replace("@CHECKPOINTED@", str(_CHECKPOINTED))
                    .replace("@TOTAL@", str(_TOTAL)))
    return _run_child(script, point, str(store))


def _open_fds() -> set[str]:
    fd_dir = Path("/proc/self/fd")
    if not fd_dir.exists():  # non-Linux: skip the leak bookkeeping
        return set()
    out = set()
    for entry in fd_dir.iterdir():
        try:
            out.add(f"{entry.name}:{os.readlink(entry)}")
        except OSError:
            pass  # the fd for the directory scan itself comes and goes
    return out


@pytest.mark.parametrize("point", [
    "store.save.before-staging",
    "store.save.staged",
    "store.save.mid-commit",
])
def test_kill9_during_save_loses_nothing(point, tmp_path, watchdog):
    store = tmp_path / "store"
    result = _crash_child(point, store)

    # The child must have died by real SIGKILL at the injection point —
    # anything else means the fault never fired.
    assert result.returncode == -signal.SIGKILL, (result.returncode,
                                                  result.stdout,
                                                  result.stderr)
    assert "ARMED" in result.stdout
    assert "SURVIVED" not in result.stdout

    recovered = IdentificationEngine.recover(store)
    try:
        # Exact pre-crash logical state: all eight enrollments, in order.
        assert [r.user_id for r in recovered] == \
               [f"crash-{i}" for i in range(_TOTAL)]
        assert recovered.journal_seq() == _TOTAL
        # Records survive byte-exactly (key material included).
        assert recovered.get("crash-6").verify_key == b"vk-6"
        # And the engine still answers: enrolling one more round-trips.
        assert recovered.journal is not None
    finally:
        recovered.journal.close()

    # Recovery must leave a directory a plain open accepts again.  The
    # checkpoint alone may legitimately trail (pre-commit crash points
    # keep the old 5-record checkpoint; the journal carries the rest) —
    # but an open that attaches the journal always sees everything.
    reopened = IdentificationEngine.open(store, journal=False)
    assert _CHECKPOINTED <= len(reopened) <= _TOTAL
    full = IdentificationEngine.open(store)
    try:
        assert len(full) == _TOTAL
    finally:
        full.journal.close()


def test_kill9_mid_rotate_replays_from_journal(tmp_path, watchdog):
    """Die between the rotate's journal append and the index mutation.

    The entry is durable but the in-memory state (and checkpoint) never
    saw it — the write-ahead contract says recovery must replay it: the
    identity ends up rotated exactly once, old version superseded, new
    one active.
    """
    store = tmp_path / "store"
    result = _run_child(_ROTATE_CHILD, str(store))

    assert result.returncode == -signal.SIGKILL, (result.returncode,
                                                  result.stdout,
                                                  result.stderr)
    assert "ARMED" in result.stdout
    assert "SURVIVED" not in result.stdout

    recovered = IdentificationEngine.recover(store)
    try:
        assert recovered.journal_seq() == 4  # 3 enrolls + 1 rotate
        versions = recovered.get_versions("crash-1")
        assert [v.status_name for v in versions] == ["superseded", "active"]
        assert recovered.active_version("crash-1") == 1
        # The rotated-in record is the active one, not the original.
        assert recovered.get("crash-1").helper_data == \
               versions[1].record.helper_data
        # Neighbours untouched, exactly one live version each.
        for uid in ("crash-0", "crash-2"):
            assert [v.status_name for v in recovered.get_versions(uid)] == \
                   ["active"]
    finally:
        recovered.journal.close()

    # A plain open replays the same journal suffix over the checkpoint.
    reopened = IdentificationEngine.open(store)
    try:
        assert reopened.active_version("crash-1") == 1
        assert reopened.journal_seq() == 4
    finally:
        reopened.journal.close()


def test_recovery_cycles_do_not_leak_fds(tmp_path, watchdog):
    """Repeated crash+recover cycles hold no growing fd set.

    The engine memory-maps store files and holds a journal append
    handle; a recovery path that forgot to close either would show up
    as monotonic fd growth here.
    """
    if not Path("/proc/self/fd").exists():
        pytest.skip("fd accounting needs procfs")

    store = tmp_path / "store"
    result = _crash_child("store.save.mid-commit", store)
    assert result.returncode == -signal.SIGKILL

    # Warm every lazy path once (imports, first mmap) before baselining.
    engine = IdentificationEngine.recover(store)
    engine.journal.close()
    del engine
    baseline = len(_open_fds())

    for _ in range(5):
        engine = IdentificationEngine.recover(store)
        assert len(engine) == _TOTAL
        engine.journal.close()
        del engine

    leaked = len(_open_fds()) - baseline
    assert leaked <= 0, f"{leaked} fds leaked across recovery cycles"
