"""Tests for the crash-safe enrollment journal and its engine wiring."""

import numpy as np
import pytest

from repro.core.extractor import SuccinctFuzzyExtractor
from repro.core.params import SystemParams
from repro.crypto.prng import HmacDrbg
from repro.engine import IdentificationEngine
from repro.engine.journal import EnrollmentJournal, journal_path
from repro.engine.lifecycle import OP_ENROLL, encode_record_entry
from repro.engine.storage import _encode_record
from repro.exceptions import ParameterError, ReplicationError
from repro.protocols.database import UserRecord


def _make_records(params, count, rng, tag="user"):
    """Real enrollable records (decodable helper data) + their templates."""
    fe = SuccinctFuzzyExtractor(params)
    records, templates = [], {}
    for i in range(count):
        name = f"{tag}-{i}"
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, HmacDrbg(name.encode()))
        templates[name] = x
        records.append(UserRecord(user_id=name, verify_key=name.encode() * 3,
                                  helper_data=helper.to_bytes()))
    return records, templates, fe


def _probe_for(fe, params, template, rng):
    noisy = fe.sketcher.line.reduce(
        template + rng.integers(-params.t, params.t + 1, params.n))
    return fe.sketcher.sketch(noisy, HmacDrbg(b"probe"))


@pytest.fixture
def records(paper_params, rng):
    return _make_records(paper_params, 6, rng)


class TestJournalFile:
    def test_create_append_reopen_round_trip(self, tmp_path, paper_params,
                                             records):
        recs, _, _ = records
        path = tmp_path / "journal.log"
        with EnrollmentJournal(path, params=paper_params) as journal:
            for i, record in enumerate(recs):
                assert journal.append(record) == i
            assert len(journal) == len(recs)
            assert journal.head_seq == len(recs)

        reopened = EnrollmentJournal(path)
        assert reopened.truncated_bytes == 0
        assert reopened.base == 0
        assert reopened.params.to_dict() == paper_params.to_dict()
        replayed = reopened.records()
        assert [r.user_id for r in replayed] == [r.user_id for r in recs]
        assert [r.helper_data for r in replayed] == \
               [r.helper_data for r in recs]

    def test_creating_without_params_fails(self, tmp_path):
        with pytest.raises(ParameterError, match="requires params"):
            EnrollmentJournal(tmp_path / "journal.log")

    def test_params_mismatch_detected_on_open(self, tmp_path, paper_params,
                                              records):
        recs, _, _ = records
        path = tmp_path / "journal.log"
        with EnrollmentJournal(path, params=paper_params) as journal:
            journal.append(recs[0])
        other = SystemParams.paper_defaults(n=paper_params.n + 1)
        with pytest.raises(ParameterError, match="do not match"):
            EnrollmentJournal(path, params=other)

    def test_torn_tail_is_truncated_not_replayed(self, tmp_path, paper_params,
                                                 records):
        recs, _, _ = records
        path = tmp_path / "journal.log"
        with EnrollmentJournal(path, params=paper_params) as journal:
            for record in recs[:4]:
                journal.append(record)
            intact_size = path.stat().st_size

        # A power loss mid-append leaves a partial entry at the tail.
        tail = _encode_record(recs[4])
        with open(path, "ab") as handle:
            handle.write(b"\x04\x00\x00\x00")  # half an entry header
            handle.write(tail[: len(tail) // 3])

        reopened = EnrollmentJournal(path)
        assert reopened.truncated_bytes > 0
        assert len(reopened) == 4
        assert path.stat().st_size == intact_size  # tail physically removed
        # The journal keeps accepting appends after truncation.
        assert reopened.append(recs[4]) == 4
        assert [r.user_id for r in reopened.records()] == \
               [r.user_id for r in recs[:5]]

    def test_corrupt_crc_truncates_from_the_damage(self, tmp_path,
                                                   paper_params, records):
        recs, _, _ = records
        path = tmp_path / "journal.log"
        with EnrollmentJournal(path, params=paper_params) as journal:
            offsets = [journal.append(r) for r in recs]
            assert offsets == list(range(len(recs)))
            third_entry_start = journal._offsets[3]
        # Flip a byte inside the fourth entry's payload.
        with open(path, "r+b") as handle:
            handle.seek(third_entry_start + 20)
            byte = handle.read(1)
            handle.seek(third_entry_start + 20)
            handle.write(bytes([byte[0] ^ 0xFF]))
        reopened = EnrollmentJournal(path)
        assert len(reopened) == 3
        assert reopened.truncated_bytes > 0

    def test_read_slicing_and_bounds(self, tmp_path, paper_params, records):
        recs, _, _ = records
        with EnrollmentJournal(tmp_path / "j.log",
                               params=paper_params) as journal:
            for record in recs:
                journal.append(record)
            assert [seq for seq, _ in journal.read(0)] == \
                   list(range(len(recs)))
            assert [seq for seq, _ in journal.read(4)] == [4, 5]
            assert journal.read(len(recs)) == []
            assert journal.read(len(recs) + 3) == []
            batch = journal.read(1, max_entries=2)
            assert [seq for seq, _ in batch] == [1, 2]
            assert batch[0][1] == _encode_record(recs[1])

    def test_read_below_base_refused(self, tmp_path, paper_params, records):
        recs, _, _ = records
        with EnrollmentJournal(tmp_path / "j.log", params=paper_params,
                               base=10) as journal:
            assert journal.append(recs[0]) == 10
            with pytest.raises(ParameterError, match="cannot serve"):
                journal.read(3)


class TestEngineJournalIntegration:
    def test_journaled_engine_replays_suffix_past_checkpoint(
            self, tmp_path, paper_params, rng, records):
        recs, templates, fe = records
        store = tmp_path / "store"
        engine = IdentificationEngine(
            paper_params, shards=2, journal=journal_path(store))
        engine.add_many(recs[:3])
        engine.save(store)
        # Enrollments after the checkpoint live only in the journal.
        for record in recs[3:]:
            engine.add(record)
        engine.journal.close()

        reopened = IdentificationEngine.open(store)
        assert len(reopened) == len(recs)
        assert reopened.journal_seq() == len(recs)
        probe = _probe_for(fe, paper_params, templates["user-5"], rng)
        assert [r.user_id for r in reopened.find_by_sketch(probe)] == \
               ["user-5"]
        reopened.journal.close()

    def test_open_tri_state_journal_flag(self, tmp_path, paper_params,
                                         records):
        recs, _, _ = records
        store = tmp_path / "store"
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(recs[:2])
        engine.save(store)

        # Default: no journal file, none attached.
        plain = IdentificationEngine.open(store)
        assert plain.journal is None

        # True: creates one, based at the checkpoint's record count.
        journaled = IdentificationEngine.open(store, journal=True)
        assert journaled.journal is not None
        assert journaled.journal.base == 2
        journaled.add(recs[2])
        journaled.journal.close()

        # None (default) now attaches the existing journal and replays.
        attached = IdentificationEngine.open(store)
        assert len(attached) == 3
        attached.journal.close()

        # False: never attaches, even though journal.log exists.
        opted_out = IdentificationEngine.open(store, journal=False)
        assert opted_out.journal is None
        assert len(opted_out) == 2

    def test_recover_rebuilds_store_from_full_history_journal(
            self, tmp_path, paper_params, rng, records):
        recs, templates, fe = records
        store = tmp_path / "store"
        engine = IdentificationEngine(
            paper_params, shards=2, journal=journal_path(store))
        engine.add_many(recs)
        engine.save(store)
        engine.journal.close()

        # Simulate dying inside the commit window: manifest gone, a data
        # file half-replaced — open_store() must reject this directory.
        (store / "manifest.json").unlink()
        with pytest.raises(ParameterError):
            IdentificationEngine.open(store, journal=False)

        recovered = IdentificationEngine.recover(store)
        assert len(recovered) == len(recs)
        probe = _probe_for(fe, paper_params, templates["user-1"], rng)
        assert [r.user_id for r in recovered.find_by_sketch(probe)] == \
               ["user-1"]
        recovered.journal.close()

        # The rebuild re-checkpointed: a plain open works again.
        again = IdentificationEngine.open(store, journal=False)
        assert len(again) == len(recs)

    def test_recover_without_journal_propagates_error(self, tmp_path,
                                                      paper_params, records):
        recs, _, _ = records
        store = tmp_path / "store"
        engine = IdentificationEngine(paper_params, shards=2)
        engine.add_many(recs[:2])
        engine.save(store)
        (store / "manifest.json").unlink()
        with pytest.raises(ParameterError):
            IdentificationEngine.recover(store)


class TestReplicationApply:
    def test_apply_replicated_is_idempotent_and_gap_safe(
            self, paper_params, records):
        recs, _, _ = records
        primary = IdentificationEngine(paper_params, shards=2)
        follower = IdentificationEngine(paper_params, shards=2)
        # The wire always carries typed entries (the replication server
        # converts record-format journals on the way out).
        entries = [(i, encode_record_entry(OP_ENROLL, r))
                   for i, r in enumerate(recs)]
        primary.add_many(recs)

        assert follower.apply_replicated(entries[:4]) == 4
        # Replaying an already-covered prefix applies nothing.
        assert follower.apply_replicated(entries[:4]) == 0
        # Overlapping batch: covered entries skipped, new ones applied.
        assert follower.apply_replicated(entries[2:]) == 2
        assert [r.user_id for r in follower] == [r.user_id for r in primary]

        # A gap means the follower's offset view is stale.
        fresh = IdentificationEngine(paper_params, shards=2)
        with pytest.raises(ReplicationError, match="gap"):
            fresh.apply_replicated(entries[3:])

    def test_follower_with_own_journal_rejournals(self, tmp_path,
                                                  paper_params, records):
        recs, _, _ = records
        entries = [(i, encode_record_entry(OP_ENROLL, r))
                   for i, r in enumerate(recs)]
        jpath = tmp_path / "follower" / "journal.log"
        follower = IdentificationEngine(paper_params, shards=2, journal=jpath)
        follower.apply_replicated(entries)
        follower.journal.close()

        # A restarted follower replays its local journal and reports the
        # replicated offset, so the next pull resumes where it left off.
        restarted = IdentificationEngine(
            paper_params, shards=2,
            journal=EnrollmentJournal(jpath, params=paper_params))
        assert len(restarted) == len(recs)
        assert restarted.journal_seq() == len(recs)
        restarted.journal.close()


def test_journal_path_helper(tmp_path):
    assert journal_path(tmp_path) == tmp_path / "journal.log"
