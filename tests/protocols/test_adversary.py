"""Adversary-model tests: every Section VI attack must be defeated, and
each attack must be *demonstrably live* when its defence is removed."""

import numpy as np
import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.protocols.adversary import (
    Eavesdropper,
    HelperDataTamperer,
    ReplayAttacker,
    tamper_stored_helper,
)
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import IdentificationResponse, Message
from repro.protocols.runners import run_enrollment, run_identification
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink


@pytest.fixture
def params():
    return SystemParams.paper_defaults(n=200)


@pytest.fixture
def population(params):
    return UserPopulation(params, size=4,
                          noise=BoundedUniformNoise(params.t), seed=31)


@pytest.fixture
def stack(params, fast_scheme, population):
    device = BiometricDevice(params, fast_scheme, seed=b"device")
    server = AuthenticationServer(params, fast_scheme, seed=b"server")
    for i, user_id in enumerate(population.user_ids()):
        run_enrollment(device, server, DuplexLink(), user_id,
                       population.template(i))
    return device, server


class TestEavesdropper:
    def test_sees_only_public_data(self, stack, population):
        """The wiretap observes sketches and helper data — all public by
        the fuzzy extractor's security argument — and no biometric."""
        device, server = stack
        tap = Eavesdropper()
        link = DuplexLink()
        link.to_server.add_hook(tap.hook)
        link.to_device.add_hook(tap.hook)
        bio = population.genuine_reading(1)
        run = run_identification(device, server, link, bio)
        assert run.outcome.identified
        assert len(tap.frames) == 4
        # The raw biometric reading never appears on the wire.
        bio_bytes = bio.astype(">i8").tobytes()
        for frame in tap.frames:
            assert bio_bytes not in frame

    def test_observed_messages_decode(self, stack, population):
        device, server = stack
        tap = Eavesdropper()
        link = DuplexLink()
        link.to_server.add_hook(tap.hook)
        run_identification(device, server, link, population.genuine_reading(0))
        assert all(isinstance(m, Message) for m in tap.observed_messages())


class TestHelperDataTampering:
    def test_in_transit_tampering_defeated(self, stack, population):
        device, server = stack
        tamperer = HelperDataTamperer(coordinate=0, delta=1)
        link = DuplexLink()
        link.to_device.add_hook(tamperer.hook)
        run = run_identification(device, server, link,
                                 population.genuine_reading(2))
        assert tamperer.tampered_count == 1, "attack did not fire"
        assert not run.outcome.identified

    def test_at_rest_tampering_defeated(self, stack, population):
        device, server = stack
        tamper_stored_helper(server.store, "user-0001", coordinate=3, delta=1)
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(1))
        assert not run.outcome.identified

    def test_other_users_unaffected_by_at_rest_tampering(self, stack,
                                                         population):
        device, server = stack
        tamper_stored_helper(server.store, "user-0001")
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(2))
        assert run.outcome.identified and run.outcome.user_id == "user-0002"

    def test_attack_is_live_without_robustness(self, params, fast_scheme,
                                               population):
        """Sanity: with a NON-robust sketch the same tamper changes the
        recovered template silently — proving the hash is load-bearing."""
        from repro.core.sketch import ChebyshevSketch
        from repro.crypto.prng import HmacDrbg

        sketcher = ChebyshevSketch(params)
        x = population.template(0)
        s = sketcher.sketch(x, HmacDrbg(b"t"))
        # Nudge one movement by 1 (<= t): the shifted reading stays inside
        # the acceptance window, so plain Rec silently returns x - 1 on
        # that coordinate instead of aborting.
        tampered = s.copy()
        tampered[0] = int(s[0]) + (1 if s[0] <= 0 else -1)
        z = sketcher.recover(x, tampered)
        assert not np.array_equal(z, sketcher.line.reduce(x))


class TestReplay:
    def test_replayed_response_rejected(self, stack, population):
        device, server = stack
        attacker = ReplayAttacker()
        link = DuplexLink()
        link.to_server.add_hook(attacker.capture_hook)
        bio = population.genuine_reading(3)
        first = run_identification(device, server, link, bio)
        assert first.identified if hasattr(first, "identified") else \
            first.outcome.identified
        assert attacker.captured is not None

        # Open a fresh session, then answer it with the captured response.
        request = device.probe_sketch(population.genuine_reading(3))
        challenge = server.handle_identification_request(request)
        replayed = Message.decode(attacker.replay())
        assert isinstance(replayed, IdentificationResponse)
        outcome = server.handle_identification_response(replayed)
        assert not outcome.identified, "replayed signature must be rejected"

    def test_replay_would_succeed_without_fresh_challenges(self, stack,
                                                           population,
                                                           fast_scheme):
        """Sanity: the signature itself still verifies against the old
        challenge — freshness, not the signature, is what stops replay."""
        device, server = stack
        bio = population.genuine_reading(3)
        request = device.probe_sketch(bio)
        challenge = server.handle_identification_request(request)
        response = device.respond_identification(
            bio, challenge.helper_data, challenge.challenge,
            challenge.session_id,
        )
        from repro.protocols.device import signed_payload

        record = server.store.get("user-0003")
        payload = signed_payload(challenge.challenge, response.nonce)
        assert fast_scheme.verify(record.verify_key, payload,
                                  response.signature)


class TestImpostor:
    def test_near_miss_impostor_rejected(self, stack, population, params):
        """A reading just past the threshold on one coordinate: the sketch
        search may or may not match, but identification must not succeed
        with a *wrong* user, and the genuine user path still works."""
        device, server = stack
        bio = population.template(0).copy()
        bio[0] = (bio[0] + params.t + params.a) % params.half_range
        run = run_identification(device, server, DuplexLink(), bio)
        if run.outcome.identified:
            assert run.outcome.user_id == "user-0000"
