"""Unit tests for the biometric device actor ``BioD``."""

import numpy as np
import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.extractor import HelperData
from repro.core.params import SystemParams
from repro.exceptions import ParameterError, RecoveryError
from repro.protocols.device import BiometricDevice, signed_payload
from repro.protocols.messages import EnrollmentSubmission, IdentificationRequest


@pytest.fixture
def params():
    return SystemParams.paper_defaults(n=120)


@pytest.fixture
def device(params, fast_scheme):
    return BiometricDevice(params, fast_scheme, seed=b"unit-device")


@pytest.fixture
def population(params):
    return UserPopulation(params, size=2,
                          noise=BoundedUniformNoise(params.t), seed=13)


class TestEnroll:
    def test_submission_shape(self, device, population):
        submission = device.enroll("alice", population.template(0))
        assert isinstance(submission, EnrollmentSubmission)
        assert submission.user_id == "alice"
        assert len(submission.verify_key) > 0
        HelperData.from_bytes(submission.helper_data)  # parses

    def test_verify_key_matches_reproducible_secret(self, device, params,
                                                    population, fast_scheme):
        """The pk the server stores must correspond to the sk the device
        re-derives from a later reading — the paper's core key lifecycle."""
        template = population.template(0)
        submission = device.enroll("alice", template)
        secret = device.fe.reproduce(
            population.genuine_reading(0),
            HelperData.from_bytes(submission.helper_data),
        )
        keypair = fast_scheme.keygen_from_seed(secret)
        assert keypair.verify_key == submission.verify_key

    def test_enrollments_use_fresh_randomness(self, device, population):
        s1 = device.enroll("a", population.template(0))
        s2 = device.enroll("b", population.template(0))
        # Same template, fresh extractor seed -> different helper data/pk.
        assert s1.helper_data != s2.helper_data
        assert s1.verify_key != s2.verify_key

    def test_device_retains_no_biometric_state(self, device, population):
        """After enrollment the device's attribute set holds no template
        or key material (the paper's 'erases (ID, Bio, sk) immediately')."""
        template = population.template(0)
        device.enroll("alice", template)
        state_values = vars(device).values()
        for value in state_values:
            assert not isinstance(value, np.ndarray)

    def test_rejects_wrong_dimension(self, device):
        with pytest.raises(Exception):
            device.enroll("x", np.zeros(7, dtype=np.int64))


class TestProbe:
    def test_probe_is_valid_sketch(self, device, params, population):
        request = device.probe_sketch(population.genuine_reading(0))
        assert isinstance(request, IdentificationRequest)
        device.fe.sketcher.validate_sketch(request.sketch)

    def test_probe_never_contains_reading(self, device, params, population):
        """The sketch hides the reading: recovering the reading from the
        sketch alone requires guessing the interval (Theorem 3)."""
        reading = population.genuine_reading(0)
        request = device.probe_sketch(reading)
        # movements are bounded by ka/2 = 200; readings span ±100000.
        assert int(np.max(np.abs(request.sketch))) <= params.interval_width // 2


class TestRespond:
    def test_respond_roundtrip(self, device, population, fast_scheme):
        template = population.template(0)
        submission = device.enroll("alice", template)
        response = device.respond_identification(
            population.genuine_reading(0), submission.helper_data,
            b"c" * 16, b"s" * 16,
        )
        payload = signed_payload(b"c" * 16, response.nonce)
        assert fast_scheme.verify(submission.verify_key, payload,
                                  response.signature)

    def test_respond_wrong_user_raises(self, device, population):
        submission = device.enroll("alice", population.template(0))
        with pytest.raises(RecoveryError):
            device.respond_identification(
                population.genuine_reading(1), submission.helper_data,
                b"c" * 16, b"s" * 16,
            )

    def test_respond_malformed_helper_raises(self, device, population):
        with pytest.raises(ParameterError):
            device.respond_identification(
                population.genuine_reading(0), b"garbage",
                b"c" * 16, b"s" * 16,
            )

    def test_nonces_are_fresh(self, device, population):
        submission = device.enroll("alice", population.template(0))
        r1 = device.respond_identification(
            population.genuine_reading(0), submission.helper_data,
            b"c" * 16, b"s" * 16)
        r2 = device.respond_identification(
            population.genuine_reading(0), submission.helper_data,
            b"c" * 16, b"s" * 16)
        assert r1.nonce != r2.nonce


class TestSignedPayload:
    def test_binds_challenge_and_nonce(self):
        assert signed_payload(b"c1", b"n1") != signed_payload(b"c2", b"n1")
        assert signed_payload(b"c1", b"n1") != signed_payload(b"c1", b"n2")

    def test_framing_injective(self):
        assert signed_payload(b"ab", b"c") != signed_payload(b"a", b"bc")
