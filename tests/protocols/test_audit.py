"""Tests for the server audit trail."""

import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.protocols.device import BiometricDevice
from repro.protocols.runners import (
    run_baseline_identification,
    run_enrollment,
    run_identification,
    run_verification,
)
from repro.protocols.server import AuditEvent, AuthenticationServer
from repro.protocols.transport import DuplexLink


@pytest.fixture
def params():
    return SystemParams.paper_defaults(n=150)


@pytest.fixture
def stack(params, fast_scheme):
    population = UserPopulation(params, size=3,
                                noise=BoundedUniformNoise(params.t), seed=1)
    device = BiometricDevice(params, fast_scheme, seed=b"d")
    server = AuthenticationServer(params, fast_scheme, seed=b"s")
    for i, user_id in enumerate(population.user_ids()):
        run_enrollment(device, server, DuplexLink(), user_id,
                       population.template(i))
    return device, server, population


class TestAuditTrail:
    def test_enrollment_events(self, stack):
        _, server, _ = stack
        events = server.audit_log("enroll-ok")
        assert [e.user_id for e in events] == [
            "user-0000", "user-0001", "user-0002"]

    def test_duplicate_enrollment_audited(self, stack, params):
        device, server, population = stack
        run_enrollment(device, server, DuplexLink(), "user-0000",
                       population.template(0))
        refused = server.audit_log("enroll-refused")
        assert len(refused) == 1
        assert refused[0].user_id == "user-0000"

    def test_successful_identification_audited(self, stack):
        device, server, population = stack
        run_identification(device, server, DuplexLink(),
                           population.genuine_reading(1))
        assert server.audit_log("identify-challenge")[-1].user_id == \
            "user-0001"
        assert server.audit_log("identify-ok")[-1].user_id == "user-0001"

    def test_failed_identification_audited(self, stack):
        device, server, population = stack
        run_identification(device, server, DuplexLink(),
                           population.impostor_reading())
        failures = server.audit_log("identify-fail")
        assert failures and failures[-1].detail == "no sketch match"

    def test_verification_success_audited(self, stack):
        device, server, population = stack
        run_verification(device, server, DuplexLink(), "user-0002",
                         population.genuine_reading(2))
        assert server.audit_log("verify-ok")[-1].user_id == "user-0002"

    def test_forged_verification_audited(self, stack, fast_scheme):
        """A server-side verify failure (forged signature) is logged.

        A wrong *biometric* fails device-side (Rep aborts before any
        response reaches the server), so the server-side failure path
        needs an attacker who answers the challenge with a signature
        under the wrong key.
        """
        _, server, _ = stack
        from repro.protocols.device import signed_payload
        from repro.protocols.messages import (
            VerificationRequest,
            VerificationResponse,
        )

        challenge = server.handle_verification_request(
            VerificationRequest(user_id="user-0002"))
        forged_keys = fast_scheme.keygen_from_seed(b"attacker" * 4)
        nonce = b"n" * 16
        signature = fast_scheme.sign(
            forged_keys.signing_key,
            signed_payload(challenge.challenge, nonce),
        )
        outcome = server.handle_verification_response(VerificationResponse(
            session_id=challenge.session_id, signature=signature,
            nonce=nonce,
        ))
        assert not outcome.verified
        assert server.audit_log("verify-fail")[-1].user_id == "user-0002"

    def test_baseline_batch_audited(self, stack):
        device, server, population = stack
        run_baseline_identification(device, server, DuplexLink(),
                                    population.genuine_reading(0))
        batches = server.audit_log("baseline-batch")
        assert batches and "3 records" in batches[-1].detail

    def test_sequence_monotone(self, stack):
        device, server, population = stack
        run_identification(device, server, DuplexLink(),
                           population.genuine_reading(0))
        sequences = [e.sequence for e in server.audit_log()]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_capacity_bound(self, params, fast_scheme):
        server = AuthenticationServer(params, fast_scheme, seed=b"cap",
                                      audit_capacity=5)
        for i in range(12):
            server._record_event("test", f"user-{i}")
        events = server.audit_log()
        assert len(events) == 5
        assert events[0].user_id == "user-7"  # oldest evicted

    def test_filter_returns_copies_only(self, stack):
        _, server, _ = stack
        before = len(server.audit_log())
        server.audit_log().append(
            AuditEvent(sequence=999, kind="bogus"))
        assert len(server.audit_log()) == before
