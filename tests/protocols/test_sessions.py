"""SessionStore: TTL expiry, capacity eviction, audit hooks, thread safety.

The regression these tests pin down: before the store existed, a device
that received a challenge and never responded leaked its server-side
session forever.  Now abandonment is bounded (cap) and temporary (TTL),
and every drop is observable (``on_evict`` → ``identify-expired`` audit).
"""

from __future__ import annotations

import threading

import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import IdentificationChallenge, IdentificationResponse
from repro.protocols.runners import run_enrollment
from repro.protocols.server import AuthenticationServer
from repro.protocols.sessions import PendingSession, SessionStore
from repro.protocols.transport import DuplexLink


def _session(mode: str = "identify") -> PendingSession:
    return PendingSession(mode=mode, records=(), challenges=(b"c",))


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSessionStore:
    def test_put_pop_round_trip(self):
        store = SessionStore(capacity=4, ttl_s=None)
        session = _session()
        store.put(b"sid", session)
        assert len(store) == 1
        assert store.pop(b"sid") is session
        assert store.pop(b"sid") is None          # one-shot
        assert len(store) == 0

    def test_ttl_expiry_is_lazy_and_audited(self):
        clock = FakeClock()
        dropped = []
        store = SessionStore(capacity=8, ttl_s=10.0, clock=clock,
                             on_evict=dropped.append)
        store.put(b"old", _session())
        clock.now = 5.0
        store.put(b"young", _session())
        clock.now = 11.0                           # "old" is past deadline
        assert store.sweep() == 1
        assert [ev.session_id for ev in dropped] == [b"old"]
        assert dropped[0].reason == "expired"
        assert store.pop(b"young") is not None     # still within its TTL

    def test_pop_of_expired_session_rejects_and_audits(self):
        clock = FakeClock()
        dropped = []
        store = SessionStore(capacity=8, ttl_s=10.0, clock=clock,
                             on_evict=dropped.append)
        store.put(b"sid", _session())
        clock.now = 10.0                           # deadline is inclusive
        assert store.pop(b"sid") is None
        assert dropped[0].reason == "expired"
        assert store.expired == 1

    def test_capacity_evicts_oldest_first(self):
        dropped = []
        store = SessionStore(capacity=2, ttl_s=None, on_evict=dropped.append)
        store.put(b"a", _session())
        store.put(b"b", _session())
        store.put(b"c", _session())
        assert len(store) == 2
        assert [ev.session_id for ev in dropped] == [b"a"]
        assert dropped[0].reason == "capacity"
        assert store.pop(b"a") is None
        assert store.pop(b"b") is not None
        assert store.stats()["capacity_evicted"] == 1

    def test_put_sweeps_before_counting_occupancy(self):
        """Expired sessions never crowd out fresh ones via the cap."""
        clock = FakeClock()
        store = SessionStore(capacity=2, ttl_s=1.0, clock=clock)
        store.put(b"a", _session())
        store.put(b"b", _session())
        clock.now = 2.0
        store.put(b"c", _session())
        assert store.capacity_evicted == 0         # expiry, not eviction
        assert store.expired == 2
        assert store.pop(b"c") is not None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SessionStore(capacity=0)
        with pytest.raises(ValueError):
            SessionStore(ttl_s=0.0)

    def test_concurrent_put_pop_conserves_sessions(self):
        """Every session is popped exactly once across racing threads."""
        store = SessionStore(capacity=10_000, ttl_s=None)
        n_threads, per_thread = 8, 200
        won: list[bytes] = []
        lock = threading.Lock()
        ids = [f"s{i}".encode() for i in range(per_thread)]
        for sid in ids:
            store.put(sid, _session())

        def worker() -> None:
            for sid in ids:
                if store.pop(sid) is not None:
                    with lock:
                        won.append(sid)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(won) == sorted(ids)          # each popped exactly once
        assert len(store) == 0


class TestServerSessionLeak:
    """The satellite regression: abandoning N challenges stays bounded."""

    @pytest.fixture()
    def stack(self, paper_params, fast_scheme):
        population = UserPopulation(paper_params, size=4,
                                    noise=BoundedUniformNoise(paper_params.t),
                                    seed=7)
        device = BiometricDevice(paper_params, fast_scheme, seed=b"leak-dev")
        server = AuthenticationServer(paper_params, fast_scheme,
                                      seed=b"leak-srv", max_sessions=8)
        for i, user_id in enumerate(population.user_ids()):
            run = run_enrollment(device, server, DuplexLink(), user_id,
                                 population.template(i))
            assert run.outcome.accepted
        return device, server, population

    def test_abandoned_challenges_stay_bounded_and_audited(self, stack):
        device, server, population = stack
        n_abandoned = 40
        for _ in range(n_abandoned):
            request = device.probe_sketch(population.genuine_reading(0))
            reply = server.handle_identification_request(request)
            assert isinstance(reply, IdentificationChallenge)
            # ... and the device never responds.
        assert server.outstanding_sessions() <= 8
        expired = server.audit_log(kind="identify-expired")
        assert len(expired) == n_abandoned - server.outstanding_sessions()
        assert all("capacity" in e.detail for e in expired)

    def test_expired_session_response_is_rejected(self, stack, paper_params,
                                                  fast_scheme):
        """A response naming a TTL-expired session fails like a replay."""
        clock = FakeClock()
        server = AuthenticationServer(
            paper_params, fast_scheme, seed=b"ttl-srv",
            sessions=SessionStore(capacity=8, ttl_s=30.0, clock=clock))
        device, _, population = stack
        run = run_enrollment(device, server, DuplexLink(), "ttl-user",
                             population.template(0))
        assert run.outcome.accepted
        reading = population.genuine_reading(0)
        request = device.probe_sketch(reading)
        reply = server.handle_identification_request(request)
        assert isinstance(reply, IdentificationChallenge)
        response = device.respond_identification(
            reading, reply.helper_data, reply.challenge, reply.session_id)
        clock.now = 31.0                           # challenge went stale
        outcome = server.handle_identification_response(response)
        assert not outcome.identified
        assert server.audit_log(kind="identify-expired")
        # A fresh round still works: expiry is per-session, not global.
        reply = server.handle_identification_request(
            device.probe_sketch(reading))
        response = device.respond_identification(
            reading, reply.helper_data, reply.challenge, reply.session_id)
        assert server.handle_identification_response(response).identified

    def test_identification_response_type(self, stack):
        """Sanity: the happy path still authenticates under the new store."""
        device, server, population = stack
        reading = population.genuine_reading(1)
        reply = server.handle_identification_request(
            device.probe_sketch(reading))
        response = device.respond_identification(
            reading, reply.helper_data, reply.challenge, reply.session_id)
        assert isinstance(response, IdentificationResponse)
        outcome = server.handle_identification_response(response)
        assert outcome.identified
        assert outcome.user_id == population.user_ids()[1]
