"""End-to-end protocol integration tests (enrollment, both identification
modes, verification) over the full device/server/transport stack."""

import numpy as np
import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.protocols.device import BiometricDevice
from repro.protocols.runners import (
    run_baseline_identification,
    run_enrollment,
    run_identification,
    run_verification,
)
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink


@pytest.fixture
def params():
    return SystemParams.paper_defaults(n=200)


@pytest.fixture
def population(params):
    return UserPopulation(params, size=8,
                          noise=BoundedUniformNoise(params.t), seed=21)


@pytest.fixture
def stack(params, fast_scheme, population):
    device = BiometricDevice(params, fast_scheme, seed=b"device")
    server = AuthenticationServer(params, fast_scheme, seed=b"server")
    for i, user_id in enumerate(population.user_ids()):
        run = run_enrollment(device, server, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted
    return device, server


class TestEnrollment:
    def test_duplicate_enrollment_refused(self, stack, population):
        device, server = stack
        run = run_enrollment(device, server, DuplexLink(), "user-0000",
                             population.template(0))
        assert not run.outcome.accepted

    def test_enrollment_stores_all_users(self, stack):
        _, server = stack
        assert len(server.store) == 8

    def test_private_key_never_reaches_server(self, stack, population):
        """The server's records contain only (ID, pk, P)."""
        _, server = stack
        for record in server.store:
            assert set(vars(record)) == {"user_id", "verify_key", "helper_data"}


class TestIdentification:
    def test_each_user_identified(self, stack, population):
        device, server = stack
        for i, expected_id in enumerate(population.user_ids()):
            run = run_identification(device, server, DuplexLink(),
                                     population.genuine_reading(i))
            assert run.outcome.identified
            assert run.outcome.user_id == expected_id

    def test_impostor_rejected(self, stack, population):
        device, server = stack
        run = run_identification(device, server, DuplexLink(),
                                 population.impostor_reading())
        assert not run.outcome.identified
        assert run.outcome.user_id is None

    def test_phase_timings_present(self, stack, population):
        device, server = stack
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(0))
        assert set(run.timings_s) == {"sketch", "search", "respond", "verify"}
        assert all(t >= 0 for t in run.timings_s.values())

    def test_wire_accounting(self, stack, population, params):
        device, server = stack
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(0))
        # sketch (n*8) + helper (~n*8) dominate the wire cost.
        assert run.wire_bytes > 2 * params.n * 8
        assert run.messages == 4
        assert run.simulated_latency_s > 0

    def test_session_not_replayable(self, stack, population, fast_scheme):
        """A consumed session id must not verify twice."""
        device, server = stack
        bio = population.genuine_reading(0)
        request = device.probe_sketch(bio)
        challenge = server.handle_identification_request(request)
        response = device.respond_identification(
            bio, challenge.helper_data, challenge.challenge,
            challenge.session_id,
        )
        first = server.handle_identification_response(response)
        assert first.identified
        second = server.handle_identification_response(response)
        assert not second.identified


class TestSketchLifecycle:
    def test_rotate_requires_lifecycle_store(self, stack, population):
        """The default in-memory HelperDataStore has no versioning;
        asking it to rotate is a protocol error, not a silent enroll."""
        from repro.exceptions import ProtocolError
        from repro.protocols.messages import RotateRequest

        device, server = stack
        sub = device.enroll("user-0000", population.template(0))
        request = RotateRequest(user_id=sub.user_id,
                                verify_key=sub.verify_key,
                                helper_data=sub.helper_data,
                                supersede=True)
        with pytest.raises(ProtocolError, match="lifecycle"):
            server.handle_rotate(request)

    @pytest.fixture
    def engine_stack(self, params, fast_scheme, population):
        server = AuthenticationServer.with_engine(params, fast_scheme,
                                                  shards=2, seed=b"server")
        device = BiometricDevice(params, fast_scheme, seed=b"device")
        for i, user_id in enumerate(population.user_ids()):
            run = run_enrollment(device, server, DuplexLink(), user_id,
                                 population.template(i))
            assert run.outcome.accepted
        return device, server

    def test_rotate_then_identify_uses_new_sketch(self, engine_stack,
                                                  population):
        from repro.protocols.messages import RotateRequest

        device, server = engine_stack
        sub = device.enroll("user-0000", population.template(0))
        request = RotateRequest(user_id=sub.user_id,
                                verify_key=sub.verify_key,
                                helper_data=sub.helper_data,
                                supersede=True)
        ack = server.handle_rotate(request)
        assert ack.accepted and ack.version_number() == 1
        # Identification still answers through the new active sketch.
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(0))
        assert run.outcome.identified
        assert run.outcome.user_id == "user-0000"

    def test_rotate_resubmission_is_idempotent(self, engine_stack,
                                               population):
        from repro.protocols.messages import RotateRequest

        device, server = engine_stack
        sub = device.enroll("user-0001", population.template(1))
        request = RotateRequest(user_id=sub.user_id,
                                verify_key=sub.verify_key,
                                helper_data=sub.helper_data,
                                supersede=True)
        first = server.handle_rotate(request)
        again = server.handle_rotate(request)  # the lost-ack retry
        assert first.accepted and again.accepted
        assert first.version_number() == again.version_number() == 1
        assert len(server.store.get_versions("user-0001")) == 2
        assert [e.kind for e in server.audit_log("rotate-dedup")]

    def test_rotate_unknown_identity_refused(self, engine_stack,
                                             population):
        from repro.protocols.messages import RotateRequest

        device, server = engine_stack
        sub = device.enroll("stranger", population.impostor_reading())
        ack = server.handle_rotate(RotateRequest(
            user_id=sub.user_id, verify_key=sub.verify_key,
            helper_data=sub.helper_data, supersede=False))
        assert not ack.accepted
        assert ack.version_number() is None

    def test_revoke_takes_identity_out_of_service(self, engine_stack,
                                                  population):
        from repro.protocols.messages import RevokeRequest

        device, server = engine_stack
        ack = server.handle_revoke(RevokeRequest.make("user-0002"))
        assert ack.revoked_count() == 1
        # Idempotent: the retry reports 0 newly revoked, still succeeds.
        assert server.handle_revoke(
            RevokeRequest.make("user-0002")).revoked_count() == 0
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(2))
        assert not run.outcome.identified
        run = run_verification(device, server, DuplexLink(), "user-0002",
                               population.genuine_reading(2))
        assert not run.outcome.verified


class TestBaselineIdentification:
    @pytest.mark.parametrize("pessimistic", [True, False],
                             ids=["paper-model", "optimistic"])
    def test_identifies_each_user(self, stack, population, pessimistic):
        device, server = stack
        for i in (0, 3, 7):
            run = run_baseline_identification(
                device, server, DuplexLink(), population.genuine_reading(i),
                pessimistic=pessimistic,
            )
            assert run.outcome.identified
            assert run.outcome.user_id == population.user_ids()[i]

    def test_impostor_rejected(self, stack, population):
        device, server = stack
        run = run_baseline_identification(device, server, DuplexLink(),
                                          population.impostor_reading())
        assert not run.outcome.identified

    def test_ships_entire_database(self, stack, population, params):
        """Fig. 2's communication cost: all N helper records on the wire."""
        device, server = stack
        run = run_baseline_identification(device, server, DuplexLink(),
                                          population.genuine_reading(0))
        assert run.wire_bytes > 8 * params.n * 8  # 8 users x helper size

    def test_costs_more_than_proposed(self, stack, population):
        device, server = stack
        bio = population.genuine_reading(0)
        proposed = run_identification(device, server, DuplexLink(), bio)
        baseline = run_baseline_identification(device, server, DuplexLink(),
                                               bio)
        assert baseline.compute_time_s > proposed.compute_time_s
        assert baseline.wire_bytes > proposed.wire_bytes


class TestVerification:
    def test_genuine_verified(self, stack, population):
        device, server = stack
        run = run_verification(device, server, DuplexLink(), "user-0004",
                               population.genuine_reading(4))
        assert run.outcome.verified
        assert run.outcome.user_id == "user-0004"

    def test_wrong_biometric_rejected(self, stack, population):
        device, server = stack
        run = run_verification(device, server, DuplexLink(), "user-0004",
                               population.genuine_reading(5))
        assert not run.outcome.verified

    def test_unknown_identity_rejected(self, stack, population):
        device, server = stack
        run = run_verification(device, server, DuplexLink(), "ghost",
                               population.genuine_reading(0))
        assert not run.outcome.verified

    def test_verification_close_to_identification_cost(self, stack,
                                                       population):
        """The paper's headline: identification ~ verification time."""
        device, server = stack
        bio = population.genuine_reading(2)
        ver = run_verification(device, server, DuplexLink(), "user-0002", bio)
        ident = run_identification(device, server, DuplexLink(), bio)
        assert ident.compute_time_s < 5 * max(ver.compute_time_s, 1e-4)


class TestCrossSchemeStack:
    @pytest.mark.parametrize("scheme_name",
                             ["ecdsa-p-256", "schnorr-p-256"])
    def test_identification_with_ec_schemes(self, params, population,
                                            scheme_name):
        from repro.crypto.signatures import get_scheme

        scheme = get_scheme(scheme_name)
        device = BiometricDevice(params, scheme, seed=b"d2")
        server = AuthenticationServer(params, scheme, seed=b"s2")
        for i, user_id in enumerate(population.user_ids()[:3]):
            run_enrollment(device, server, DuplexLink(), user_id,
                           population.template(i))
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(1))
        assert run.outcome.identified
        assert run.outcome.user_id == "user-0001"
