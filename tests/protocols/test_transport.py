"""Tests for the simulated transport layer."""

import pytest

from repro.exceptions import ProtocolError
from repro.protocols.messages import EnrollmentAck, VerificationRequest
from repro.protocols.transport import Channel, DuplexLink, LatencyModel


class TestChannel:
    def test_delivers_equal_message(self):
        channel = Channel(name="test")
        message = VerificationRequest(user_id="zoe")
        delivered = channel.send(message)
        assert delivered == message

    def test_counts_bytes_and_messages(self):
        channel = Channel(name="test")
        message = VerificationRequest(user_id="zoe")
        channel.send(message)
        channel.send(message)
        assert channel.stats.messages == 2
        assert channel.stats.wire_bytes == 2 * len(message.encode())

    def test_latency_accumulates(self):
        channel = Channel(name="test",
                          latency=LatencyModel(base_s=0.001, per_byte_s=0.0))
        channel.send(EnrollmentAck(user_id="a", accepted=True))
        channel.send(EnrollmentAck(user_id="a", accepted=True))
        assert channel.stats.simulated_latency_s == pytest.approx(0.002)

    def test_per_byte_latency(self):
        model = LatencyModel(base_s=0.0, per_byte_s=1e-6)
        assert model.transit_time(1000) == pytest.approx(0.001)

    def test_hook_sees_and_modifies_wire(self):
        channel = Channel(name="test")
        seen = []

        def tap(wire: bytes) -> bytes:
            seen.append(wire)
            return wire

        channel.add_hook(tap)
        message = VerificationRequest(user_id="zoe")
        channel.send(message)
        assert seen == [message.encode()]

    def test_hook_corruption_surfaces_as_protocol_error(self):
        channel = Channel(name="test")
        channel.add_hook(lambda wire: wire[: len(wire) // 2])
        with pytest.raises(ProtocolError):
            channel.send(VerificationRequest(user_id="zoe"))

    def test_hook_must_return_bytes(self):
        channel = Channel(name="test")
        channel.add_hook(lambda wire: None)  # type: ignore[return-value]
        with pytest.raises(ProtocolError, match="must return bytes"):
            channel.send(VerificationRequest(user_id="zoe"))

    def test_clear_hooks(self):
        channel = Channel(name="test")
        channel.add_hook(lambda wire: wire + b"junk")
        channel.clear_hooks()
        assert channel.send(VerificationRequest(user_id="z")) is not None


class TestDuplexLink:
    def test_totals_aggregate_both_directions(self):
        link = DuplexLink()
        link.to_server.send(VerificationRequest(user_id="a"))
        link.to_device.send(EnrollmentAck(user_id="a", accepted=True))
        assert link.total_messages == 2
        assert link.total_bytes > 0
        assert link.simulated_latency_s > 0
