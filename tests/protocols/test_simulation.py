"""Tests for the deployment workload simulator."""

import pytest

from repro.core.params import SystemParams
from repro.protocols.simulation import (
    ClassStats,
    SimulationReport,
    TrafficMix,
    WorkloadSimulator,
)
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def simulator(fast_scheme_module):
    params = SystemParams.paper_defaults(n=200)
    return WorkloadSimulator(params, fast_scheme_module, n_users=6, seed=9)


@pytest.fixture(scope="module")
def fast_scheme_module():
    from repro.crypto.dsa import Dsa
    from repro.crypto.dsa_groups import GROUP_512

    return Dsa(GROUP_512)


class TestTrafficMix:
    def test_default_sums_to_one(self):
        TrafficMix()  # must not raise

    def test_rejects_bad_sum(self):
        with pytest.raises(ParameterError, match="sums to"):
            TrafficMix(genuine=0.5, stranger=0.1, noisy_genuine=0.1)

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            TrafficMix(genuine=1.2, stranger=-0.2, noisy_genuine=0.0)


class TestSimulator:
    def test_deterministic_given_seed(self, fast_scheme_module):
        params = SystemParams.paper_defaults(n=200)
        r1 = WorkloadSimulator(params, fast_scheme_module, n_users=4,
                               seed=3).run(20)
        r2 = WorkloadSimulator(params, fast_scheme_module, n_users=4,
                               seed=3).run(20)
        for klass in r1.per_class:
            assert r1.per_class[klass].requests == r2.per_class[klass].requests
            assert r1.per_class[klass].identified == \
                r2.per_class[klass].identified

    def test_genuine_traffic_accepted(self, simulator):
        report = simulator.run(40)
        genuine = report.per_class["genuine"]
        assert genuine.requests > 0
        assert genuine.identified == genuine.requests

    def test_strangers_rejected(self, fast_scheme_module):
        params = SystemParams.paper_defaults(n=200)
        sim = WorkloadSimulator(
            params, fast_scheme_module, n_users=4,
            mix=TrafficMix(genuine=0.0, stranger=1.0, noisy_genuine=0.0),
            seed=5,
        )
        report = sim.run(15)
        strangers = report.per_class["stranger"]
        assert strangers.requests == 15
        assert strangers.identified == 0

    def test_noisy_genuine_mostly_rejected(self, fast_scheme_module):
        params = SystemParams.paper_defaults(n=200)
        sim = WorkloadSimulator(
            params, fast_scheme_module, n_users=4,
            mix=TrafficMix(genuine=0.0, stranger=0.0, noisy_genuine=1.0),
            seed=6,
        )
        report = sim.run(10)
        noisy = report.per_class["noisy_genuine"]
        assert noisy.requests == 10
        # The burst pushes coordinates beyond t: identification must fail.
        assert noisy.identified == 0

    def test_report_aggregates(self, simulator):
        report = simulator.run(25)
        assert report.n_requests == 25
        assert report.total_wire_bytes > 0
        assert report.throughput_rps > 0
        assert sum(s.requests for s in report.per_class.values()) == 25

    def test_summary_lines_render(self, simulator):
        report = simulator.run(10)
        lines = report.summary_lines()
        assert any("throughput" in line for line in lines)
        assert any("genuine" in line for line in lines)

    def test_rejects_zero_requests(self, simulator):
        with pytest.raises(ParameterError):
            simulator.run(0)

    def test_rejects_empty_population(self, fast_scheme_module):
        with pytest.raises(ParameterError):
            WorkloadSimulator(SystemParams.paper_defaults(n=100),
                              fast_scheme_module, n_users=0)


class TestClassStats:
    def test_percentile_empty_is_nan(self):
        import math

        assert math.isnan(ClassStats().percentile(50))

    def test_percentile_values(self):
        stats = ClassStats(latencies_ms=[1.0, 2.0, 3.0, 4.0])
        assert stats.percentile(50) == pytest.approx(2.5)
