"""Tests for multi-candidate identification (false-close resolution).

Theorem 2's discussion admits that sketch matching can (with negligible
probability at paper parameters) return several candidates; the protocol
resolves the ambiguity cryptographically by challenging candidates in
order.  These tests force the multiple-match situation deterministically
(duplicate templates / tampered first candidates) and check the fall-
through behaviour end to end.
"""

import numpy as np
import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.protocols.adversary import tamper_stored_helper
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import (
    IdentificationChallenge,
    IdentificationDecline,
    IdentificationOutcome,
)
from repro.protocols.runners import run_enrollment, run_identification
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink


@pytest.fixture
def params():
    return SystemParams.paper_defaults(n=150)


@pytest.fixture
def twin_stack(params, fast_scheme):
    """Two users enrolled from the *same* template (identical twins /
    duplicate registration): every probe of that template matches both."""
    population = UserPopulation(params, size=1,
                                noise=BoundedUniformNoise(params.t), seed=77)
    device = BiometricDevice(params, fast_scheme, seed=b"twin-device")
    server = AuthenticationServer(params, fast_scheme, seed=b"twin-server")
    template = population.template(0)
    for user_id in ("twin-a", "twin-b"):
        run = run_enrollment(device, server, DuplexLink(), user_id, template)
        assert run.outcome.accepted
    return device, server, population, template


class TestFallThrough:
    def test_first_candidate_tampered_second_succeeds(self, twin_stack):
        """Insider corrupts twin-a's record; twin-b must still be
        identified via the decline fall-through."""
        device, server, population, template = twin_stack
        tamper_stored_helper(server.store, "twin-a", coordinate=0, delta=1)
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(0))
        assert run.outcome.identified
        assert run.outcome.user_id == "twin-b"
        # The loop cost two challenge rounds: 1 decline + 1 response.
        assert run.messages > 4

    def test_both_tampered_fails_closed(self, twin_stack):
        device, server, population, _ = twin_stack
        tamper_stored_helper(server.store, "twin-a")
        tamper_stored_helper(server.store, "twin-b")
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(0))
        assert not run.outcome.identified

    def test_healthy_first_candidate_short_circuits(self, twin_stack):
        """No tampering: the first candidate answers and no fall-through
        round occurs (message count = the 4-message happy path)."""
        device, server, population, _ = twin_stack
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(0))
        assert run.outcome.identified
        assert run.outcome.user_id == "twin-a"
        assert run.messages == 4


class TestServerCandidateQueue:
    def test_decline_advances_to_next_candidate(self, twin_stack):
        device, server, population, _ = twin_stack
        probe = device.probe_sketch(population.genuine_reading(0))
        reply = server.handle_identification_request(probe)
        assert isinstance(reply, IdentificationChallenge)
        follow_up = server.handle_identification_decline(
            IdentificationDecline(session_id=reply.session_id)
        )
        assert isinstance(follow_up, IdentificationChallenge)
        assert follow_up.session_id != reply.session_id

    def test_decline_on_last_candidate_returns_bottom(self, twin_stack):
        device, server, population, _ = twin_stack
        probe = device.probe_sketch(population.genuine_reading(0))
        reply = server.handle_identification_request(probe)
        second = server.handle_identification_decline(
            IdentificationDecline(session_id=reply.session_id))
        final = server.handle_identification_decline(
            IdentificationDecline(session_id=second.session_id))
        assert isinstance(final, IdentificationOutcome)
        assert not final.identified

    def test_decline_with_unknown_session_is_bottom(self, twin_stack):
        _, server, _, _ = twin_stack
        outcome = server.handle_identification_decline(
            IdentificationDecline(session_id=b"\x00" * 16)
        )
        assert isinstance(outcome, IdentificationOutcome)
        assert not outcome.identified

    def test_decline_consumes_session(self, twin_stack):
        """A declined session id must not be reusable (replay surface)."""
        device, server, population, _ = twin_stack
        probe = device.probe_sketch(population.genuine_reading(0))
        reply = server.handle_identification_request(probe)
        server.handle_identification_decline(
            IdentificationDecline(session_id=reply.session_id))
        again = server.handle_identification_decline(
            IdentificationDecline(session_id=reply.session_id))
        assert isinstance(again, IdentificationOutcome)
        assert not again.identified

    def test_max_candidates_caps_queue(self, params, fast_scheme):
        population = UserPopulation(params, size=1,
                                    noise=BoundedUniformNoise(params.t),
                                    seed=5)
        device = BiometricDevice(params, fast_scheme, seed=b"cap-d")
        server = AuthenticationServer(params, fast_scheme, seed=b"cap-s",
                                      max_candidates=2)
        template = population.template(0)
        for i in range(4):  # four identical enrollments
            run_enrollment(device, server, DuplexLink(), f"clone-{i}",
                           template)
        for user_id in ("clone-0", "clone-1", "clone-2", "clone-3"):
            tamper_stored_helper(server.store, user_id)
        # All four match; only two may be challenged; all tampered -> ⊥
        # after exactly 2 declines.
        run = run_identification(device, server, DuplexLink(),
                                 population.genuine_reading(0))
        assert not run.outcome.identified
        # 1 request + 1 challenge + 2x(decline + follow-up) = 6 messages.
        assert run.messages == 6

    def test_rejects_zero_max_candidates(self, params, fast_scheme):
        with pytest.raises(ValueError):
            AuthenticationServer(params, fast_scheme, max_candidates=0)
