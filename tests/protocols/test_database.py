"""Tests for the helper-data store."""

import numpy as np
import pytest

from repro.core.extractor import SuccinctFuzzyExtractor
from repro.core.index import PrefixBucketIndex
from repro.crypto.prng import HmacDrbg
from repro.exceptions import EnrollmentError
from repro.protocols.database import HelperDataStore, UserRecord


def _record(fe, rng, user_id, drbg_seed=b"r"):
    x = fe.sketcher.line.uniform_vector(rng)
    _, helper = fe.generate(x, HmacDrbg(drbg_seed + user_id.encode()))
    return x, UserRecord(user_id=user_id, verify_key=b"\x02" * 33,
                         helper_data=helper.to_bytes())


class TestStore:
    @pytest.fixture
    def fe(self, paper_params):
        return SuccinctFuzzyExtractor(paper_params)

    def test_add_and_get(self, fe, paper_params, rng):
        store = HelperDataStore(paper_params)
        _, record = _record(fe, rng, "alice")
        store.add(record)
        assert store.get("alice") == record
        assert store.get("bob") is None
        assert len(store) == 1

    def test_duplicate_rejected(self, fe, paper_params, rng):
        store = HelperDataStore(paper_params)
        _, record = _record(fe, rng, "alice")
        store.add(record)
        with pytest.raises(EnrollmentError, match="already enrolled"):
            store.add(record)

    def test_find_by_sketch(self, fe, paper_params, rng):
        store = HelperDataStore(paper_params)
        templates = {}
        for name in ("alice", "bob", "carol"):
            x, record = _record(fe, rng, name)
            templates[name] = x
            store.add(record)
        noisy = fe.sketcher.line.reduce(
            templates["bob"] + rng.integers(
                -paper_params.t, paper_params.t + 1, paper_params.n)
        )
        probe = fe.sketcher.sketch(noisy, HmacDrbg(b"probe"))
        found = store.find_by_sketch(probe)
        assert [r.user_id for r in found] == ["bob"]

    def test_find_unknown_returns_empty(self, fe, paper_params, rng):
        store = HelperDataStore(paper_params)
        x, record = _record(fe, rng, "alice")
        store.add(record)
        probe = fe.sketcher.sketch(
            fe.sketcher.line.uniform_vector(rng), HmacDrbg(b"imp")
        )
        assert store.find_by_sketch(probe) == []

    def test_custom_index_factory(self, fe, paper_params, rng):
        store = HelperDataStore(
            paper_params,
            index_factory=lambda p: PrefixBucketIndex(p, depth=4),
        )
        x, record = _record(fe, rng, "alice")
        store.add(record)
        probe = fe.sketcher.sketch(x, HmacDrbg(b"p"))
        assert [r.user_id for r in store.find_by_sketch(probe)] == ["alice"]

    def test_iteration_order_is_enrollment_order(self, fe, paper_params, rng):
        store = HelperDataStore(paper_params)
        for name in ("u1", "u2", "u3"):
            store.add(_record(fe, rng, name)[1])
        assert [r.user_id for r in store] == ["u1", "u2", "u3"]
        assert [r.user_id for r in store.all_records()] == ["u1", "u2", "u3"]

    def test_replace_helper(self, fe, paper_params, rng):
        store = HelperDataStore(paper_params)
        _, record = _record(fe, rng, "alice")
        store.add(record)
        store.replace_helper("alice", b"\x00" * 8)
        assert store.get("alice").helper_data == b"\x00" * 8

    def test_replace_helper_unknown_user(self, fe, paper_params):
        store = HelperDataStore(paper_params)
        with pytest.raises(EnrollmentError, match="not enrolled"):
            store.replace_helper("ghost", b"")

    def test_record_helper_parses(self, fe, paper_params, rng):
        _, record = _record(fe, rng, "alice")
        helper = record.helper()
        assert helper.movements.shape == (paper_params.n,)
