"""Tests for store persistence and SystemParams serialisation."""

import numpy as np
import pytest

from repro.core.extractor import SuccinctFuzzyExtractor
from repro.core.index import VectorizedScanIndex
from repro.core.params import SystemParams
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError
from repro.protocols.database import HelperDataStore, UserRecord


class TestParamsSerialisation:
    def test_dict_roundtrip(self):
        params = SystemParams.paper_defaults(n=321)
        assert SystemParams.from_dict(params.to_dict()) == params

    def test_json_roundtrip(self):
        params = SystemParams(a=7, k=6, v=12, t=20, n=44)
        assert SystemParams.from_json(params.to_json()) == params

    def test_rejects_unknown_keys(self):
        with pytest.raises(ParameterError, match="unknown"):
            SystemParams.from_dict({"a": 1, "k": 2, "v": 3, "t": 1, "n": 1,
                                    "zz": 9})

    def test_rejects_missing_keys(self):
        with pytest.raises(ParameterError, match="missing"):
            SystemParams.from_dict({"a": 1, "k": 2})

    def test_rejects_malformed_json(self):
        with pytest.raises(ParameterError, match="malformed"):
            SystemParams.from_json("{not json")

    def test_rejects_non_object_json(self):
        with pytest.raises(ParameterError, match="object"):
            SystemParams.from_json("[1, 2, 3]")

    def test_invalid_values_still_validated(self):
        with pytest.raises(ParameterError):
            SystemParams.from_dict({"a": 100, "k": 3, "v": 10, "t": 1,
                                    "n": 4})


class TestStorePersistence:
    @pytest.fixture
    def populated_store(self, paper_params, rng):
        fe = SuccinctFuzzyExtractor(paper_params)
        store = HelperDataStore(paper_params)
        templates = {}
        for name in ("alice", "bob", "carol"):
            x = fe.sketcher.line.uniform_vector(rng)
            _, helper = fe.generate(x, HmacDrbg(name.encode()))
            templates[name] = x
            store.add(UserRecord(user_id=name,
                                 verify_key=name.encode() * 4,
                                 helper_data=helper.to_bytes()))
        return store, templates, fe

    def test_roundtrip_preserves_records(self, populated_store, tmp_path):
        store, _, _ = populated_store
        path = tmp_path / "store.jsonl"
        store.save(path)
        loaded = HelperDataStore.load(path)
        assert len(loaded) == len(store)
        for original, restored in zip(store, loaded):
            assert original == restored

    def test_roundtrip_preserves_search(self, populated_store, tmp_path,
                                        paper_params, rng):
        store, templates, fe = populated_store
        path = tmp_path / "store.jsonl"
        store.save(path)
        loaded = HelperDataStore.load(path)
        noisy = fe.sketcher.line.reduce(
            templates["bob"] + rng.integers(
                -paper_params.t, paper_params.t + 1, paper_params.n)
        )
        probe = fe.sketcher.sketch(noisy, HmacDrbg(b"probe"))
        assert [r.user_id for r in loaded.find_by_sketch(probe)] == ["bob"]

    def test_roundtrip_preserves_params(self, populated_store, tmp_path):
        store, _, _ = populated_store
        path = tmp_path / "store.jsonl"
        store.save(path)
        assert HelperDataStore.load(path).params == store.params

    def test_empty_store_roundtrip(self, paper_params, tmp_path):
        store = HelperDataStore(paper_params)
        path = tmp_path / "empty.jsonl"
        store.save(path)
        assert len(HelperDataStore.load(path)) == 0

    def test_save_is_atomic_under_midwrite_failure(self, populated_store,
                                                   tmp_path):
        """A save that dies mid-write must leave the previous file intact
        and no temp debris behind."""
        store, _, _ = populated_store
        path = tmp_path / "store.jsonl"
        store.save(path)
        good = path.read_bytes()
        # A non-bytes verify key makes b64encode explode while this
        # record's line is serialised — after the header already went out.
        store._records.append(UserRecord(
            user_id="broken", verify_key=None, helper_data=b"hd"))
        with pytest.raises(TypeError):
            store.save(path)
        assert path.read_bytes() == good  # old store untouched
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(HelperDataStore.load(path)) == 3

    def test_bulk_load_uses_one_index_write(self, populated_store, tmp_path):
        """load() goes through add_many: one bulk index insertion."""
        calls = []

        class CountingIndex:
            def __init__(self, params):
                self._inner = VectorizedScanIndex(params)

            def add_many(self, sketches):
                calls.append(len(sketches))
                return self._inner.add_many(sketches)

            def add(self, sketch):
                raise AssertionError("load() must not add row-by-row")

            def search(self, probe):
                return self._inner.search(probe)

        store, _, _ = populated_store
        path = tmp_path / "store.jsonl"
        store.save(path)
        loaded = HelperDataStore.load(path, index_factory=CountingIndex)
        assert len(loaded) == 3
        assert calls == [3]

    def test_truncated_file_rejected(self, populated_store, tmp_path):
        store, _, _ = populated_store
        path = tmp_path / "store.jsonl"
        store.save(path)
        content = path.read_text().splitlines()
        path.write_text("\n".join(content[:-1]) + "\n")  # drop a record
        with pytest.raises(ParameterError, match="count mismatch"):
            HelperDataStore.load(path)

    def test_corrupt_record_rejected(self, populated_store, tmp_path):
        store, _, _ = populated_store
        path = tmp_path / "store.jsonl"
        store.save(path)
        lines = path.read_text().splitlines()
        lines[1] = '{"user_id": "x"}'  # missing fields
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ParameterError, match="malformed record"):
            HelperDataStore.load(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(ParameterError, match="header"):
            HelperDataStore.load(path)

    def test_wrong_format_version_rejected(self, paper_params, tmp_path):
        import json

        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({
            "format": 99, "params": paper_params.to_dict(), "records": 0,
        }) + "\n")
        with pytest.raises(ParameterError, match="unsupported"):
            HelperDataStore.load(path)

    def test_server_restart_flow(self, populated_store, tmp_path,
                                 paper_params, fast_scheme, rng):
        """Full restart: save, reload into a new server, identify."""
        from repro.protocols.device import BiometricDevice
        from repro.protocols.runners import run_identification
        from repro.protocols.server import AuthenticationServer
        from repro.protocols.transport import DuplexLink

        store, templates, fe = populated_store
        # Real keys for one user so the challenge-response completes.
        secret, helper = fe.generate(templates["alice"], HmacDrbg(b"alice"))
        keypair = fast_scheme.keygen_from_seed(secret)
        store.replace_helper("alice", helper.to_bytes())
        store._records[store._by_id["alice"]] = UserRecord(
            user_id="alice", verify_key=keypair.verify_key,
            helper_data=helper.to_bytes(),
        )
        path = tmp_path / "store.jsonl"
        store.save(path)

        restarted = AuthenticationServer(
            paper_params, fast_scheme,
            store=HelperDataStore.load(path), seed=b"restarted",
        )
        device = BiometricDevice(paper_params, fast_scheme, seed=b"dev")
        noisy = fe.sketcher.line.reduce(
            templates["alice"] + rng.integers(
                -paper_params.t, paper_params.t + 1, paper_params.n))
        run = run_identification(device, restarted, DuplexLink(), noisy)
        assert run.outcome.identified and run.outcome.user_id == "alice"
