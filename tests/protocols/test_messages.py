"""Tests for protocol message encoding/decoding."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocols.messages import (
    BaselineChallengeBatch,
    BaselineIdentificationRequest,
    BaselineResponseBatch,
    EnrollmentAck,
    EnrollmentSubmission,
    IdentificationChallenge,
    IdentificationOutcome,
    IdentificationRequest,
    IdentificationResponse,
    Message,
    VerificationOutcome,
    VerificationRequest,
)

ROUNDTRIP_CASES = [
    EnrollmentSubmission(user_id="alice", verify_key=b"\x02" * 33,
                         helper_data=b"helper-bytes"),
    EnrollmentAck(user_id="alice", accepted=True),
    EnrollmentAck(user_id="bob", accepted=False),
    IdentificationRequest(sketch=np.array([1, -2, 200, -200], dtype=np.int64)),
    IdentificationChallenge(helper_data=b"P", challenge=b"c" * 16,
                            session_id=b"s" * 16),
    IdentificationResponse(session_id=b"s" * 16, signature=b"sig",
                           nonce=b"n" * 16),
    IdentificationOutcome(identified=True, user_id="carol"),
    IdentificationOutcome(identified=False, user_id=None),
    VerificationRequest(user_id="dave"),
    VerificationOutcome(verified=False, user_id="dave"),
    BaselineIdentificationRequest(request=b"identify"),
    BaselineResponseBatch(session_id=b"s" * 16,
                          signatures=BaselineChallengeBatch.pack_list(
                              [b"sig1", b"", b"sig3"]),
                          nonce=b"n" * 16),
]


@pytest.mark.parametrize("message", ROUNDTRIP_CASES,
                         ids=lambda m: type(m).__name__)
class TestRoundTrip:
    def test_roundtrip_via_base(self, message):
        decoded = Message.decode(message.encode())
        assert type(decoded) is type(message)
        for field_name in message.__dataclass_fields__:
            original = getattr(message, field_name)
            restored = getattr(decoded, field_name)
            if isinstance(original, np.ndarray):
                assert np.array_equal(original, restored)
            else:
                assert original == restored

    def test_roundtrip_via_subclass(self, message):
        assert type(message).decode(message.encode()) is not None


class TestDecodingErrors:
    def test_unknown_tag(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            Message.decode(b"\xff\xff" + b"x" * 10)

    def test_short_frame(self):
        with pytest.raises(ProtocolError, match="shorter"):
            Message.decode(b"\x00")

    def test_wrong_expected_type(self):
        encoded = EnrollmentAck(user_id="x", accepted=True).encode()
        with pytest.raises(ProtocolError, match="expected"):
            IdentificationRequest.decode(encoded)

    def test_truncated_chunk(self):
        encoded = VerificationRequest(user_id="frank").encode()
        with pytest.raises(ProtocolError):
            Message.decode(encoded[:-2])

    def test_missing_field_chunk(self):
        # Type tag of IdentificationChallenge (3 fields) with one chunk.
        frame = (4).to_bytes(2, "big") + (1).to_bytes(8, "big") + b"x"
        with pytest.raises(ProtocolError, match="chunks"):
            Message.decode(frame)


class TestPackedLists:
    def test_roundtrip(self):
        items = [b"", b"a", b"bb" * 100]
        packed = BaselineChallengeBatch.pack_list(items)
        assert BaselineChallengeBatch.unpack_list(packed) == items

    def test_empty_list(self):
        assert BaselineChallengeBatch.unpack_list(
            BaselineChallengeBatch.pack_list([])
        ) == []

    def test_truncated_rejected(self):
        packed = BaselineChallengeBatch.pack_list([b"abc"])
        with pytest.raises(ProtocolError):
            BaselineChallengeBatch.unpack_list(packed[:-1])


class TestSketchVector:
    def test_large_sketch_roundtrip(self):
        sketch = np.arange(-2500, 2500, dtype=np.int64)
        msg = IdentificationRequest(sketch=sketch)
        decoded = IdentificationRequest.decode(msg.encode())
        assert np.array_equal(decoded.sketch, sketch)

    def test_wire_size_is_linear_in_dimension(self):
        small = IdentificationRequest(sketch=np.zeros(10, dtype=np.int64))
        large = IdentificationRequest(sketch=np.zeros(1000, dtype=np.int64))
        overhead = len(small.encode()) - 10 * 8
        assert len(large.encode()) == 1000 * 8 + overhead
