"""Wire-tamper fuzzing over every registered message type.

The decode contract (module docstring of :mod:`repro.protocols.messages`)
says malformed wire data raises :class:`ProtocolError` — nothing else.
A network server's read loop leans on exactly that: any byte flip,
truncation, or hostile chunk length an active adversary produces must
surface as the one exception type the loop catches, never as
``UnicodeDecodeError`` / ``ValueError`` / ``IndexError`` escaping from a
field decoder.  These tests fuzz the real encodings of *every* type in
the registry, so a newly registered message is covered automatically.
"""

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.protocols.messages import (
    BaselineChallengeBatch,
    BaselineIdentificationRequest,
    BaselineResponseBatch,
    DeadlineEnvelope,
    EnrollmentAck,
    EnrollmentSubmission,
    ErrorReply,
    HealthReply,
    HealthRequest,
    IdentificationChallenge,
    IdentificationDecline,
    IdentificationOutcome,
    IdentificationRequest,
    IdentificationResponse,
    Message,
    ReplicateRecords,
    ReplicateSubscribe,
    RevokeAck,
    RevokeRequest,
    RotateAck,
    RotateRequest,
    StatsReply,
    StatsRequest,
    TracedEnvelope,
    VerificationChallenge,
    VerificationOutcome,
    VerificationRequest,
    VerificationResponse,
    _pack_chunks,
    registered_message_types,
)

#: One representative instance per registered type.  The completeness
#: test below fails if a new message type lands without a sample here.
SAMPLES = {
    EnrollmentSubmission: EnrollmentSubmission(
        user_id="alice", verify_key=b"\x02" * 33, helper_data=b"helper"),
    EnrollmentAck: EnrollmentAck(user_id="alice", accepted=True),
    IdentificationRequest: IdentificationRequest(
        sketch=np.array([5, -7, 200, -200, 0], dtype=np.int64)),
    IdentificationChallenge: IdentificationChallenge(
        helper_data=b"P" * 40, challenge=b"c" * 16, session_id=b"s" * 16),
    IdentificationResponse: IdentificationResponse(
        session_id=b"s" * 16, signature=b"sig" * 10, nonce=b"n" * 16),
    IdentificationOutcome: IdentificationOutcome(
        identified=True, user_id="carol"),
    IdentificationDecline: IdentificationDecline(session_id=b"s" * 16),
    VerificationRequest: VerificationRequest(user_id="dave"),
    VerificationChallenge: VerificationChallenge(
        helper_data=b"P" * 40, challenge=b"c" * 16, session_id=b"s" * 16),
    VerificationResponse: VerificationResponse(
        session_id=b"s" * 16, signature=b"sig" * 10, nonce=b"n" * 16),
    VerificationOutcome: VerificationOutcome(verified=False, user_id="dave"),
    BaselineIdentificationRequest: BaselineIdentificationRequest(
        request=b"identify"),
    BaselineChallengeBatch: BaselineChallengeBatch(
        user_ids=BaselineChallengeBatch.pack_list([b"u1", b"u2"]),
        helper_blobs=BaselineChallengeBatch.pack_list([b"P1", b"P2"]),
        challenge=BaselineChallengeBatch.pack_list([b"c" * 16] * 2),
        session_id=b"s" * 16),
    BaselineResponseBatch: BaselineResponseBatch(
        session_id=b"s" * 16,
        signatures=BaselineChallengeBatch.pack_list([b"sig1", b""]),
        nonce=b"n" * 16),
    ErrorReply: ErrorReply.make(code="overload", detail="queue full",
                                retry_after_ms=120),
    TracedEnvelope: TracedEnvelope(
        trace_id=b"t" * 16,
        body=VerificationRequest(user_id="dave").encode()),
    DeadlineEnvelope: DeadlineEnvelope.wrap(
        VerificationRequest(user_id="dave"), budget_ms=750),
    StatsRequest: StatsRequest.make("all", limit=25),
    StatsReply: StatsReply(payload='{"metrics": [], "traces": []}'),
    ReplicateSubscribe: ReplicateSubscribe.make(from_seq=7, max_entries=64),
    ReplicateRecords: ReplicateRecords.make(
        from_seq=7, head_seq=9, payloads=[b"rec-7", b"rec-8"]),
    HealthRequest: HealthRequest(probe=b"health"),
    HealthReply: HealthReply(payload='{"alive": true, "ready": true}'),
    RotateRequest: RotateRequest(
        user_id="alice", verify_key=b"\x03" * 33, helper_data=b"helper-v2",
        supersede=True),
    RotateAck: RotateAck.make(user_id="alice", accepted=True, version=2),
    RevokeRequest: RevokeRequest.make(user_id="alice", version=None),
    RevokeAck: RevokeAck.make(user_id="alice", revoked=3),
}

ALL_TYPES = sorted(registered_message_types().values(),
                   key=lambda cls: cls.TYPE_TAG)

#: Exceptions that must never escape the decoder.
FORBIDDEN = (UnicodeDecodeError, IndexError, KeyError, TypeError,
             OverflowError, np.exceptions.AxisError)


def _decode_must_not_leak(data: bytes) -> None:
    """Decode may succeed or raise ProtocolError; anything else fails."""
    try:
        Message.decode(data)
    except ProtocolError:
        pass  # the contract: malformed wire data -> ProtocolError
    # A ValueError that is not a ProtocolError is exactly the leak the
    # hardening closed (decode_int_vector, int.from_bytes, ...).
    except FORBIDDEN as exc:  # pragma: no cover - failure path
        pytest.fail(f"decoder leaked {type(exc).__name__}: {exc}")
    except ValueError as exc:  # pragma: no cover - failure path
        pytest.fail(f"decoder leaked bare ValueError: {exc}")


def test_every_registered_type_has_a_sample():
    missing = [cls.__name__ for cls in ALL_TYPES if cls not in SAMPLES]
    assert not missing, f"add fuzz samples for: {missing}"


@pytest.mark.parametrize("cls", ALL_TYPES, ids=lambda c: c.__name__)
class TestRoundTripParity:
    def test_encode_decode_identity(self, cls):
        message = SAMPLES[cls]
        decoded = Message.decode(message.encode())
        assert type(decoded) is cls
        for name in message.__dataclass_fields__:
            original, restored = (getattr(message, name),
                                  getattr(decoded, name))
            if isinstance(original, np.ndarray):
                assert np.array_equal(original, restored)
            else:
                assert original == restored

    def test_encode_buffers_concatenate_to_encode(self, cls):
        # The gathered-write path must produce byte-identical frames.
        message = SAMPLES[cls]
        assert b"".join(message.encode_buffers()) == message.encode()

    def test_subclass_decode_enforces_tag(self, cls):
        other = next(t for t in ALL_TYPES if t is not cls)
        with pytest.raises(ProtocolError, match="expected"):
            cls.decode(SAMPLES[other].encode())


@pytest.mark.parametrize("cls", ALL_TYPES, ids=lambda c: c.__name__)
class TestTamperFuzz:
    def test_single_byte_flips(self, cls):
        wire = bytearray(SAMPLES[cls].encode())
        rng = np.random.default_rng(cls.TYPE_TAG)
        positions = range(len(wire)) if len(wire) <= 256 else \
            rng.integers(0, len(wire), size=256)
        for pos in positions:
            flipped = bytearray(wire)
            flipped[pos] ^= int(rng.integers(1, 256))
            _decode_must_not_leak(bytes(flipped))

    def test_truncations(self, cls):
        wire = SAMPLES[cls].encode()
        cuts = range(len(wire)) if len(wire) <= 128 else \
            np.random.default_rng(cls.TYPE_TAG).integers(
                0, len(wire), size=128)
        for cut in cuts:
            _decode_must_not_leak(wire[:cut])

    def test_random_garbage_with_valid_tag(self, cls):
        rng = np.random.default_rng(1000 + cls.TYPE_TAG)
        tag = cls.TYPE_TAG.to_bytes(2, "big")
        for size in (0, 1, 7, 8, 9, 64, 257):
            for _ in range(8):
                _decode_must_not_leak(tag + rng.bytes(size))

    def test_oversized_chunk_length(self, cls):
        # A chunk header claiming far more bytes than the frame carries.
        tag = cls.TYPE_TAG.to_bytes(2, "big")
        _decode_must_not_leak(tag + (2**62).to_bytes(8, "big") + b"xx")
        _decode_must_not_leak(tag + (2**63 + 17).to_bytes(8, "big"))


class TestStrictBool:
    """The bool satellite: only ``b\"\\x00\"`` / ``b\"\\x01\"`` decode."""

    def _ack_frame(self, accepted_chunk: bytes) -> bytes:
        return EnrollmentAck.TYPE_TAG.to_bytes(2, "big") + _pack_chunks(
            [b"alice", accepted_chunk])

    def test_canonical_values_round_trip(self):
        assert Message.decode(self._ack_frame(b"\x01")).accepted is True
        assert Message.decode(self._ack_frame(b"\x00")).accepted is False

    @pytest.mark.parametrize("chunk", [b"\x02", b"\xff", b"", b"\x01\x00",
                                       b"\x00\x00", b"true"])
    def test_tampered_bool_rejected(self, chunk):
        with pytest.raises(ProtocolError, match="bool"):
            Message.decode(self._ack_frame(chunk))

    def test_tampered_bool_rejected_via_subclass(self):
        with pytest.raises(ProtocolError, match="bool"):
            EnrollmentAck.decode(self._ack_frame(b"\x02"))


class TestFieldErrorWrapping:
    """The leak satellites: UTF-8 and int-vector failures wrap cleanly."""

    def test_invalid_utf8_str_field(self):
        frame = VerificationRequest.TYPE_TAG.to_bytes(2, "big") + \
            _pack_chunks([b"\xff\xfe\x80"])
        with pytest.raises(ProtocolError, match="malformed field"):
            Message.decode(frame)

    def test_invalid_utf8_optional_str_field(self):
        frame = IdentificationOutcome.TYPE_TAG.to_bytes(2, "big") + \
            _pack_chunks([b"\x01", b"\x80\x80"])
        with pytest.raises(ProtocolError, match="malformed field"):
            Message.decode(frame)

    def test_ragged_int_vector_chunk(self):
        # 13 bytes is not a multiple of the 8-byte coordinate width.
        frame = IdentificationRequest.TYPE_TAG.to_bytes(2, "big") + \
            _pack_chunks([b"\x00" * 13])
        with pytest.raises(ProtocolError, match="malformed field"):
            Message.decode(frame)

    def test_protocol_error_not_double_wrapped(self):
        frame = EnrollmentAck.TYPE_TAG.to_bytes(2, "big") + \
            _pack_chunks([b"x", b"\x07"])
        with pytest.raises(ProtocolError) as excinfo:
            Message.decode(frame)
        assert "malformed field" not in str(excinfo.value)
