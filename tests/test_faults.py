"""The deterministic fault-injection harness itself."""

import time

import pytest

from repro import faults
from repro.exceptions import SimulatedCrashError, SimulatedFaultError
from repro.faults import FaultInjector, FaultRule


@pytest.fixture(autouse=True)
def _isolated_module_injector():
    """Tests touching the module-level singleton must leave it clean."""
    faults.clear()
    yield
    faults.clear()


class TestRuleValidation:
    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError, match="unknown fault style"):
            FaultRule("x", style="explode")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("x", p=1.5)

    def test_dict_rules_coerced(self):
        injector = FaultInjector()
        injector.install([{"point": "a", "style": "raise"}])
        with pytest.raises(SimulatedFaultError):
            injector.fire("a")


class TestFiringSemantics:
    def test_disabled_is_a_noop(self):
        injector = FaultInjector()
        assert injector.fire("anything") is None
        assert injector.decide("anything") is None
        assert not injector.enabled

    def test_styles_raise_and_crash(self):
        injector = FaultInjector()
        injector.install([FaultRule("a", style="raise"),
                          FaultRule("b", style="crash")])
        with pytest.raises(SimulatedFaultError):
            injector.fire("a")
        with pytest.raises(SimulatedCrashError):
            injector.fire("b")
        assert injector.fired() == 2

    def test_after_skips_warmup_calls(self):
        injector = FaultInjector()
        injector.install([FaultRule("a", style="drop", after=2)])
        assert injector.decide("a") is None
        assert injector.decide("a") is None
        assert injector.decide("a") is not None

    def test_times_caps_total_fires(self):
        injector = FaultInjector()
        injector.install([FaultRule("a", style="drop", times=2)])
        fired = [injector.decide("a") for _ in range(5)]
        assert sum(rule is not None for rule in fired) == 2
        assert injector.fired("a") == 2

    def test_probabilistic_rules_are_seed_deterministic(self):
        def pattern(seed):
            injector = FaultInjector()
            injector.install([FaultRule("a", style="drop", p=0.5)],
                             seed=seed)
            return [injector.decide("a") is not None for _ in range(64)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        # And the rate is actually probabilistic, not all-or-nothing.
        assert 0 < sum(pattern(7)) < 64

    def test_delay_style_sleeps_in_fire_not_decide(self):
        injector = FaultInjector()
        injector.install([FaultRule("a", style="delay", delay_s=0.05)])
        start = time.monotonic()
        rule = injector.decide("a")
        assert time.monotonic() - start < 0.04  # decide never sleeps
        assert rule is not None and rule.delay_s == 0.05
        injector.install([FaultRule("a", style="delay", delay_s=0.05)])
        start = time.monotonic()
        injector.fire("a")
        assert time.monotonic() - start >= 0.05

    def test_install_replaces_and_clear_disables(self):
        faults.install([FaultRule("a", style="drop")])
        assert faults.decide("a") is not None
        faults.install([FaultRule("b", style="drop")])
        assert faults.decide("a") is None  # old plan fully replaced
        assert faults.decide("b") is not None
        faults.clear()
        assert faults.decide("b") is None

    def test_multiple_rules_per_point_first_match_wins(self):
        injector = FaultInjector()
        injector.install([FaultRule("a", style="drop", times=1),
                          FaultRule("a", style="truncate")])
        assert injector.decide("a").style == "drop"
        assert injector.decide("a").style == "truncate"
        assert injector.fired("a") == 2
