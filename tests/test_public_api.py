"""Meta-tests on the public API surface.

Deliverable-level guarantees that are easy to regress silently:

* every public module, class, function and method carries a docstring;
* ``__all__`` lists resolve (no stale exports);
* the top-level package re-exports the advertised names;
* the version is a sane semver string.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.crypto",
    "repro.coding",
    "repro.baselines",
    "repro.biometrics",
    "repro.protocols",
    "repro.analysis",
    "repro.service",
    "repro.net",
    "repro.obs",
]


def _walk_modules():
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


ALL_MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} is missing a module docstring"
    )


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_items_documented(module_name):
    """Every public class/function defined in the module has a docstring,
    and every public method on those classes does too."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{name}.{member_name}")
    assert not undocumented, (
        f"{module_name} has undocumented public items: {undocumented}"
    )


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_all_lists_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, f"{module_name}.__all__ has stale names: {missing}"


class TestTopLevel:
    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_headline_exports(self):
        assert hasattr(repro, "SystemParams")
        assert hasattr(repro, "SuccinctFuzzyExtractor")
        assert hasattr(repro, "ChebyshevSketch")
        assert hasattr(repro, "RecoveryError")

    def test_exception_hierarchy(self):
        from repro import (
            RecoveryError,
            ReproError,
            TamperDetectedError,
        )

        assert issubclass(TamperDetectedError, RecoveryError)
        assert issubclass(RecoveryError, ReproError)

    def test_cli_entry_point_importable(self):
        from repro.cli import main  # noqa: F401
        from repro import __main__  # noqa: F401
