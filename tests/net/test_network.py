"""End-to-end tests for the asyncio TCP transport.

Every test drives the *real* stack — engine, server, frontend, asyncio
acceptor, blocking client — over localhost sockets, under the suite's
SIGALRM watchdog so a wedged loop fails fast instead of hanging CI.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.engine.engine import IdentificationEngine
from repro.exceptions import (
    ProtocolError,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.net.client import NetworkClient, RemoteEndpoint
from repro.net.framing import recv_frame
from repro.net.server import NetworkServer
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import (
    EnrollmentAck,
    ErrorReply,
    IdentificationRequest,
    Message,
)
from repro.protocols.runners import (
    run_baseline_identification,
    run_enrollment,
    run_identification,
    run_verification,
)
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service.frontend import ServiceFrontend

N_USERS = 4


@pytest.fixture
def net_params() -> SystemParams:
    """Paper geometry at a transport-test-sized dimension."""
    return SystemParams.paper_defaults(n=32)


@pytest.fixture
def population(net_params):
    return UserPopulation(net_params, size=N_USERS,
                          noise=BoundedUniformNoise(net_params.t), seed=11)


def _build_stack(net_params, fast_scheme, population, seed_tag: bytes):
    """Engine + server + enrolled population, deterministically seeded."""
    engine = IdentificationEngine(net_params, shards=2)
    server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                  seed=b"net-test-" + seed_tag)
    device = BiometricDevice(net_params, fast_scheme,
                             seed=b"net-dev-" + seed_tag)
    for i, user_id in enumerate(population.user_ids()):
        run = run_enrollment(device, server, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted
    return engine, server, device


class TestEndToEndParity:
    def test_tcp_flow_matches_in_process(self, net_params, fast_scheme,
                                         population, watchdog):
        """The acceptance flow: enrollment + identification + verification
        through NetworkClient -> TCP -> NetworkServer(ServiceFrontend)
        produce the same outcomes as the in-process runner on an
        identically seeded stack."""
        # In-process reference.
        _, ref_server, ref_device = _build_stack(
            net_params, fast_scheme, population, b"parity")
        reference = []
        for i in range(N_USERS):
            run = run_identification(ref_device, ref_server, DuplexLink(),
                                     population.genuine_reading(i))
            reference.append((run.outcome.identified, run.outcome.user_id))
        ref_imp = run_identification(ref_device, ref_server, DuplexLink(),
                                     population.impostor_reading())
        ref_ver = run_verification(ref_device, ref_server, DuplexLink(),
                                   population.user_ids()[0],
                                   population.genuine_reading(0))

        # Same stack shape, served over TCP through the frontend.
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"parity")
        frontend = ServiceFrontend(server, workers=2)
        with NetworkServer(frontend, owns_endpoint=True) as net:
            host, port = net.address
            with RemoteEndpoint.connect(host, port) as remote:
                observed = []
                for i in range(N_USERS):
                    run = run_identification(
                        device, remote, DuplexLink(),
                        population.genuine_reading(i))
                    observed.append(
                        (run.outcome.identified, run.outcome.user_id))
                obs_imp = run_identification(device, remote, DuplexLink(),
                                             population.impostor_reading())
                obs_ver = run_verification(device, remote, DuplexLink(),
                                           population.user_ids()[0],
                                           population.genuine_reading(0))
        assert observed == reference
        assert (obs_imp.outcome.identified, ref_imp.outcome.identified) \
            == (False, False)
        assert obs_ver.outcome.verified and ref_ver.outcome.verified
        assert obs_ver.outcome.user_id == ref_ver.outcome.user_id

    def test_enrollment_over_wire_then_identify(self, net_params,
                                                fast_scheme, population,
                                                watchdog):
        engine = IdentificationEngine(net_params, shards=2)
        server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                      seed=b"wire-enroll")
        device = BiometricDevice(net_params, fast_scheme, seed=b"wire-dev")
        with NetworkServer(ServiceFrontend(server, workers=2),
                           owns_endpoint=True) as net:
            host, port = net.address
            with RemoteEndpoint.connect(host, port) as remote:
                for i, user_id in enumerate(population.user_ids()):
                    run = run_enrollment(device, remote, DuplexLink(),
                                         user_id, population.template(i))
                    assert run.outcome.accepted
                # Duplicate enrollment refused across the wire too.
                dup = run_enrollment(device, remote, DuplexLink(),
                                     population.user_ids()[0],
                                     population.template(0))
                assert not dup.outcome.accepted
                run = run_identification(device, remote, DuplexLink(),
                                         population.genuine_reading(2))
                assert run.outcome.identified
                assert run.outcome.user_id == population.user_ids()[2]
        assert len(engine) == N_USERS

    def test_baseline_protocol_over_wire(self, net_params, fast_scheme,
                                         population, watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"baseline")
        with NetworkServer(server) as net:
            host, port = net.address
            with RemoteEndpoint.connect(host, port) as remote:
                run = run_baseline_identification(
                    device, remote, DuplexLink(),
                    population.genuine_reading(1), pessimistic=False)
        assert run.outcome.identified
        assert run.outcome.user_id == population.user_ids()[1]


class TestConcurrentClients:
    def test_closed_loop_parity(self, net_params, fast_scheme, population,
                                watchdog):
        _, server, _ = _build_stack(
            net_params, fast_scheme, population, b"concurrent")
        frontend = ServiceFrontend(server, workers=2, max_batch=8)
        clients = 6
        per_client = 3
        errors: list[BaseException] = []
        barrier = threading.Barrier(clients)

        def client(c: int) -> None:
            rng = np.random.default_rng(100 + c)
            device = BiometricDevice(net_params, fast_scheme,
                                     seed=b"cc-%d" % c)
            try:
                with RemoteEndpoint.connect(host, port) as remote:
                    barrier.wait()
                    for _ in range(per_client):
                        user = int(rng.integers(0, N_USERS))
                        run = run_identification(
                            device, remote, DuplexLink(),
                            population.genuine_reading(user, rng))
                        assert run.outcome.identified
                        assert run.outcome.user_id == \
                            population.user_ids()[user]
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        with NetworkServer(frontend, owns_endpoint=True,
                           handler_threads=clients + 2) as net:
            host, port = net.address
            threads = [threading.Thread(target=client, args=(c,))
                       for c in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors, errors[0]


class _OverloadedEndpoint:
    """Stub endpoint whose identification path is permanently full."""

    def handle_identification_request(self, request):
        raise ServiceOverloadError("request queue full (stub)")


class _GatedServer:
    """Wraps a server; identification scans block until released."""

    def __init__(self, server, entered: threading.Event,
                 release: threading.Event) -> None:
        self._server = server
        self.entered = entered
        self.release = release

    def handle_identification_batch(self, requests):
        self.entered.set()
        assert self.release.wait(60.0), "gate never released"
        return self._server.handle_identification_batch(requests)

    def __getattr__(self, name):
        return getattr(self._server, name)


class TestBackpressure:
    def test_overload_error_crosses_the_wire(self, net_params, fast_scheme,
                                             watchdog):
        device = BiometricDevice(net_params, fast_scheme, seed=b"ov-dev")
        sketch = device.probe_sketch(np.zeros(net_params.n, dtype=np.int64))
        with NetworkServer(_OverloadedEndpoint()) as net:
            host, port = net.address
            with RemoteEndpoint.connect(host, port) as remote:
                with pytest.raises(ServiceOverloadError, match="queue full"):
                    remote.handle_identification_request(sketch)
                # The connection survives a rejected request.
                with pytest.raises(ServiceOverloadError):
                    remote.handle_identification_request(sketch)

    def test_queue_full_frontend_rejects_remote_client(
            self, net_params, fast_scheme, population, watchdog):
        """Deterministic queue-full: the batcher is gated mid-scan, one
        op fills the single queue slot, and the next remote submit gets
        the typed overload frame."""
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"queuefull")
        entered, release = threading.Event(), threading.Event()
        gated = _GatedServer(server, entered, release)
        frontend = ServiceFrontend(gated, max_queue=1, max_batch=1,
                                   batch_window_s=0.0, batch_linger_s=0.0,
                                   workers=1, submit_timeout_s=1.0)
        results: list[object] = []

        def blocked_client(index: int) -> None:
            with RemoteEndpoint.connect(host, port) as remote:
                run = run_identification(device, remote, DuplexLink(),
                                         population.genuine_reading(index))
                results.append(run.outcome.user_id)

        with NetworkServer(frontend, owns_endpoint=True,
                           handler_threads=4) as net:
            host, port = net.address
            first = threading.Thread(target=blocked_client, args=(0,))
            first.start()
            assert entered.wait(30.0)  # batcher is now gated mid-scan
            second = threading.Thread(target=blocked_client, args=(1,))
            second.start()
            # Give the second probe time to occupy the only queue slot.
            time.sleep(0.3)
            with RemoteEndpoint.connect(host, port) as remote:
                probe = device.probe_sketch(
                    population.genuine_reading(2))
                with pytest.raises(ServiceOverloadError):
                    remote.handle_identification_request(probe)
            release.set()
            first.join()
            second.join()
        assert sorted(results) == sorted(population.user_ids()[:2])


class TestRobustness:
    def test_hostile_length_prefix_drops_only_that_connection(
            self, net_params, fast_scheme, population, watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"garbage")
        with NetworkServer(server) as net:
            host, port = net.address
            raw = socket.create_connection((host, port), timeout=10.0)
            try:
                # Claims a 2 GiB frame: framing is untrustworthy, so the
                # server answers once and hangs up.
                raw.sendall((1 << 31).to_bytes(4, "big") + b"x")
                reply = Message.decode(recv_frame(raw))
                assert isinstance(reply, ErrorReply)
                assert reply.code == "protocol"
                assert recv_frame(raw) is None  # server hung up
            finally:
                raw.close()
            # The accept loop survived: a fresh connection still works.
            with RemoteEndpoint.connect(host, port) as remote:
                run = run_identification(device, remote, DuplexLink(),
                                         population.genuine_reading(0))
                assert run.outcome.identified

    def test_unknown_type_tag_keeps_connection(self, net_params,
                                               fast_scheme, population,
                                               watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"unknown-tag")
        with NetworkServer(server) as net:
            host, port = net.address
            raw = socket.create_connection((host, port), timeout=10.0)
            try:
                raw.sendall((6).to_bytes(4, "big") + b"\xff\xff!!!!")
                reply = Message.decode(recv_frame(raw))
                assert isinstance(reply, ErrorReply)
                assert reply.code == "protocol"
                # Framing stayed in sync: the same connection still serves.
                from repro.net.framing import send_frame
                send_frame(raw, device.probe_sketch(
                    population.genuine_reading(0)))
                reply = Message.decode(recv_frame(raw))
                assert not isinstance(reply, ErrorReply)
            finally:
                raw.close()

    def test_tampered_field_bytes_answer_protocol_error(
            self, net_params, fast_scheme, population, watchdog):
        """A frame that parses as a frame but carries a corrupt field
        (the strict-bool / wrapped-decode satellites) keeps the
        connection: the server reports and carries on."""
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"tamper")
        with NetworkServer(server) as net:
            host, port = net.address
            raw = socket.create_connection((host, port), timeout=10.0)
            try:
                payload = bytearray(
                    device.probe_sketch(
                        population.genuine_reading(0)).encode())
                payload = payload[:-3]  # ragged int-vector chunk
                # Fix the chunk length so the frame structure stays valid.
                body_len = len(payload) - 2 - 8
                payload[2:10] = body_len.to_bytes(8, "big")
                raw.sendall(len(payload).to_bytes(4, "big") + bytes(payload))
                reply = Message.decode(recv_frame(raw))
                assert isinstance(reply, ErrorReply)
                assert reply.code == "protocol"
                # Same connection, valid request: still served.
                from repro.net.framing import send_frame
                send_frame(raw, device.probe_sketch(
                    population.genuine_reading(1)))
                reply = Message.decode(recv_frame(raw))
                assert not isinstance(reply, ErrorReply)
            finally:
                raw.close()

    def test_non_request_message_rejected_without_drop(
            self, net_params, fast_scheme, population, watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"nonreq")
        with NetworkServer(server) as net:
            host, port = net.address
            with NetworkClient(*net.address) as client:
                with pytest.raises(ProtocolError, match="not a request"):
                    client.request(EnrollmentAck(user_id="x", accepted=True))
                reply = client.request(device.probe_sketch(
                    population.genuine_reading(3)))
                assert not isinstance(reply, ErrorReply)

    def test_oversized_client_frame_rejected(self, net_params, fast_scheme,
                                             population, watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"oversize")
        with NetworkServer(server, max_frame=96) as net:
            host, port = net.address
            with NetworkClient(host, port) as client:
                # The server refuses the frame on its length prefix and
                # answers with a (detail-trimmed) protocol error frame.
                with pytest.raises(ProtocolError, match="frame"):
                    client.request(device.probe_sketch(
                        population.genuine_reading(0)))

    def test_internal_handler_error_answers_typed_frame(
            self, net_params, fast_scheme, watchdog):
        class _Exploding:
            def handle_identification_request(self, request):
                raise RuntimeError("boom")

        device = BiometricDevice(net_params, fast_scheme, seed=b"boom-dev")
        with NetworkServer(_Exploding()) as net:
            with NetworkClient(*net.address) as client:
                from repro.exceptions import ServiceError
                with pytest.raises(ServiceError, match="internal"):
                    client.request(device.probe_sketch(
                        np.zeros(net_params.n, dtype=np.int64)))


class TestAccountingAndLifecycle:
    def test_wire_accounting_matches_both_sides(self, net_params,
                                                fast_scheme, population,
                                                watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"acct")
        with NetworkServer(server) as net:
            host, port = net.address
            with RemoteEndpoint.connect(host, port) as remote:
                run_identification(device, remote, DuplexLink(),
                                   population.genuine_reading(0))
                client = remote.client
                assert client.to_server.messages >= 2
                server_stats = net.wire_stats()
                assert server_stats.to_server.wire_bytes == \
                    client.to_server.wire_bytes
                assert server_stats.to_device.wire_bytes == \
                    client.to_device.wire_bytes
                assert server_stats.to_server.messages == \
                    client.to_server.messages
            assert net.connections_served() == 1

    def test_close_is_idempotent_and_rejects_late_requests(
            self, net_params, fast_scheme, population, watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"close")
        net = NetworkServer(server)
        host, port = net.start()
        client = NetworkClient(host, port)
        net.close()
        net.close()  # idempotent
        with pytest.raises((ProtocolError, OSError, ServiceClosedError)):
            client.request(device.probe_sketch(
                population.genuine_reading(0)))
            # A half-open socket may need a second round trip to notice.
            client.request(device.probe_sketch(
                population.genuine_reading(0)))
        client.close()

    def test_close_after_failed_start_reraises_bind_error(self, net_params,
                                                          fast_scheme,
                                                          watchdog):
        """close() after a failed bind must not mask the OSError with a
        'loop is closed' RuntimeError (regression)."""
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            failed = NetworkServer(_OverloadedEndpoint(),
                                   host="127.0.0.1", port=port)
            with pytest.raises(OSError):
                failed.start()
            failed.close()  # must be a quiet no-op
            with pytest.raises(OSError):
                failed.start()  # the original error stays the story
        finally:
            blocker.close()

    def test_timeout_poisons_the_connection(self, net_params, fast_scheme,
                                            population, watchdog):
        """A timed-out exchange closes the client connection, so a retry
        raises instead of reading the abandoned request's stale reply
        (regression)."""
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"poison")
        entered, release = threading.Event(), threading.Event()
        gated = _GatedServer(server, entered, release)
        frontend = ServiceFrontend(gated, max_batch=1, batch_window_s=0.0,
                                   batch_linger_s=0.0, workers=1)
        with NetworkServer(frontend, owns_endpoint=True) as net:
            host, port = net.address
            client = NetworkClient(host, port, timeout_s=0.5)
            probe = device.probe_sketch(population.genuine_reading(0))
            with pytest.raises(TimeoutError):
                client.request(probe)  # gated server never answers in time
            with pytest.raises(ServiceClosedError):
                client.request(probe)  # poisoned: no stale-reply reads
            release.set()
            client.close()

    def test_restart_cycles_over_one_saved_store(self, net_params,
                                                 fast_scheme, population,
                                                 tmp_path, watchdog):
        """serve -> close -> serve again over the same mmap store: the
        engine close releases its maps, so restarts stay clean."""
        engine, server, device = _build_stack(
            net_params, fast_scheme, population, b"restart")
        store_dir = tmp_path / "net-store"
        engine.save(store_dir)
        engine.close()
        for cycle in range(3):
            reopened = IdentificationEngine.open(store_dir)
            cycle_server = AuthenticationServer(
                net_params, fast_scheme, store=reopened,
                seed=b"restart-%d" % cycle)
            frontend = ServiceFrontend(cycle_server, workers=2)
            with NetworkServer(frontend, owns_endpoint=True) as net:
                host, port = net.address
                with RemoteEndpoint.connect(host, port) as remote:
                    run = run_identification(
                        device, remote, DuplexLink(),
                        population.genuine_reading(cycle % N_USERS))
                    assert run.outcome.identified
            reopened.close()
