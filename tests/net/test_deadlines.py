"""End-to-end deadline propagation over the TCP transport.

The wire contract under test: a request carrying a
:class:`~repro.protocols.messages.DeadlineEnvelope` budget that elapses
while queued is shed *server-side* with ``ErrorReply(code="expired")``,
which both clients raise as the typed, per-request
:class:`~repro.exceptions.DeadlineExceededError` — on the serial client
the connection survives, and on the pipelined client only the expired
request's future fails while the rest of the stream keeps flowing.

The batcher stall that forces each expiry is injected deterministically
through the fault harness (``frontend.batcher``), never by sleeping and
hoping.
"""

import socket
import threading
import time

import pytest

from repro import faults
from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.engine.engine import IdentificationEngine
from repro.exceptions import DeadlineExceededError
from repro.net.client import NetworkClient, PipelinedNetworkClient
from repro.net.framing import send_frame
from repro.net.server import NetworkServer
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import (
    ErrorReply,
    StatsRequest,
    VerificationChallenge,
    VerificationRequest,
)
from repro.protocols.runners import run_enrollment
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service.frontend import ServiceFrontend

N_USERS = 2

#: The injected batcher stall: long enough that a queued 50 ms budget is
#: provably elapsed at dequeue, short enough that the serial client's
#: stretched socket timeout (budget + 250 ms) outlives it — the typed
#: server verdict must win over a connection-fatal client timeout.
STALL_S = 0.2
BUDGET_MS = 50


@pytest.fixture
def net_params() -> SystemParams:
    return SystemParams.paper_defaults(n=32)


@pytest.fixture
def population(net_params):
    return UserPopulation(net_params, size=N_USERS,
                          noise=BoundedUniformNoise(net_params.t), seed=31)


@pytest.fixture(autouse=True)
def _no_fault_leakage():
    yield
    faults.clear()


@pytest.fixture
def served(net_params, fast_scheme, population):
    """An enrolled stack behind frontend + TCP; yields (address, user)."""
    engine = IdentificationEngine(net_params, shards=2)
    server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                  seed=b"deadline-test")
    device = BiometricDevice(net_params, fast_scheme, seed=b"deadline-dev")
    for i, user_id in enumerate(population.user_ids()):
        run = run_enrollment(device, server, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted
    frontend = ServiceFrontend(server, workers=2)
    with NetworkServer(frontend, owns_endpoint=True) as net:
        yield net.address, population.user_ids()[0]


def _stall_batcher_once():
    """Arm one deterministic batcher stall: the next dequeued op holds
    the batch loop for ``STALL_S`` while later submissions queue."""
    faults.install([
        {"point": "frontend.batcher", "style": "delay",
         "delay_s": STALL_S, "times": 1},
    ])


class TestSerialClientDeadlines:
    def test_expired_is_typed_and_connection_survives(self, served,
                                                      watchdog):
        """A queued request whose budget elapses fails with the typed
        per-request error — the server's verdict, not a client-side
        timeout — and the same connection keeps working afterwards."""
        address, user = served
        _stall_batcher_once()

        def trigger():
            with NetworkClient(*address) as trigger_client:
                # No budget: rides out the stall and must succeed.
                reply = trigger_client.request(VerificationRequest(
                    user_id=user))
                assert isinstance(reply, VerificationChallenge)

        t = threading.Thread(target=trigger, name="stall-trigger")
        t.start()
        try:
            # Wait until the trigger op is provably *inside* the stall
            # (the fault has fired) before sending the doomed request —
            # otherwise the doomed op could be the one that trips the
            # stall and it would be served, late but in budget.
            wait_deadline = time.monotonic() + 5.0
            while faults.fired("frontend.batcher") < 1:
                assert time.monotonic() < wait_deadline, \
                    "batcher stall never entered"
                time.sleep(0.005)
            with NetworkClient(*address) as client:
                with pytest.raises(DeadlineExceededError) as excinfo:
                    client.request(VerificationRequest(user_id=user),
                                   budget_ms=BUDGET_MS)
                # The shed carries an honest backoff hint.
                assert excinfo.value.retry_after_ms >= 10
                # Typed error frames leave the connection usable: a
                # client-side timeout would have poisoned it instead.
                reply = client.request(VerificationRequest(user_id=user))
                assert isinstance(reply, VerificationChallenge)
        finally:
            t.join()

    def test_generous_budget_is_served(self, served, watchdog):
        """A budget that outlives the queue wait changes nothing: the
        enveloped request is answered like a bare one."""
        address, user = served
        with NetworkClient(*address) as client:
            reply = client.request(VerificationRequest(user_id=user),
                                   budget_ms=5_000)
            assert isinstance(reply, VerificationChallenge)


class TestPipelinedClientDeadlines:
    def test_expired_fails_only_its_own_request(self, served, watchdog):
        """On one pipelined connection, a server-shed expired request
        resolves only its own future; earlier and later in-flight
        requests on the same stream still succeed (no poisoning)."""
        address, user = served
        _stall_batcher_once()
        with PipelinedNetworkClient(*address, window=8) as client:
            ahead = client.submit(VerificationRequest(user_id=user))
            doomed = client.submit(VerificationRequest(user_id=user),
                                   budget_ms=BUDGET_MS)
            behind = client.submit(VerificationRequest(user_id=user))

            # Raw futures: error frames resolve, they don't raise.
            assert isinstance(ahead.result(10.0), VerificationChallenge)
            shed = doomed.result(10.0)
            assert isinstance(shed, ErrorReply)
            assert shed.code == "expired"
            assert shed.retry_after_ms() >= 10
            assert isinstance(behind.result(10.0), VerificationChallenge)

            # The mapped blocking path on the same (healthy) stream.
            reply = client.request(VerificationRequest(user_id=user))
            assert isinstance(reply, VerificationChallenge)

    def test_request_raises_typed_error(self, served, watchdog):
        """The blocking wrapper maps the expired frame to the typed
        exception without tearing the stream down."""
        address, user = served
        _stall_batcher_once()
        with PipelinedNetworkClient(*address, window=8) as client:
            stalled = client.submit(VerificationRequest(user_id=user))
            with pytest.raises(DeadlineExceededError):
                client.request(VerificationRequest(user_id=user),
                               budget_ms=BUDGET_MS)
            assert isinstance(stalled.result(10.0), VerificationChallenge)
            reply = client.request(VerificationRequest(user_id=user))
            assert isinstance(reply, VerificationChallenge)


class TestSlowClientProtection:
    def test_non_reading_client_is_dropped_and_isolated(self, net_params,
                                                        fast_scheme,
                                                        watchdog):
        """A client that pumps requests but never reads its replies hits
        the write deadline and is aborted — and only that connection:
        a polite client on the same server keeps being answered."""
        engine = IdentificationEngine(net_params, shards=1)
        server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                      seed=b"slow-client-test")
        frontend = ServiceFrontend(server, workers=1)
        with NetworkServer(frontend, owns_endpoint=True,
                           send_buffer_limit=8_192,
                           write_deadline_s=0.3) as net:
            host, port = net.address
            rude = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            # Shrink the advertised receive window *before* connecting so
            # the server-side buffers fill after a handful of replies.
            rude.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4_096)
            rude.settimeout(2.0)
            rude.connect((host, port))
            try:
                scrape = StatsRequest.make("all", 0)
                try:
                    # Stats scrapes are answered inline with multi-KB
                    # JSON replies: never reading them backs the
                    # outbound buffer up past the limit fast.
                    for _ in range(5_000):
                        send_frame(rude, scrape)
                except (ConnectionError, OSError):
                    pass  # aborted mid-send: the protection fired
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if net.server_stats().dropped_connections >= 1:
                        break
                    time.sleep(0.05)
                assert net.server_stats().dropped_connections >= 1, \
                    "non-reading client was never dropped"
                with NetworkClient(host, port) as polite:
                    assert polite.health()["alive"] is True
            finally:
                rude.close()
