"""Tests for the TCP bench harness and the serve/net-bench CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.net.bench import NetBenchReport, run_net_bench, write_trajectory


@pytest.fixture(scope="module")
def tiny_report() -> NetBenchReport:
    """One tiny closed-loop TCP bench run, shared across assertions."""
    return run_net_bench(dimension=32, n_users=400, pool_users=4,
                         n_requests=12, clients=4, shards=2,
                         scheme="dsa-512", seed=3)


class TestRunNetBench:
    def test_completes_with_positive_throughput(self, tiny_report, watchdog):
        assert tiny_report.n_requests == 12
        assert tiny_report.elapsed_s > 0
        assert tiny_report.ids_per_s > 0
        p50, p95, p99 = tiny_report.latency_ms
        assert 0 < p50 <= p95 <= p99

    def test_wire_cost_accounted(self, tiny_report):
        # Every identification moves at least a sketch and a challenge.
        assert tiny_report.wire_bytes_per_id > 100

    def test_backpressure_surfaces_client_side(self, tiny_report):
        """The acceptance criterion: queue-full must reach remote
        clients as ServiceOverloadError at least once."""
        assert tiny_report.overload_attempts > 0
        assert tiny_report.overload_rejections >= 1

    def test_trajectory_marks_transport(self, tiny_report, tmp_path):
        path = tmp_path / "traj.json"
        write_trajectory(tiny_report, path)
        write_trajectory(tiny_report, path)
        data = json.loads(path.read_text())
        assert len(data["runs"]) == 2
        assert data["runs"][0]["transport"] == "tcp"
        assert data["runs"][1]["overload_rejections"] >= 1

    def test_trajectory_is_strict_json(self, tiny_report, tmp_path):
        """The identify mix has no verify batches (NaN mean); the
        artifact must still parse under a strict reader — no bare
        NaN/Infinity literals."""
        path = tmp_path / "traj.json"
        write_trajectory(tiny_report, path)

        def reject(constant):
            raise AssertionError(f"non-spec JSON literal {constant!r}")

        row = json.loads(path.read_text(), parse_constant=reject)["runs"][0]
        assert row["mix"] == "identify"
        assert row["verify_mean_batch"] == 0.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(Exception, match="pool_users"):
            run_net_bench(n_users=2, pool_users=8, n_requests=8, clients=2)
        with pytest.raises(Exception, match="clients"):
            run_net_bench(n_users=100, pool_users=4, n_requests=2,
                          clients=8)


class TestVerifyHeavyMix:
    def test_verify_heavy_exercises_batched_verification(self, tmp_path,
                                                         watchdog):
        """The --verify-heavy mix drives the frontend's verify-response
        micro-batcher — and the Schnorr multi-scalar kernel under it —
        end-to-end over TCP, with rows tagged in the trajectory."""
        report = run_net_bench(dimension=32, n_users=300, pool_users=4,
                               n_requests=16, clients=4, shards=2,
                               scheme="schnorr-p-256", seed=5,
                               verify_heavy=True)
        assert report.mix == "verify-heavy"
        # 12 of 16 requests are verifications; every one parity-checked
        # inside the harness, so completing is the accept/reject parity.
        assert report.ids_per_s > 0
        assert report.verify_max_batch_seen >= 1
        path = tmp_path / "traj.json"
        write_trajectory(report, path)
        row = json.loads(path.read_text())["runs"][0]
        assert row["mix"] == "verify-heavy"
        assert row["transport"] == "tcp"
        assert row["verify_max_batch_seen"] >= 1


class TestPipelineMode:
    def test_pipeline_shootout_reports_both_phases(self, tmp_path,
                                                   watchdog):
        """--pipeline runs the serial baseline then the windowed phase
        on one connection each; the row carries both throughputs."""
        report = run_net_bench(dimension=32, n_users=300, pool_users=4,
                               n_requests=16, shards=2,
                               scheme="dsa-512", seed=9, pipeline=4)
        assert report.pipeline == 4
        assert report.clients == 1  # one connection per phase
        assert report.serial_ids_per_s > 0
        assert report.ids_per_s > 0
        path = tmp_path / "traj.json"
        write_trajectory(report, path)
        row = json.loads(path.read_text())["runs"][0]
        assert row["pipeline"] == 4
        assert row["serial_ids_per_s"] > 0
        summary = "\n".join(report.summary_lines())
        assert "pipelining x4" in summary

    def test_pipeline_rejects_bad_shapes(self):
        with pytest.raises(Exception, match="verify-heavy"):
            run_net_bench(n_users=100, pool_users=4, n_requests=16,
                          pipeline=4, verify_heavy=True)
        with pytest.raises(Exception, match="pipeline"):
            run_net_bench(n_users=100, pool_users=4, n_requests=4,
                          pipeline=8)


class TestServeCli:
    def test_self_test_round_trip(self, capsys, watchdog):
        code = main(["serve", "--self-test", "-n", "48",
                     "--scheme", "dsa-512"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serving 0 enrolled record(s)" in out
        assert "identified=True" in out
        assert "verified=True" in out

    def test_self_test_serial_mode(self, capsys, watchdog):
        code = main(["serve", "--self-test", "--serial", "-n", "48",
                     "--scheme", "dsa-512"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serial server" in out
        assert "verified=True" in out

    def test_self_test_from_saved_store(self, capsys, tmp_path, watchdog,
                                        paper_params):
        from repro.engine.engine import IdentificationEngine

        store = tmp_path / "serve-store"
        engine = IdentificationEngine(paper_params, shards=2)
        engine.save(store)
        engine.close()
        code = main(["serve", "--self-test", "--store", str(store),
                     "--scheme", "dsa-512"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified=True" in out

    def test_bad_store_fails_cleanly(self, capsys, tmp_path):
        assert main(["serve", "--store", str(tmp_path / "nope"),
                     "--self-test"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert not args.serial
        assert not args.self_test


class TestNetBenchCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["net-bench"])
        assert args.users is None
        assert args.json == "BENCH_service.json"

    def test_runs_and_reports(self, capsys, watchdog):
        code = main(["net-bench", "--users", "300", "--pool-users", "4",
                     "--requests", "8", "--clients", "2", "-n", "32",
                     "--shards", "2", "--scheme", "dsa-512", "--json", ""])
        out = capsys.readouterr().out
        assert code == 0
        assert "net bench (tcp, identify mix)" in out
        assert "backpressure probe" in out
        assert "ServiceOverloadError" in out
