"""Tests for the pipelined multi-in-flight client.

The contract under test: a ``PipelinedNetworkClient`` produces exactly
the outcomes of the serial ``NetworkClient`` on an identically seeded
stack (the server's windowed in-order pipelining is invisible at the
protocol level), while allowing many requests in flight on one
connection; failures poison connection-wide, typed error replies stay
per-request.
"""

import threading
import time

import numpy as np
import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.engine.engine import IdentificationEngine
from repro.exceptions import (
    ConnectionLostError,
    RequestTimeoutError,
    ServiceOverloadError,
)
from repro.net.client import (
    NetworkClient,
    PipelinedNetworkClient,
    RemoteEndpoint,
)
from repro.net.server import NetworkServer
from repro.protocols.device import BiometricDevice
from repro.protocols.runners import run_enrollment, run_identification
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service.frontend import ServiceFrontend

N_USERS = 4


@pytest.fixture
def net_params() -> SystemParams:
    return SystemParams.paper_defaults(n=32)


@pytest.fixture
def population(net_params):
    return UserPopulation(net_params, size=N_USERS,
                          noise=BoundedUniformNoise(net_params.t), seed=23)


def _build_stack(net_params, fast_scheme, population, seed_tag: bytes):
    engine = IdentificationEngine(net_params, shards=2)
    server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                  seed=b"pipe-test-" + seed_tag)
    device = BiometricDevice(net_params, fast_scheme,
                             seed=b"pipe-dev-" + seed_tag)
    for i, user_id in enumerate(population.user_ids()):
        run = run_enrollment(device, server, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted
    return engine, server, device


class TestPipelinedParity:
    def test_matches_serial_client_on_seeded_stack(self, net_params,
                                                   fast_scheme, population,
                                                   watchdog):
        """Same requests through a serial and a pipelined client against
        identically seeded stacks -> identical identification outcomes."""
        _, ref_server, ref_device = _build_stack(
            net_params, fast_scheme, population, b"parity")
        reference = []
        with NetworkServer(ServiceFrontend(ref_server, workers=2),
                           owns_endpoint=True) as net:
            host, port = net.address
            with RemoteEndpoint.connect(host, port) as remote:
                for i in range(N_USERS):
                    run = run_identification(ref_device, remote, DuplexLink(),
                                             population.genuine_reading(i))
                    reference.append(
                        (run.outcome.identified, run.outcome.user_id))

        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"parity")
        observed = []
        with NetworkServer(ServiceFrontend(server, workers=2),
                           owns_endpoint=True) as net:
            host, port = net.address
            with RemoteEndpoint.connect(host, port, pipeline=8) as remote:
                assert isinstance(remote.client, PipelinedNetworkClient)
                for i in range(N_USERS):
                    run = run_identification(device, remote, DuplexLink(),
                                             population.genuine_reading(i))
                    observed.append(
                        (run.outcome.identified, run.outcome.user_id))
        assert observed == reference
        assert all(identified for identified, _ in observed)

    def test_threads_share_one_pipelined_connection(self, net_params,
                                                    fast_scheme, population,
                                                    watchdog):
        """N driver threads over ONE pipelined client (each with its own
        endpoint wrapper) all identify correctly — the single-process
        saturation shape of ``net-bench --pipeline``."""
        _, server, _ = _build_stack(
            net_params, fast_scheme, population, b"threads")
        frontend = ServiceFrontend(server, workers=2, max_batch=8)
        drivers = 6
        per_driver = 3
        errors: list[BaseException] = []
        barrier = threading.Barrier(drivers)

        def driver(d: int) -> None:
            rng = np.random.default_rng(300 + d)
            device = BiometricDevice(net_params, fast_scheme,
                                     seed=b"pipe-th-%d" % d)
            remote = RemoteEndpoint(client)  # shared client, not owned
            try:
                barrier.wait()
                for _ in range(per_driver):
                    user = int(rng.integers(0, N_USERS))
                    run = run_identification(
                        device, remote, DuplexLink(),
                        population.genuine_reading(user, rng))
                    assert run.outcome.identified
                    assert run.outcome.user_id == population.user_ids()[user]
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        with NetworkServer(frontend, owns_endpoint=True,
                           handler_threads=drivers + 2) as net:
            host, port = net.address
            with PipelinedNetworkClient(host, port, window=drivers) as client:
                threads = [threading.Thread(target=driver, args=(d,))
                           for d in range(drivers)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        assert not errors, errors[0]

    def test_submit_overlaps_requests(self, net_params, fast_scheme,
                                      population, watchdog):
        """submit() puts several requests in flight at once; the futures
        resolve in FIFO order with the right per-request replies."""
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"overlap")
        with NetworkServer(ServiceFrontend(server, workers=2, max_batch=8),
                           owns_endpoint=True) as net:
            host, port = net.address
            with PipelinedNetworkClient(host, port, window=8) as client:
                futures = [client.submit(device.probe_sketch(
                    population.genuine_reading(i))) for i in range(N_USERS)]
                replies = [f.result(30.0) for f in futures]
        # Each genuine probe gets a challenge (a sketch hit), not an
        # error frame or a miss outcome.
        for reply in replies:
            assert type(reply).__name__ == "IdentificationChallenge", reply


class TestPipelinedFailures:
    def test_error_reply_is_per_request(self, net_params, fast_scheme,
                                        watchdog):
        """A typed overload reply fails only its own request; the
        connection keeps serving."""
        class _Overloaded:
            def handle_identification_request(self, request):
                raise ServiceOverloadError("request queue full (stub)")

            def handle_enrollment(self, request):  # pragma: no cover
                raise AssertionError("unused")

        device = BiometricDevice(net_params, fast_scheme, seed=b"pipe-ov")
        probe = device.probe_sketch(np.zeros(net_params.n, dtype=np.int64))
        with NetworkServer(_Overloaded()) as net:
            host, port = net.address
            with PipelinedNetworkClient(*net.address, window=4) as client:
                with pytest.raises(ServiceOverloadError, match="queue full"):
                    client.request(probe)
                # Stream stayed healthy: the next request round-trips.
                with pytest.raises(ServiceOverloadError):
                    client.request(probe)

    def test_timeout_poisons_all_in_flight(self, net_params, fast_scheme,
                                           population, watchdog):
        """A deadline expiry desyncs in-order matching, so it fails every
        outstanding future and spends the connection."""
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"poison")
        entered, release = threading.Event(), threading.Event()

        class _Gated:
            def handle_identification_request(self, request):
                entered.set()
                assert release.wait(60.0)
                return server.handle_identification_request(request)

            def __getattr__(self, name):
                return getattr(server, name)

        with NetworkServer(_Gated(), handler_threads=4) as net:
            host, port = net.address
            client = PipelinedNetworkClient(host, port, timeout_s=0.5,
                                            window=4)
            try:
                probe = device.probe_sketch(population.genuine_reading(0))
                stuck = client.submit(probe)
                assert entered.wait(30.0)
                follower = client.submit(probe)
                with pytest.raises(RequestTimeoutError):
                    client.request(probe)
                # Poison reached the already-submitted futures too.
                with pytest.raises((RequestTimeoutError,
                                    ConnectionLostError)):
                    stuck.result(5.0)
                with pytest.raises((RequestTimeoutError,
                                    ConnectionLostError)):
                    follower.result(5.0)
                # And later submissions are refused outright.
                with pytest.raises(ConnectionLostError, match="spent"):
                    client.request(probe)
            finally:
                release.set()
                client.close()

    def test_server_close_fails_pending_and_late_submits(
            self, net_params, fast_scheme, population, watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"drop")
        net = NetworkServer(ServiceFrontend(server, workers=1),
                            owns_endpoint=True)
        host, port = net.start()
        client = PipelinedNetworkClient(host, port, window=4)
        try:
            probe = device.probe_sketch(population.genuine_reading(0))
            assert client.request(probe) is not None  # connection is live
            net.close()
            deadline = time.monotonic() + 30.0
            # The reader notices the hangup asynchronously; poll briefly.
            while time.monotonic() < deadline:
                try:
                    client.request(probe, deadline_s=2.0)
                except (ConnectionLostError, RequestTimeoutError):
                    break
                time.sleep(0.05)
            else:  # pragma: no cover
                pytest.fail("spent connection kept accepting requests")
            with pytest.raises(ConnectionLostError):
                client.request(probe)
        finally:
            client.close()

    def test_close_is_idempotent_and_fails_outstanding(
            self, net_params, fast_scheme, population, watchdog):
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"close")
        entered, release = threading.Event(), threading.Event()

        class _Gated:
            def handle_identification_request(self, request):
                entered.set()
                assert release.wait(60.0)
                return server.handle_identification_request(request)

            def __getattr__(self, name):
                return getattr(server, name)

        with NetworkServer(_Gated(), handler_threads=2) as net:
            host, port = net.address
            client = PipelinedNetworkClient(host, port, window=4)
            probe = device.probe_sketch(population.genuine_reading(0))
            stuck = client.submit(probe)
            assert entered.wait(30.0)
            client.close()
            client.close()  # idempotent
            release.set()
            with pytest.raises(Exception):
                stuck.result(10.0)

    def test_window_validation(self, watchdog):
        with pytest.raises(ValueError, match="window"):
            PipelinedNetworkClient("127.0.0.1", 1, window=0)


class TestWindowOne:
    def test_window_one_equals_serial(self, net_params, fast_scheme,
                                      population, watchdog):
        """window=1 degenerates to one-at-a-time — the serial contract."""
        _, server, device = _build_stack(
            net_params, fast_scheme, population, b"w1")
        with NetworkServer(ServiceFrontend(server, workers=2),
                           owns_endpoint=True) as net:
            host, port = net.address
            with PipelinedNetworkClient(host, port, window=1) as pipelined:
                run = run_identification(
                    device, RemoteEndpoint(pipelined), DuplexLink(),
                    population.genuine_reading(1))
                assert run.outcome.identified
                assert run.outcome.user_id == population.user_ids()[1]
            # And the serial client agrees on the same server.
            with NetworkClient(host, port) as serial:
                run = run_identification(
                    device, RemoteEndpoint(serial), DuplexLink(),
                    population.genuine_reading(2))
                assert run.outcome.identified
