"""End-to-end trace propagation over real TCP.

The observability acceptance test: a client-minted trace id travels
inside a ``TracedEnvelope`` through the asyncio server, the batching
frontend, the engine scan, and the signature verify — and every span
those stages record lands in the process-wide tracer under the *same*
id, retrievable over the stats admin frames.  The error path is pinned
too: an ``ErrorReply`` to a traced request echoes the trace id back so
a failed request is still attributable.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.engine.engine import IdentificationEngine
from repro.exceptions import ProtocolError
from repro.net.client import NetworkClient, RemoteEndpoint
from repro.net.server import NetworkServer
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import EnrollmentAck
from repro.protocols.runners import run_enrollment, run_identification
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service.frontend import ServiceFrontend


@pytest.fixture
def net_params() -> SystemParams:
    return SystemParams.paper_defaults(n=32)


@pytest.fixture
def population(net_params):
    return UserPopulation(net_params, size=2,
                          noise=BoundedUniformNoise(net_params.t), seed=23)


@pytest.fixture
def traced_stack(net_params, fast_scheme, population):
    """Frontend-backed TCP server with tracing guaranteed on."""
    prior = obs.tracer.enabled
    obs.tracer.enabled = True
    engine = IdentificationEngine(net_params, shards=2)
    server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                  seed=b"trace-test-server")
    frontend = ServiceFrontend(server, workers=2)
    with NetworkServer(frontend, owns_endpoint=True) as net:
        yield net.address, net_params, fast_scheme
    obs.tracer.enabled = prior


class TestTracePropagation:
    def test_identification_spans_share_the_client_trace_id(
            self, traced_stack, population, watchdog):
        """One traced TCP identification run produces >= 4 named spans
        spanning net -> frontend -> engine -> verify, all under the id
        the client minted."""
        (host, port), params, scheme = traced_stack
        device = BiometricDevice(params, scheme, seed=b"trace-dev")
        with RemoteEndpoint.connect(host, port, trace=True) as remote:
            run = run_enrollment(device, remote, DuplexLink(), "alice",
                                 population.template(0))
            assert run.outcome.accepted
            run = run_identification(device, remote, DuplexLink(),
                                     population.genuine_reading(0))
            assert run.outcome.identified
            trace_id = remote.trace_id
        assert trace_id is not None and len(trace_id) == 16

        spans = obs.tracer.trace(trace_id)
        names = [s.name for s in spans]
        # Stage coverage across all four layers of the stack: the net
        # server serialized replies, the frontend queued and batched,
        # the engine scanned, the verify cache checked the signature.
        assert {"queue-wait", "batch-wait", "scan",
                "verify", "serialize"} <= set(names)
        assert len(set(names)) >= 4
        # Every span carries the one client-minted id by construction of
        # trace(); recording order (seq) must follow the pipeline.
        assert names.index("queue-wait") < names.index("scan")
        assert names.index("scan") < names.index("verify")
        # The same id is retrievable through the grouped-trace view the
        # stats frames serve.
        grouped = dict(obs.tracer.traces())
        assert trace_id.hex() in grouped

    def test_second_run_mints_a_fresh_trace_id(self, traced_stack,
                                               population, watchdog):
        (host, port), params, scheme = traced_stack
        device = BiometricDevice(params, scheme, seed=b"trace-dev-2")
        with RemoteEndpoint.connect(host, port, trace=True) as remote:
            run_enrollment(device, remote, DuplexLink(), "bob",
                           population.template(1))
            first = remote.trace_id
            run = run_identification(device, remote, DuplexLink(),
                                     population.genuine_reading(1))
            assert run.outcome.identified
            second = remote.trace_id
        assert first is not None and second is not None
        assert first != second  # one id per run, not per connection

    def test_untraced_client_stays_envelope_free(self, traced_stack,
                                                 population, watchdog):
        """The default (trace=False) client never learns a trace id and
        receives bare replies — wire-byte parity with the pre-obs
        protocol."""
        (host, port), params, scheme = traced_stack
        device = BiometricDevice(params, scheme, seed=b"trace-dev-3")
        with RemoteEndpoint.connect(host, port) as remote:
            run_enrollment(device, remote, DuplexLink(), "carol",
                           population.template(0))
            assert remote.trace_id is None
            assert remote.client.last_trace_id is None

    def test_error_reply_carries_the_trace_id(self, traced_stack,
                                              watchdog):
        """A traced request that fails comes back as an ErrorReply
        wrapped in the same trace envelope, so the client can attribute
        the failure."""
        (host, port), _params, _scheme = traced_stack
        # A reply-type message is not a request: the server answers with
        # ErrorReply(code="protocol") — still inside the trace envelope.
        bogus = EnrollmentAck(user_id="mallory", accepted=True)
        with NetworkClient(host, port) as client:
            trace_id = obs.mint_trace_id()
            with pytest.raises(ProtocolError):
                client.request(bogus, trace_id=trace_id)
            assert client.last_trace_id == trace_id
