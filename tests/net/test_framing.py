"""Tests for the TCP frame format (both the async and blocking helpers)."""

import asyncio
import socket

import pytest

from repro.exceptions import ProtocolError
from repro.net.framing import (
    DEFAULT_MAX_FRAME,
    PREFIX_BYTES,
    frame_buffers,
    frame_message,
    read_frame,
    recv_frame,
    send_frame,
)
from repro.protocols.messages import EnrollmentAck, Message, VerificationRequest

MSG = VerificationRequest(user_id="frame-test")


def _async_read(data: bytes, max_frame: int = DEFAULT_MAX_FRAME):
    """Feed raw bytes to a StreamReader and read one frame from it."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader, max_frame)
    return asyncio.run(go())


class TestFrameLayout:
    def test_prefix_plus_canonical_payload(self):
        frame = frame_message(MSG)
        payload = MSG.encode()
        assert frame[:PREFIX_BYTES] == len(payload).to_bytes(
            PREFIX_BYTES, "big")
        assert frame[PREFIX_BYTES:] == payload

    def test_sender_refuses_over_cap(self):
        with pytest.raises(ProtocolError, match="frame cap"):
            frame_message(MSG, max_frame=4)

    def test_payload_decodes_back(self):
        frame = frame_message(MSG)
        assert Message.decode(frame[PREFIX_BYTES:]) == MSG


class TestAsyncRead:
    def test_round_trip(self):
        assert _async_read(frame_message(MSG)) == MSG.encode()

    def test_clean_eof_returns_none(self):
        assert _async_read(b"") is None

    def test_mid_prefix_close(self):
        with pytest.raises(ProtocolError, match="mid frame prefix"):
            _async_read(b"\x00\x00")

    def test_mid_body_close(self):
        frame = frame_message(MSG)
        with pytest.raises(ProtocolError, match="mid frame body"):
            _async_read(frame[:-3])

    def test_hostile_length_prefix_rejected_before_body(self):
        # Claims ~4 GiB; must be refused on the prefix alone.
        with pytest.raises(ProtocolError, match="over the"):
            _async_read((0xFFFFFFF0).to_bytes(4, "big") + b"tiny",
                        max_frame=1024)

    def test_two_frames_back_to_back(self):
        other = EnrollmentAck(user_id="x", accepted=True)
        data = frame_message(MSG) + frame_message(other)

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(go())
        assert Message.decode(first) == MSG
        assert Message.decode(second) == other
        assert third is None


class TestBlockingHelpers:
    def test_socketpair_round_trip(self):
        left, right = socket.socketpair()
        try:
            sent = send_frame(left, MSG)
            assert sent == len(frame_message(MSG))
            assert recv_frame(right) == MSG.encode()
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_close_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(frame_message(MSG)[:-2])
            left.close()
            with pytest.raises(ProtocolError, match="closed after"):
                recv_frame(right)
        finally:
            right.close()

    def test_over_cap_length_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((1 << 30).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="over the"):
                recv_frame(right, max_frame=1024)
        finally:
            left.close()
            right.close()

    def test_sender_cap_matches_receiver_cap(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(ProtocolError, match="frame cap"):
                send_frame(left, MSG, max_frame=2)
        finally:
            left.close()
            right.close()


class TestZeroCopyPath:
    def test_frame_buffers_join_to_frame_message(self):
        buffers = frame_buffers(MSG)
        assert b"".join(buffers) == frame_message(MSG)
        # First buffer is the 4-byte prefix; the rest concatenate to the
        # canonical encoding without ever having been joined.
        assert b"".join(buffers[1:]) == MSG.encode()
        assert int.from_bytes(buffers[0], "big") == len(MSG.encode())

    def test_recv_returns_memoryview_and_decodes(self):
        """The blocking receive hands back a view, not a copy, and the
        decoder materialises fields at the leaves only."""
        left, right = socket.socketpair()
        try:
            send_frame(left, MSG)
            payload = recv_frame(right)
            assert isinstance(payload, memoryview)
            decoded = Message.decode(payload)
            assert decoded == MSG
            assert isinstance(decoded.user_id, str)  # leaf materialised
        finally:
            left.close()
            right.close()

    def test_hostile_prefix_refused_before_allocation(self):
        """A ~4 GiB claimed length must raise on the prefix alone — the
        receive buffer is sized only after the cap check, so the test
        passing without an allocation failure or a hang is the proof
        (symmetric with the async side's readexactly ordering)."""
        left, right = socket.socketpair()
        try:
            left.sendall((0xFFFFFFF0).to_bytes(4, "big") + b"body")
            with pytest.raises(ProtocolError, match="over the"):
                recv_frame(right, max_frame=1024)
        finally:
            left.close()
            right.close()

    def test_zero_length_frame_round_trips(self):
        left, right = socket.socketpair()
        try:
            left.sendall((0).to_bytes(PREFIX_BYTES, "big"))
            assert recv_frame(right) == b""
        finally:
            left.close()
            right.close()

    def test_bool_and_bytes_fields_survive_view_slicing(self):
        ack = EnrollmentAck(user_id="zc", accepted=True)
        left, right = socket.socketpair()
        try:
            send_frame(left, ack)
            decoded = Message.decode(recv_frame(right))
            assert decoded == ack
            assert decoded.accepted is True
        finally:
            left.close()
            right.close()
