"""Client resilience and warm-standby failover, end to end.

The acceptance scenario for the fault-tolerance work: a primary and a
journal-following standby serve the same population; a workload runs
through :class:`~repro.net.resilience.FailoverClient`; the primary is
killed mid-workload; and the assertion is *zero* failed and *zero*
wrongly-answered requests — the standby, having replicated the
enrollment journal, answers identically.
"""

import threading
import time

import pytest

from repro import faults
from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.engine.engine import IdentificationEngine
from repro.engine.journal import journal_path
from repro.exceptions import (
    RequestTimeoutError,
    ServiceOverloadError,
    TransientError,
)
from repro.net.client import RemoteEndpoint
from repro.net.replication import JournalFollower
from repro.net.resilience import FailoverClient, RetryPolicy
from repro.net.server import NetworkServer
from repro.protocols.device import BiometricDevice
from repro.protocols.runners import run_enrollment
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service.frontend import ServiceFrontend

N_USERS = 4


@pytest.fixture
def net_params() -> SystemParams:
    return SystemParams.paper_defaults(n=32)


@pytest.fixture
def population(net_params):
    return UserPopulation(net_params, size=N_USERS,
                          noise=BoundedUniformNoise(net_params.t), seed=23)


@pytest.fixture(autouse=True)
def _no_fault_leakage():
    yield
    faults.clear()


def _serve(engine, net_params, fast_scheme, tag: bytes, **net_kwargs):
    """A journal-capable engine behind frontend + TCP, ready to accept."""
    server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                  seed=b"failover-" + tag)
    frontend = ServiceFrontend(server, workers=2)
    net = NetworkServer(frontend, owns_endpoint=True, **net_kwargs)
    return server, frontend, net


class TestRetryPolicy:
    def test_backoff_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=0.5, jitter=0.5, seed=9)
        first = [policy.delays().next_delay() for _ in range(1)][0]
        again = policy.delays().next_delay()
        assert first == again  # same seed, same schedule
        schedule = policy.delays()
        delays = [schedule.next_delay() for _ in range(6)]
        # Jitter never exceeds +-50%, and the cap holds at every step.
        assert all(d <= 0.5 * 1.5 for d in delays)
        assert delays[0] <= 0.1 * 1.5

    def test_server_hint_is_a_floor(self):
        policy = RetryPolicy(base_delay_s=0.01, jitter=0.0, seed=0)
        schedule = policy.delays()
        assert schedule.next_delay(hint_ms=250) >= 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestEnrollmentAtMostOnce:
    def test_lost_ack_retry_does_not_duplicate(self, net_params, fast_scheme,
                                               population, watchdog):
        """Drop the first enrollment ack on the wire; the client's retry
        resends the *same* submission bytes and the server treats it as
        idempotent — exactly one record exists afterwards."""
        engine = IdentificationEngine(net_params, shards=2)
        _, frontend, net = _serve(engine, net_params, fast_scheme, b"dedup")
        device = BiometricDevice(net_params, fast_scheme, seed=b"dedup-dev")
        with net:
            host, port = net.address
            faults.install([{"point": "net.server.send", "style": "drop",
                             "times": 1}])
            with FailoverClient(
                    [(host, port)],
                    policy=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                                       jitter=0.0),
                    timeout_s=1.0) as client:
                ack = client.enroll(device, "solo",
                                    population.template(0))
            assert ack.accepted
            assert faults.fired("net.server.send") == 1
            assert client.retries == 1
        assert [r.user_id for r in engine] == ["solo"]

    def test_fresh_submission_for_same_id_still_refused(
            self, net_params, fast_scheme, population, watchdog):
        """The dedup is content-based, not name-based: a *different*
        submission for an enrolled id is refused, so retries can never
        silently replace someone's keys."""
        engine = IdentificationEngine(net_params, shards=2)
        _, frontend, net = _serve(engine, net_params, fast_scheme, b"dedup2")
        device = BiometricDevice(net_params, fast_scheme, seed=b"dedup2-dev")
        with net:
            host, port = net.address
            with FailoverClient([(host, port)], timeout_s=5.0) as client:
                assert client.enroll(device, "solo",
                                     population.template(0)).accepted
                # Same name, freshly minted keys -> refused, not replaced.
                ack = client.enroll(device, "solo", population.template(0))
                assert not ack.accepted
        assert len(engine) == 1


class TestTransientMapping:
    def test_read_deadline_maps_to_timeout(self, net_params, fast_scheme,
                                           population, watchdog):
        engine = IdentificationEngine(net_params, shards=2)
        _, frontend, net = _serve(engine, net_params, fast_scheme, b"to")
        device = BiometricDevice(net_params, fast_scheme, seed=b"to-dev")
        with net:
            host, port = net.address
            faults.install([{"point": "net.server.send", "style": "drop"}])
            with RemoteEndpoint.connect(host, port, timeout_s=0.3) as remote:
                with pytest.raises(RequestTimeoutError) as excinfo:
                    run_enrollment(device, remote, DuplexLink(), "t",
                                   population.template(0))
            # The typed error is both transient and a stdlib timeout.
            assert isinstance(excinfo.value, TransientError)
            assert isinstance(excinfo.value, TimeoutError)

    def test_overload_hint_reaches_the_client(self, net_params, fast_scheme,
                                              population, watchdog):
        engine = IdentificationEngine(net_params, shards=2)
        server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                      seed=b"failover-ovl")
        release = threading.Event()
        original = server.handle_enrollment
        server.handle_enrollment = \
            lambda submission: (release.wait(10.0), original(submission))[1]
        frontend = ServiceFrontend(server, max_queue=1,
                                   submit_timeout_s=0.05)
        try:
            # One op wedges the batcher; the size-1 queue fills behind
            # it; the refusal must carry a backoff hint.
            futures = [frontend._submit("enroll", None)]
            deadline = time.monotonic() + 5.0
            with pytest.raises(ServiceOverloadError) as excinfo:
                while time.monotonic() < deadline:
                    futures.append(frontend._submit("enroll", None))
            assert excinfo.value.retry_after_ms >= 10
            assert frontend.retry_after_ms() >= 10
        finally:
            release.set()
            frontend.close()


class TestFailover:
    def test_primary_kill_mid_workload_zero_loss(self, net_params,
                                                 fast_scheme, population,
                                                 tmp_path, watchdog):
        primary_engine = IdentificationEngine(
            net_params, shards=2, journal=journal_path(tmp_path / "primary"))
        standby_engine = IdentificationEngine(
            net_params, shards=2, journal=journal_path(tmp_path / "standby"))

        _, p_front, p_net = _serve(primary_engine, net_params, fast_scheme,
                                   b"ha")
        follower = None
        s_net = None
        try:
            p_net.start()
            p_host, p_port = p_net.address
            follower = JournalFollower(standby_engine, p_host, p_port,
                                       poll_interval_s=0.05)
            _, s_front, s_net = _serve(
                standby_engine, net_params, fast_scheme, b"ha",
                health_extra=follower.health_extra)
            s_net.start()
            s_host, s_port = s_net.address

            device = BiometricDevice(net_params, fast_scheme, seed=b"ha-dev")
            addresses = [(p_host, p_port), (s_host, s_port)]
            policy = RetryPolicy(max_attempts=6, base_delay_s=0.05,
                                 max_delay_s=0.5, seed=42)

            with FailoverClient(addresses, policy=policy,
                                timeout_s=2.0,
                                health_deadline_s=0.5) as enroller:
                for i, user_id in enumerate(population.user_ids()):
                    assert enroller.enroll(
                        device, user_id, population.template(i)).accepted

            deadline = time.monotonic() + 30
            while follower.applied_seq < N_USERS:
                assert time.monotonic() < deadline, "standby never caught up"
                time.sleep(0.02)
            assert follower.lag == 0

            # Replication parity before the storm: identical record sets.
            assert [r.user_id for r in standby_engine] == \
                   [r.user_id for r in primary_engine]
            health = follower.health_extra()
            assert health["follower"] and health["follower_lag"] == 0

            n_requests = 12
            kill_after = 4
            done = 0
            lock = threading.Lock()
            outcomes = []
            errors = []

            def kill_primary_then_count(i):
                nonlocal done
                with FailoverClient(addresses, policy=policy, timeout_s=2.0,
                                    health_deadline_s=0.5) as client:
                    user = i % N_USERS
                    run = client.identify(device,
                                          population.genuine_reading(user))
                    with lock:
                        outcomes.append(
                            (population.user_ids()[user], run.outcome))
                        done += 1
                        if done == kill_after:
                            p_net.close()  # the mid-workload primary kill

            threads = [threading.Thread(target=kill_primary_then_count,
                                        args=(i,), daemon=True)
                       for i in range(n_requests)]
            for t in threads:
                t.start()
                time.sleep(0.03)  # stagger so the kill lands mid-stream
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive(), "workload thread wedged"

            # Zero lost, zero wrongly answered.
            assert not errors
            assert len(outcomes) == n_requests
            for expected_id, outcome in outcomes:
                assert outcome.identified
                assert outcome.user_id == expected_id
        finally:
            if follower is not None:
                follower.close()
            p_net.close()
            if s_net is not None:
                s_net.close()

    def test_advance_prefers_ready_endpoint(self, net_params, fast_scheme,
                                            population, watchdog):
        """With the first endpoint dead, the client lands on the live one
        and stays there."""
        engine = IdentificationEngine(net_params, shards=2)
        _, frontend, net = _serve(engine, net_params, fast_scheme, b"adv")
        device = BiometricDevice(net_params, fast_scheme, seed=b"adv-dev")
        with net:
            host, port = net.address
            # A dead address first: nothing listens on port 1.
            with FailoverClient(
                    [("127.0.0.1", 1), (host, port)],
                    policy=RetryPolicy(max_attempts=4, base_delay_s=0.01,
                                       jitter=0.0),
                    timeout_s=1.0, health_deadline_s=0.5) as client:
                ack = client.enroll(device, "adv-user",
                                    population.template(0))
                assert ack.accepted
                assert client.failovers >= 1
                assert client.current_address == (host, port)


class TestCircuitBreaker:
    """The per-endpoint breaker state machine, plus its integration
    points: routing around a degraded primary and the overall deadline
    bounding the whole retry loop."""

    def test_breaker_state_machine(self):
        from repro.net.resilience import _Breaker
        b = _Breaker(threshold=3, cooldown_s=1.0)
        assert b.state(0.0) == "closed"
        assert not b.record_failure(0.0)
        assert not b.record_failure(0.0)
        assert b.record_failure(0.0)  # third consecutive failure trips
        assert b.state(0.5) == "open"
        assert b.state(1.5) == "half-open"
        b.reopen(1.5)  # half-open probe failed: new cooldown
        assert b.state(2.0) == "open"
        assert b.opens == 2
        b.record_success()  # half-open probe succeeded: fully closed
        assert b.state(3.0) == "closed"
        assert b.failures == 0

    def test_success_resets_the_consecutive_count(self):
        from repro.net.resilience import _Breaker
        b = _Breaker(threshold=3, cooldown_s=1.0)
        for _ in range(5):
            b.record_failure(0.0)
            b.record_success()
        assert b.state(0.0) == "closed"
        assert b.opens == 0

    def test_consecutive_failures_open_the_breaker(self, net_params,
                                                   fast_scheme, population,
                                                   watchdog):
        """Against a single dead endpoint, the retry loop's consecutive
        transport failures trip that endpoint's breaker open."""
        device = BiometricDevice(net_params, fast_scheme, seed=b"brk-dev")
        with FailoverClient(
                [("127.0.0.1", 1)],
                policy=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                                   jitter=0.0),
                timeout_s=0.5, health_deadline_s=0.2,
                breaker_threshold=3, breaker_cooldown_s=30.0) as client:
            with pytest.raises(Exception):
                client.enroll(device, "brk-user", population.template(0))
            assert client.breaker_states() == ["open"]
            assert client.breaker_opens >= 1

    def test_overall_deadline_bounds_the_retry_loop(self, net_params,
                                                    fast_scheme, population,
                                                    watchdog):
        """With ``overall_deadline_s`` set, attempts plus backoff sleeps
        never overrun the caller's total budget — the loop gives up
        early instead of sleeping past it."""
        device = BiometricDevice(net_params, fast_scheme, seed=b"ovd-dev")
        policy = RetryPolicy(max_attempts=8, base_delay_s=0.5,
                             multiplier=2.0, jitter=0.0)
        with FailoverClient(
                [("127.0.0.1", 1)], policy=policy,
                timeout_s=0.5, health_deadline_s=0.2,
                overall_deadline_s=0.3) as client:
            start = time.monotonic()
            with pytest.raises(Exception):
                client.enroll(device, "ovd-user", population.template(0))
            elapsed = time.monotonic() - start
            # Without the deadline the backoff schedule alone is ~60s.
            assert elapsed < 1.5

    def test_routes_around_degraded_primary(self, net_params, fast_scheme,
                                            population, watchdog):
        """A primary limping through its degraded serial path still
        answers health probes — but flags itself, and a ready-preferring
        failover client picks the healthy standby instead."""
        p_engine = IdentificationEngine(net_params, shards=2)
        _, p_frontend, p_net = _serve(p_engine, net_params, fast_scheme,
                                      b"degp")
        s_engine = IdentificationEngine(net_params, shards=2)
        _, _, s_net = _serve(s_engine, net_params, fast_scheme, b"degs")
        device = BiometricDevice(net_params, fast_scheme, seed=b"deg-dev")
        with p_net, s_net:
            # Force the primary onto its degraded serial path.
            p_frontend._degraded.set()
            assert p_frontend.health_snapshot()["degraded"] is True
            with FailoverClient(
                    [p_net.address, s_net.address],
                    policy=RetryPolicy(max_attempts=4, base_delay_s=0.01,
                                       jitter=0.0),
                    timeout_s=1.0, health_deadline_s=0.5) as client:
                # The first request starts on the degraded primary; any
                # failover advance must land on the healthy standby.
                client._advance()
                assert client.current_address == s_net.address
