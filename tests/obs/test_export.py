"""Tests for the Prometheus exposition renderer/parser and the human
table/trace renderers — all over the JSON-ready sample shape that a
``StatsReply`` ships, so remote rendering is covered by construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
    render_table,
    render_traces,
)


@pytest.fixture
def samples():
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("repro_demo_total", "Things counted.",
                    labels={"instance": "demo-0"})
    c.inc(3)
    g = reg.gauge("repro_demo_open", "Things open.")
    g.set(2)
    h = reg.histogram("repro_demo_seconds", "Demo latency.",
                      edges=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.004, 0.05, 0.5):
        h.observe(v)
    return reg.collect()


class TestPrometheusRoundTrip:
    def test_render_emits_headers_once(self, samples):
        text = render_prometheus(samples)
        assert text.count("# TYPE repro_demo_total counter") == 1
        assert "# HELP repro_demo_total Things counted." in text
        assert "# TYPE repro_demo_seconds histogram" in text

    def test_histogram_expansion(self, samples):
        text = render_prometheus(samples)
        assert 'repro_demo_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_demo_seconds_bucket{le="0.01"} 2' in text
        assert 'repro_demo_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_demo_seconds_count 4" in text

    def test_parse_inverts_render(self, samples):
        series = parse_prometheus(render_prometheus(samples))
        assert series["repro_demo_total"] == \
            [({"instance": "demo-0"}, 3.0)]
        assert series["repro_demo_open"] == [({}, 2.0)]
        buckets = dict(
            (labels["le"], value)
            for labels, value in series["repro_demo_seconds_bucket"])
        assert buckets["+Inf"] == 4.0
        assert series["repro_demo_seconds_count"] == [({}, 4.0)]

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total", labels={"path": 'a"b\\c\nd'})
        c.inc()
        series = parse_prometheus(render_prometheus(reg.collect()))
        (labels, value) = series["t_total"][0]
        assert labels == {"path": 'a"b\\c\nd'}
        assert value == 1.0

    @pytest.mark.parametrize("line", [
        "just_a_name",
        'bad{unterminated="x" 1',
        'bad{key=unquoted} 1',
        "name notanumber",
        "sp ace{a=\"b\"} x y",
    ])
    def test_parse_rejects_malformed_lines(self, line):
        with pytest.raises(ValueError):
            parse_prometheus(line + "\n")

    def test_parse_skips_comments_and_blanks(self):
        text = "# HELP x y\n\nx_total 1\n"
        assert parse_prometheus(text) == {"x_total": [({}, 1.0)]}


class TestRenderTable:
    def test_counter_gauge_histogram_rows(self, samples):
        table = render_table(samples)
        assert 'repro_demo_total{instance="demo-0"}' in table
        assert "counter" in table and "gauge" in table
        assert "count=4" in table
        assert "p50=" in table and "p99=" in table

    def test_table_percentiles_match_numpy_to_bucket_width(self):
        reg = MetricsRegistry()
        edges = (0.001, 0.005, 0.01, 0.05, 0.1)
        h = reg.histogram("t_seconds", edges=edges)
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 0.06, size=1000)
        for v in values:
            h.observe(float(v))
        p50_exact = float(np.percentile(values, 50))
        p50_est = h.quantile(0.50)
        bounds = (0.0,) + edges
        idx = next(i for i, e in enumerate(edges) if p50_exact <= e)
        assert abs(p50_est - p50_exact) <= edges[idx] - bounds[idx]

    def test_empty(self):
        assert render_table([]) == "(no metrics)\n"


class TestRenderTraces:
    def test_per_trace_listing(self):
        traces = [{
            "trace_id": "ab" * 16,
            "spans": [
                {"name": "queue-wait", "duration_s": 0.0001, "detail": ""},
                {"name": "scan", "duration_s": 0.002, "detail": "batch=4"},
            ],
        }]
        text = render_traces(traces)
        assert "trace " + "ab" * 16 in text
        assert "spans=2" in text
        assert "queue-wait" in text
        assert "[batch=4]" in text

    def test_empty(self):
        assert render_traces([]) == "(no traces)\n"
