"""Unit tests for the metrics registry and its instruments.

The histogram quantile sanity tests pin the estimator's accuracy
contract: linear interpolation inside the landing bucket can never be
further from numpy's exact percentile than the width of that bucket,
for any sample distribution.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_LATENCY_EDGES_S,
    MetricsRegistry,
    quantile_from_buckets,
)


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("t_total", "help")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("t_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_disabled_is_a_noop(self, reg):
        c = reg.counter("t_total")
        reg.enabled = False
        c.inc(100)
        assert c.value == 0
        reg.enabled = True
        c.inc()
        assert c.value == 1

    def test_sample_shape(self, reg):
        c = reg.counter("t_total", "h", labels={"instance": "x-0"})
        c.inc(2)
        assert c.sample() == {"name": "t_total", "kind": "counter",
                              "help": "h", "labels": {"instance": "x-0"},
                              "value": 2}


class TestGauge:
    def test_set_inc_dec_track_max(self, reg):
        g = reg.gauge("t")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6
        g.track_max(3)
        assert g.value == 6
        g.track_max(10)
        assert g.value == 10

    def test_pull_gauge_reads_owner(self, reg):
        class Owner(list):
            pass

        owner = Owner([1, 2, 3])
        g = reg.gauge("t", owner=owner, fn=len)
        assert g.value == 3
        owner.append(4)
        assert g.value == 4

    def test_pull_gauge_survives_dead_owner(self, reg):
        class Owner:
            pass

        owner = Owner()
        g = reg.gauge("t", owner=owner, fn=lambda _o: 7)
        assert g.value == 7
        del owner
        gc.collect()
        # Falls back to the last pushed value (0 by default), not a crash.
        assert g.value == 0


class TestHistogram:
    def test_bucket_walk(self, reg):
        h = reg.histogram("t_seconds", edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.bucket_counts() == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(106.0)

    def test_empty_quantile_is_nan(self, reg):
        h = reg.histogram("t_seconds", edges=(1.0,))
        assert np.isnan(h.quantile(0.5))

    def test_overflow_clamps_to_last_edge(self, reg):
        h = reg.histogram("t_seconds", edges=(1.0, 2.0))
        for _ in range(10):
            h.observe(50.0)
        assert h.quantile(0.5) == 2.0

    def test_q_out_of_range(self, reg):
        h = reg.histogram("t_seconds", edges=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_edges_must_ascend(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("t_seconds", edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("t_seconds", edges=())

    def test_disabled_observe_is_a_noop(self, reg):
        h = reg.histogram("t_seconds", edges=(1.0,))
        reg.enabled = False
        h.observe(0.5)
        assert h.count == 0

    @pytest.mark.parametrize("seed,dist", [
        (0, "uniform"), (1, "lognormal"), (2, "bimodal"),
    ])
    def test_quantile_sanity_vs_numpy(self, reg, seed, dist):
        """Estimator error is bounded by the landing bucket's width."""
        rng = np.random.default_rng(seed)
        if dist == "uniform":
            values = rng.uniform(0.0, 1.0, size=2000)
        elif dist == "lognormal":
            values = np.minimum(rng.lognormal(-6.0, 1.5, size=2000), 2.5)
        else:
            values = np.concatenate([
                rng.uniform(0.0002, 0.0008, size=1000),
                rng.uniform(0.02, 0.08, size=1000),
            ])
        edges = DEFAULT_LATENCY_EDGES_S
        h = reg.histogram("t_seconds", edges=edges)
        for v in values:
            h.observe(float(v))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.percentile(values, q * 100))
            estimate = h.quantile(q)
            # Width of the bucket the exact quantile lands in.
            bounds = (0.0,) + edges
            idx = next((i for i, e in enumerate(edges) if exact <= e),
                       len(edges) - 1)
            width = edges[idx] - bounds[idx]
            assert abs(estimate - exact) <= width, (
                f"{dist} q={q}: estimate {estimate} vs exact {exact} "
                f"(bucket width {width})"
            )

    def test_quantile_from_buckets_matches_live(self, reg):
        h = reg.histogram("t_seconds", edges=(0.001, 0.01, 0.1))
        rng = np.random.default_rng(3)
        for v in rng.uniform(0.0, 0.12, size=500):
            h.observe(float(v))
        counts = h.bucket_counts()
        for q in (0.25, 0.5, 0.9, 0.99):
            assert quantile_from_buckets(h.edges, counts, q) == \
                pytest.approx(h.quantile(q))

    def test_percentiles_triple(self, reg):
        h = reg.histogram("t_seconds", edges=(1.0, 2.0))
        h.observe(0.5)
        p50, p95, p99 = h.percentiles()
        assert p50 == h.quantile(0.50)
        assert p95 == h.quantile(0.95)
        assert p99 == h.quantile(0.99)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self, reg):
        a = reg.counter("t_total", labels={"instance": "x-0"})
        b = reg.counter("t_total", labels={"instance": "x-0"})
        assert a is b
        c = reg.counter("t_total", labels={"instance": "x-1"})
        assert c is not a

    def test_kind_collision_rejected(self, reg):
        c = reg.counter("t")  # held: the registry only weak-refs it
        with pytest.raises(ValueError):
            reg.gauge("t")
        assert c.value == 0

    def test_next_instance_is_unique(self, reg):
        assert reg.next_instance("engine") == {"instance": "engine-0"}
        assert reg.next_instance("engine") == {"instance": "engine-1"}
        assert reg.next_instance("cache") == {"instance": "cache-0"}

    def test_collect_sorted_and_json_ready(self, reg):
        import json

        b = reg.counter("b_total")
        b.inc()
        a = reg.gauge("a")
        a.set(2)
        h = reg.histogram("c_seconds", edges=(1.0,))
        h.observe(0.5)
        samples = reg.collect()
        assert [s["name"] for s in samples] == ["a", "b_total", "c_seconds"]
        json.dumps(samples)  # must not raise

    def test_collect_prunes_dead_instruments(self, reg):
        c = reg.counter("dead_total")
        assert len(reg.collect()) == 1
        del c
        gc.collect()
        assert reg.collect() == []
