"""Unit tests for the JSONL event log and its singleton wiring."""

from __future__ import annotations

import json

from repro import obs
from repro.obs import EventLog, mint_trace_id


class TestEventLog:
    def test_inert_until_opened(self, tmp_path):
        log = EventLog()
        log.emit("span", name="scan")  # must be a silent no-op
        assert log.path is None
        assert log.written == 0

    def test_emit_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.emit("audit", event="enroll", user="alice")
        log.emit("span", name="scan", duration_s=0.002)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["kind"] == "audit"
        assert first["event"] == "enroll"
        assert "ts" in first
        assert second["kind"] == "span"
        assert second["duration_s"] == 0.002
        assert log.written == 2

    def test_bytes_fields_hex_encode(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        tid = mint_trace_id()
        log.emit("span", trace_id=tid)
        log.close()
        assert json.loads(path.read_text())["trace_id"] == tid.hex()

    def test_close_returns_to_inert(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path))
        log.close()
        log.emit("span", name="scan")  # no crash, no write
        assert path.read_text() == ""

    def test_open_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for _ in range(2):
            log = EventLog(str(path))
            log.emit("audit", event="tick")
            log.close()
        assert len(path.read_text().splitlines()) == 2


class TestSingletonWiring:
    def test_spans_are_mirrored_into_the_event_log(self, tmp_path):
        """The obs package wires ``tracer.on_span`` to ``events.emit``."""
        path = tmp_path / "events.jsonl"
        prior_enabled = obs.tracer.enabled
        obs.configure(tracing_enabled=True, events_path=str(path))
        try:
            tid = mint_trace_id()
            obs.tracer.record("scan", 0.004, trace_id=tid, detail="batch=2")
        finally:
            obs.events.close()
            obs.configure(tracing_enabled=prior_enabled)
        span_events = [json.loads(line)
                       for line in path.read_text().splitlines()
                       if json.loads(line)["kind"] == "span"]
        mine = [e for e in span_events if e["trace_id"] == tid.hex()]
        assert len(mine) == 1
        assert mine[0]["name"] == "scan"
        assert mine[0]["detail"] == "batch=2"
