"""Unit tests for trace ids, thread-local binding, and the span ring."""

from __future__ import annotations

import threading

from repro.obs import Span, Tracer, mint_trace_id


def test_mint_trace_id_shape_and_uniqueness():
    ids = {mint_trace_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(isinstance(t, bytes) and len(t) == 16 for t in ids)


class TestBinding:
    def test_bind_and_current(self):
        tracer = Tracer()
        assert tracer.current() is None
        tid = mint_trace_id()
        with tracer.bind(tid):
            assert tracer.current() == tid
        assert tracer.current() is None

    def test_nested_bind_restores(self):
        tracer = Tracer()
        outer, inner = mint_trace_id(), mint_trace_id()
        with tracer.bind(outer):
            with tracer.bind(inner):
                assert tracer.current() == inner
            assert tracer.current() == outer

    def test_bind_none_is_an_explicit_no_trace_scope(self):
        tracer = Tracer()
        tid = mint_trace_id()
        with tracer.bind(tid):
            with tracer.bind(None):
                assert tracer.current() is None
                tracer.record("scan", 0.001)
        assert tracer.spans() == []  # the None scope dropped the span

    def test_binding_is_thread_local(self):
        tracer = Tracer()
        tid = mint_trace_id()
        seen_in_thread: list[bytes | None] = []

        def worker():
            seen_in_thread.append(tracer.current())

        with tracer.bind(tid):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen_in_thread == [None]


class TestRecording:
    def test_record_uses_bound_id(self):
        tracer = Tracer()
        tid = mint_trace_id()
        with tracer.bind(tid):
            tracer.record("scan", 0.002, detail="batch=4")
        (span,) = tracer.spans()
        assert span.trace_id == tid
        assert span.name == "scan"
        assert span.detail == "batch=4"

    def test_explicit_id_beats_binding(self):
        tracer = Tracer()
        bound, explicit = mint_trace_id(), mint_trace_id()
        with tracer.bind(bound):
            tracer.record("serialize", 0.001, trace_id=explicit)
        assert tracer.spans()[0].trace_id == explicit

    def test_unbound_record_is_dropped(self):
        tracer = Tracer()
        tracer.record("scan", 0.001)
        assert tracer.spans() == []

    def test_disabled_record_is_dropped(self):
        tracer = Tracer(enabled=False)
        with tracer.bind(mint_trace_id()):
            tracer.record("scan", 0.001)
        assert tracer.spans() == []

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=8)
        with tracer.bind(mint_trace_id()):
            for i in range(20):
                tracer.record("scan", 0.001, detail=str(i))
        spans = tracer.spans()
        assert len(spans) == 8
        assert [s.detail for s in spans] == [str(i) for i in range(12, 20)]

    def test_span_contextmanager_times_body(self):
        tracer = Tracer()
        with tracer.bind(mint_trace_id()):
            with tracer.span("verify", detail="warm"):
                pass
        (span,) = tracer.spans()
        assert span.name == "verify"
        assert span.duration_s >= 0.0

    def test_on_span_sink_sees_every_span(self):
        tracer = Tracer()
        seen: list[Span] = []
        tracer.on_span = seen.append
        with tracer.bind(mint_trace_id()):
            tracer.record("scan", 0.001)
        assert [s.name for s in seen] == ["scan"]

    def test_as_dict_hexes_the_id(self):
        tracer = Tracer()
        tid = mint_trace_id()
        tracer.record("scan", 0.001, trace_id=tid)
        d = tracer.spans()[0].as_dict()
        assert d["trace_id"] == tid.hex()
        assert d["name"] == "scan"


class TestReading:
    def test_trace_orders_by_seq_across_threads(self):
        tracer = Tracer()
        tid = mint_trace_id()
        tracer.record("queue-wait", 0.001, trace_id=tid)

        def worker():
            tracer.record("scan", 0.002, trace_id=tid)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        tracer.record("serialize", 0.003, trace_id=tid)
        names = [s.name for s in tracer.trace(tid)]
        assert names == ["queue-wait", "scan", "serialize"]

    def test_traces_groups_and_limits(self):
        tracer = Tracer()
        first, second, third = (mint_trace_id() for _ in range(3))
        for tid in (first, second, third):
            tracer.record("scan", 0.001, trace_id=tid)
            tracer.record("verify", 0.001, trace_id=tid)
        everything = tracer.traces()
        assert [hex_id for hex_id, _ in everything] == \
            [first.hex(), second.hex(), third.hex()]
        limited = tracer.traces(limit=2)
        assert [hex_id for hex_id, _ in limited] == \
            [second.hex(), third.hex()]
        assert tracer.traces(limit=0) == []

    def test_traces_json_shape(self):
        import json

        tracer = Tracer()
        tid = mint_trace_id()
        tracer.record("scan", 0.001, trace_id=tid)
        payload = tracer.traces_json()
        assert payload == [{"trace_id": tid.hex(),
                            "spans": [tracer.spans()[0].as_dict()]}]
        json.dumps(payload)  # must not raise

    def test_clear(self):
        tracer = Tracer()
        tracer.record("scan", 0.001, trace_id=mint_trace_id())
        tracer.clear()
        assert tracer.spans() == []
