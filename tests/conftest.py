"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.params import SystemParams
from repro.crypto.dsa import Dsa
from repro.crypto.dsa_groups import GROUP_512
from repro.crypto.prng import HmacDrbg

# Property tests exercise numpy-heavy code whose first call pays JIT-ish
# warmup (ufunc dispatch, table builds); a wall-clock deadline would flake.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def small_params() -> SystemParams:
    """Tiny line (ka=8, v=8, t=1, n=16) — exhaustive-friendly."""
    return SystemParams.small_test()


@pytest.fixture
def paper_params() -> SystemParams:
    """Paper geometry (a=100, k=4, v=500, t=100) at a test-sized dimension."""
    return SystemParams.paper_defaults(n=100)


@pytest.fixture
def fast_scheme() -> Dsa:
    """DSA over the 512-bit test group — fast enough for unit tests."""
    return Dsa(GROUP_512)


@pytest.fixture
def drbg() -> HmacDrbg:
    return HmacDrbg(b"test-drbg-seed", personalization=b"tests")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
