"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.params import SystemParams
from repro.crypto.dsa import Dsa
from repro.crypto.dsa_groups import GROUP_512
from repro.crypto.prng import HmacDrbg

# Property tests exercise numpy-heavy code whose first call pays JIT-ish
# warmup (ufunc dispatch, table builds); a wall-clock deadline would flake.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def small_params() -> SystemParams:
    """Tiny line (ka=8, v=8, t=1, n=16) — exhaustive-friendly."""
    return SystemParams.small_test()


@pytest.fixture
def paper_params() -> SystemParams:
    """Paper geometry (a=100, k=4, v=500, t=100) at a test-sized dimension."""
    return SystemParams.paper_defaults(n=100)


@pytest.fixture
def fast_scheme() -> Dsa:
    """DSA over the 512-bit test group — fast enough for unit tests."""
    return Dsa(GROUP_512)


@pytest.fixture
def drbg() -> HmacDrbg:
    return HmacDrbg(b"test-drbg-seed", personalization=b"tests")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def watchdog():
    """Per-test deadline for concurrency tests: a deadlocked queue or
    lost wakeup raises ``TimeoutError`` inside the test instead of
    hanging the whole suite.  SIGALRM-based (no-op where unavailable);
    the main thread's blocking waits are interruptible by signals."""
    import signal

    if not hasattr(signal, "SIGALRM"):  # non-POSIX fallback: no guard
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError("concurrency test exceeded its 90s deadline")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, 90.0)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
