"""Tests for the security report and false-close Monte-Carlo validator."""

import pytest

from repro.analysis.security import (
    advise_dimension,
    measure_false_close_rate,
    security_report,
)
from repro.core.params import SystemParams
from repro.exceptions import ParameterError


class TestSecurityReport:
    def test_paper_report_values(self):
        report = security_report(SystemParams.paper_defaults(n=5000))
        assert report.residual_entropy_bits == pytest.approx(44_829, abs=1)
        assert report.storage_bits == pytest.approx(43_237, abs=5)
        assert report.false_close_bound_log2 == pytest.approx(-4968, abs=5)
        assert report.false_close_exact_log2 < report.false_close_bound_log2

    def test_rows_printable(self):
        report = security_report(SystemParams.paper_defaults(n=5000))
        rows = dict(report.rows())
        assert rows["a"] == "100"
        assert rows["Rep. Range"] == "[-100000, 100000]"
        assert "bits" in rows["m~ (residual)"]


class TestMonteCarloFalseClose:
    def test_rate_matches_closed_form_n1(self):
        """n=1: rate should be ~ (2t+1)/ka (the observable regime)."""
        params = SystemParams(a=100, k=4, v=500, t=100, n=1)
        rate = measure_false_close_rate(params, trials=4000, seed=1)
        assert rate == pytest.approx(params.false_close_bound, abs=0.05)

    def test_rate_decays_with_dimension(self):
        """Doubling n should roughly square the rate (independence)."""
        base = SystemParams(a=10, k=4, v=8, t=9, n=2)
        double = base.with_dimension(4)
        r2 = measure_false_close_rate(base, trials=3000, seed=2)
        r4 = measure_false_close_rate(double, trials=3000, seed=3)
        assert r4 < r2
        assert r4 == pytest.approx(r2 ** 2, abs=0.1)

    def test_zero_at_moderate_dimension(self):
        params = SystemParams.paper_defaults(n=64)
        assert measure_false_close_rate(params, trials=500, seed=4) == 0.0

    def test_rejects_zero_trials(self):
        with pytest.raises(ParameterError):
            measure_false_close_rate(SystemParams.small_test(), trials=0)


class TestAdviseDimension:
    def test_paper_parameters(self):
        params = SystemParams.paper_defaults(n=1)
        # ~0.9934 bits per coordinate -> ~129 coords for 128-bit security.
        n = advise_dimension(params, target_collision_exponent=128)
        assert 128 <= n <= 135

    def test_bound_actually_met(self):
        params = SystemParams.paper_defaults(n=1)
        n = advise_dimension(params, target_collision_exponent=80)
        sized = params.with_dimension(n)
        assert sized.false_close_bound_log2 <= -80

    def test_rejects_degenerate_threshold(self):
        """With integer constraints, t < ka/2 always keeps (2t+1)/ka < 1,
        so the guard is unreachable via the constructor; exercise it with
        a stand-in parameter object."""
        from repro.analysis import security as sec

        class DegenerateParams:
            t = 10
            interval_width = 20  # (2*10+1)/20 > 1

        with pytest.raises(ParameterError, match="threshold too large"):
            sec.advise_dimension(DegenerateParams(), 10)
