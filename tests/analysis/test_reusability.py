"""Tests for the reusability analysis (extension module)."""

import math

import pytest

from repro.analysis.reusability import (
    code_offset_reuse_leakage,
    multi_sketch_joint,
    residual_entropy_after_enrollments,
)
from repro.core.params import SystemParams
from repro.exceptions import ParameterError

PARAMS = SystemParams(a=2, k=4, v=8, t=3, n=1)


class TestMultiSketchJoint:
    def test_normalised(self):
        joint = multi_sketch_joint(PARAMS, enrollments=2)
        assert sum(joint.values()) == pytest.approx(1.0)

    def test_single_enrollment_matches_theorem3_distribution(self):
        from repro.analysis.entropy import average_min_entropy

        joint = multi_sketch_joint(PARAMS, enrollments=1)
        assert average_min_entropy(joint) == pytest.approx(
            math.log2(PARAMS.v))

    def test_sketch_tuples_have_requested_length(self):
        joint = multi_sketch_joint(PARAMS, enrollments=3)
        assert all(len(sketches) == 3 for (_, sketches) in joint)

    def test_movements_bounded(self):
        joint = multi_sketch_joint(PARAMS, enrollments=2)
        half = PARAMS.interval_width // 2
        for _, sketches in joint:
            assert all(abs(s) <= half for s in sketches)

    def test_rejects_zero_enrollments(self):
        with pytest.raises(ParameterError):
            multi_sketch_joint(PARAMS, enrollments=0)

    def test_rejects_wrong_offset_count(self):
        with pytest.raises(ParameterError, match="one noise offset"):
            multi_sketch_joint(PARAMS, enrollments=2, noise_offsets=(0,))

    def test_rejects_oversized_noise(self):
        with pytest.raises(ParameterError, match="<= t"):
            multi_sketch_joint(PARAMS, enrollments=1,
                               noise_offsets=(PARAMS.t + 1,))

    def test_enumeration_cap(self):
        big = SystemParams.paper_defaults(n=1)
        with pytest.raises(ParameterError, match="cap"):
            multi_sketch_joint(big, enrollments=1, max_points=100)


class TestReusabilityTheorem:
    """The headline: residual entropy is log2(v) for every m."""

    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_same_template_no_extra_leakage(self, m):
        h = residual_entropy_after_enrollments(PARAMS, m)
        assert h == pytest.approx(math.log2(PARAMS.v), abs=1e-9)

    @pytest.mark.parametrize("offsets", [(0, 1), (0, 3), (0, -3, 2),
                                         (3, -3), (1, 2, 3)])
    def test_noisy_reenrollment_no_extra_leakage(self, offsets):
        h = residual_entropy_after_enrollments(PARAMS, len(offsets),
                                               noise_offsets=offsets)
        assert h == pytest.approx(math.log2(PARAMS.v), abs=1e-9)

    @pytest.mark.parametrize("a,k,v", [(1, 4, 4), (3, 2, 5), (2, 6, 4)])
    def test_holds_across_geometries(self, a, k, v):
        params = SystemParams(a=a, k=k, v=v, t=max(1, k * a // 2 - 1), n=1)
        h = residual_entropy_after_enrollments(params, 3)
        assert h == pytest.approx(math.log2(v), abs=1e-9)


class TestCodeOffsetContrast:
    def test_single_enrollment_no_leakage(self):
        assert code_offset_reuse_leakage(255, 0.1, 1) == 0.0

    def test_noiseless_reenrollment_no_leakage(self):
        assert code_offset_reuse_leakage(255, 0.0, 4) == 0.0

    def test_leakage_grows_with_enrollments(self):
        two = code_offset_reuse_leakage(255, 0.1, 2)
        four = code_offset_reuse_leakage(255, 0.1, 4)
        assert 0 < two < four

    def test_rejects_bad_probability(self):
        with pytest.raises(ParameterError):
            code_offset_reuse_leakage(255, 0.7, 2)

    def test_rejects_zero_enrollments(self):
        with pytest.raises(ParameterError):
            code_offset_reuse_leakage(255, 0.1, 0)
