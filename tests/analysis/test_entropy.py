"""Tests for entropy tools, including the empirical Theorem 3 check."""

import math

import pytest

from repro.analysis.entropy import (
    average_min_entropy,
    empirical_distribution,
    empirical_min_entropy,
    min_entropy,
    sketch_joint_distribution,
    statistical_distance,
    uniformity_distance,
)
from repro.core.params import SystemParams
from repro.exceptions import ParameterError


class TestMinEntropy:
    def test_uniform(self):
        dist = {i: 0.25 for i in range(4)}
        assert min_entropy(dist) == pytest.approx(2.0)

    def test_point_mass(self):
        assert min_entropy({"a": 1.0}) == pytest.approx(0.0)

    def test_skewed(self):
        dist = {"a": 0.5, "b": 0.25, "c": 0.25}
        assert min_entropy(dist) == pytest.approx(1.0)

    def test_rejects_unnormalised(self):
        with pytest.raises(ParameterError, match="sums to"):
            min_entropy({"a": 0.3, "b": 0.3})

    def test_rejects_negative(self):
        with pytest.raises(ParameterError, match="negative"):
            min_entropy({"a": 1.5, "b": -0.5})

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            min_entropy({})


class TestAverageMinEntropy:
    def test_independent_variables(self):
        """A independent of B: conditioning changes nothing."""
        joint = {(a, b): 0.25 for a in "xy" for b in "uv"}
        assert average_min_entropy(joint) == pytest.approx(1.0)

    def test_fully_determined(self):
        """B reveals A completely: zero residual entropy."""
        joint = {("x", 0): 0.5, ("y", 1): 0.5}
        assert average_min_entropy(joint) == pytest.approx(0.0)

    def test_paper_example_shape(self):
        """Conditioning can cost at most log2(support of B) bits."""
        joint = {
            ("a", 0): 0.25, ("b", 0): 0.25,
            ("a", 1): 0.25, ("b", 1): 0.25,
        }
        h_a = 1.0  # A uniform over {a, b}
        assert average_min_entropy(joint) >= h_a - 1.0


class TestTheorem3Empirical:
    """Exact verification of H~(X|S) = log2(v) on enumerable lines."""

    @pytest.mark.parametrize("a,k,v", [(2, 4, 8), (1, 4, 16), (3, 2, 5),
                                       (2, 6, 4)])
    def test_residual_entropy_is_log_v(self, a, k, v):
        t = max(1, k * a // 2 - 1)
        params = SystemParams(a=a, k=k, v=v, t=t, n=1)
        # Joint over (A=x, B=s); conditioning on the sketch coordinate must
        # leave exactly log2(v) bits (Theorem 3 with n=1).
        joint = sketch_joint_distribution(params)
        assert average_min_entropy(joint) == pytest.approx(
            math.log2(v), abs=1e-9
        )

    def test_joint_is_normalised(self):
        params = SystemParams(a=2, k=4, v=8, t=3, n=1)
        joint = sketch_joint_distribution(params)
        assert sum(joint.values()) == pytest.approx(1.0)

    def test_movement_support(self):
        """Movements range over [-ka/2, ka/2] and nothing else."""
        params = SystemParams(a=2, k=4, v=8, t=3, n=1)
        joint = sketch_joint_distribution(params)
        movements = {s for (_, s) in joint}
        assert movements <= set(range(-4, 5))
        assert 4 in movements and -4 in movements  # boundary coins

    def test_enumeration_cap(self):
        params = SystemParams.paper_defaults(n=1)
        with pytest.raises(ParameterError, match="cap"):
            sketch_joint_distribution(params, max_points=1000)


class TestStatisticalDistance:
    def test_identical_distributions(self):
        dist = {"a": 0.5, "b": 0.5}
        assert statistical_distance(dist, dist) == pytest.approx(0.0)

    def test_disjoint_supports(self):
        assert statistical_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)

    def test_known_value(self):
        d1 = {"a": 0.75, "b": 0.25}
        d2 = {"a": 0.25, "b": 0.75}
        assert statistical_distance(d1, d2) == pytest.approx(0.5)

    def test_symmetry(self):
        d1 = {"a": 0.6, "b": 0.4}
        d2 = {"a": 0.1, "b": 0.9}
        assert statistical_distance(d1, d2) == statistical_distance(d2, d1)


class TestEmpirical:
    def test_distribution_counts(self):
        dist = empirical_distribution(["x", "x", "y", "z"])
        assert dist == {"x": 0.5, "y": 0.25, "z": 0.25}

    def test_empirical_min_entropy(self):
        samples = ["a"] * 50 + ["b"] * 50
        assert empirical_min_entropy(samples) == pytest.approx(1.0)

    def test_no_samples_rejected(self):
        with pytest.raises(ParameterError):
            empirical_distribution([])

    def test_uniformity_distance_uniform_samples(self):
        samples = list(range(16)) * 64  # perfectly uniform on 16 buckets
        assert uniformity_distance(samples, 16) == pytest.approx(0.0)

    def test_uniformity_distance_constant_samples(self):
        samples = [0] * 100
        # mass 1 on one bucket vs 1/16 each: SD = 1 - 1/16.
        assert uniformity_distance(samples, 16) == pytest.approx(15 / 16)

    def test_uniformity_rejects_bad_support(self):
        with pytest.raises(ParameterError):
            uniformity_distance([1], 0)
