"""Tests for sketch matching: Theorem 2 and the conditions equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    match_matrix,
    ring_distance_ka,
    sketches_match,
    sketches_match_literal,
)
from repro.core.params import SystemParams
from repro.core.sketch import ChebyshevSketch
from repro.crypto.prng import HmacDrbg


def _movement_strategy(params: SystemParams):
    half = params.interval_width // 2
    return st.lists(
        st.integers(-half, half), min_size=params.n, max_size=params.n
    ).map(lambda xs: np.array(xs, dtype=np.int64))


class TestEquivalence:
    """The paper's conditions (1)-(4) == ring distance <= t, coordinate-wise."""

    @given(data=st.data())
    @settings(max_examples=200)
    def test_literal_equals_ring_form(self, data):
        params = SystemParams(a=5, k=4, v=6, t=7, n=8)
        s = data.draw(_movement_strategy(params))
        s_prime = data.draw(_movement_strategy(params))
        assert sketches_match(s, s_prime, params) == \
            sketches_match_literal(s, s_prime, params)

    @given(data=st.data())
    @settings(max_examples=100)
    def test_literal_equals_ring_form_paper_geometry(self, data):
        params = SystemParams(a=100, k=4, v=500, t=100, n=4)
        s = data.draw(_movement_strategy(params))
        s_prime = data.draw(_movement_strategy(params))
        assert sketches_match(s, s_prime, params) == \
            sketches_match_literal(s, s_prime, params)

    def test_half_interval_endpoints_are_ring_equal(self):
        """+ka/2 and -ka/2 are the same movement modulo the interval."""
        params = SystemParams(a=5, k=4, v=6, t=3, n=1)
        half = params.interval_width // 2
        s = np.array([half])
        s_prime = np.array([-half])
        assert sketches_match(s, s_prime, params)
        assert sketches_match_literal(s, s_prime, params)


class TestTheorem2Completeness:
    """Close biometrics always produce matching sketches."""

    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=60)
    def test_genuine_pair_matches(self, seed):
        params = SystemParams(a=10, k=4, v=12, t=9, n=12)
        sk = ChebyshevSketch(params)
        rng = np.random.default_rng(seed)
        x = sk.line.uniform_vector(rng)
        noise = rng.integers(-params.t, params.t + 1, size=params.n)
        y = sk.line.reduce(x + noise)
        s = sk.sketch(x, HmacDrbg(seed.to_bytes(3, "big") + b"a"))
        s_prime = sk.sketch(y, HmacDrbg(seed.to_bytes(3, "big") + b"b"))
        assert sketches_match(s, s_prime, params)
        assert sketches_match_literal(s, s_prime, params)

    def test_genuine_pair_matches_across_seam(self):
        params = SystemParams.paper_defaults(n=16)
        sk = ChebyshevSketch(params)
        x = np.full(params.n, sk.line.half_range - 1, dtype=np.int64)
        y = sk.line.reduce(x + params.t)
        s = sk.sketch(x, HmacDrbg(b"s1"))
        s_prime = sk.sketch(y, HmacDrbg(b"s2"))
        assert sketches_match(s, s_prime, params)


class TestSoundness:
    """Unrelated templates almost never match (false-close probability)."""

    def test_unrelated_rarely_match_at_n32(self):
        params = SystemParams.paper_defaults(n=32)
        sk = ChebyshevSketch(params)
        rng = np.random.default_rng(0)
        hits = 0
        trials = 300
        for i in range(trials):
            s = sk.sketch(sk.line.uniform_vector(rng), HmacDrbg(bytes([i % 256, 1])))
            s_prime = sk.sketch(sk.line.uniform_vector(rng),
                                HmacDrbg(bytes([i % 256, 2])))
            hits += sketches_match(s, s_prime, params)
        # Bound: (201/400)^32 ~ 2.7e-10; 300 trials should see none.
        assert hits == 0

    def test_single_coordinate_collision_rate(self):
        """Per-coordinate false-close rate ~ (2t+1)/ka (the paper's estimate)."""
        params = SystemParams(a=100, k=4, v=500, t=100, n=1)
        sk = ChebyshevSketch(params)
        rng = np.random.default_rng(1)
        hits = 0
        trials = 4000
        for i in range(trials):
            s = sk.sketch(sk.line.uniform_vector(rng),
                          HmacDrbg(i.to_bytes(2, "big") + b"x"))
            s_prime = sk.sketch(sk.line.uniform_vector(rng),
                                HmacDrbg(i.to_bytes(2, "big") + b"y"))
            hits += sketches_match(s, s_prime, params)
        rate = hits / trials
        expected = (2 * params.t + 1) / params.interval_width  # 0.5025
        assert rate == pytest.approx(expected, abs=0.05)


class TestRingDistance:
    def test_zero_for_equal(self):
        assert np.all(ring_distance_ka(np.array([3]), np.array([3]), 40) == 0)

    def test_scalar_inputs_supported(self):
        assert ring_distance_ka(5, 3, 20) == 2
        assert ring_distance_ka(-19, 19, 40) == 2
        assert ring_distance_ka(7, 7, 40) == 0

    def test_wraps(self):
        # distance between -19 and 19 on a ring of 40 is 2.
        assert ring_distance_ka(np.array([-19]), np.array([19]), 40)[0] == 2

    def test_max_is_half_ring(self):
        assert ring_distance_ka(np.array([0]), np.array([20]), 40)[0] == 20

    @given(a=st.integers(-200, 200), b=st.integers(-200, 200))
    def test_symmetric(self, a, b):
        d1 = ring_distance_ka(np.array([a]), np.array([b]), 40)[0]
        d2 = ring_distance_ka(np.array([b]), np.array([a]), 40)[0]
        assert d1 == d2


class TestMatchMatrix:
    def test_matches_rowwise(self):
        params = SystemParams(a=10, k=4, v=6, t=5, n=3)
        probe = np.array([0, 10, -10])
        enrolled = np.stack([
            probe,                       # exact: match
            probe + params.t,            # at threshold: match
            probe + params.t + 1,        # just beyond: no match
        ])
        result = match_matrix(enrolled, probe, params)
        assert result.tolist() == [True, True, False]

    def test_rejects_non_matrix(self):
        params = SystemParams.small_test()
        with pytest.raises(ValueError, match="2-D"):
            match_matrix(np.zeros(16, dtype=np.int64),
                         np.zeros(16, dtype=np.int64), params)

    def test_agrees_with_scalar_form(self):
        params = SystemParams(a=7, k=4, v=9, t=6, n=5)
        rng = np.random.default_rng(3)
        half = params.interval_width // 2
        enrolled = rng.integers(-half, half + 1, size=(20, params.n))
        probe = rng.integers(-half, half + 1, size=params.n)
        matrix_result = match_matrix(enrolled, probe, params)
        scalar_result = np.array([
            sketches_match(row, probe, params) for row in enrolled
        ])
        assert np.array_equal(matrix_result, scalar_result)
