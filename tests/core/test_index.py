"""Tests for the sketch search structures (scan, prefix index, naive loop)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import (
    NaiveLoopIndex,
    PrefixBucketIndex,
    VectorizedScanIndex,
    batch_match_rows,
)
from repro.core.matching import match_matrix
from repro.core.params import SystemParams
from repro.core.sketch import ChebyshevSketch
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError

INDEX_FACTORIES = [
    pytest.param(lambda p: VectorizedScanIndex(p), id="scan"),
    pytest.param(lambda p: PrefixBucketIndex(p, depth=3), id="prefix"),
    pytest.param(lambda p: NaiveLoopIndex(p), id="naive"),
]


def _population_sketches(params, n_users, seed=0):
    sk = ChebyshevSketch(params)
    rng = np.random.default_rng(seed)
    templates = [sk.line.uniform_vector(rng) for _ in range(n_users)]
    sketches = [
        sk.sketch(x, HmacDrbg(i.to_bytes(2, "big"))) for i, x in enumerate(templates)
    ]
    return sk, templates, sketches


@pytest.mark.parametrize("factory", INDEX_FACTORIES)
class TestSearchCorrectness:
    def test_finds_enrolled_user(self, factory, paper_params):
        sk, templates, sketches = _population_sketches(paper_params, 25)
        index = factory(paper_params)
        for s in sketches:
            index.add(s)
        rng = np.random.default_rng(99)
        target = 13
        noisy = sk.line.reduce(
            templates[target]
            + rng.integers(-paper_params.t, paper_params.t + 1, paper_params.n)
        )
        probe = sk.sketch(noisy, HmacDrbg(b"probe"))
        assert index.search(probe) == [target]

    def test_unknown_user_returns_empty(self, factory, paper_params):
        sk, _, sketches = _population_sketches(paper_params, 25)
        index = factory(paper_params)
        for s in sketches:
            index.add(s)
        rng = np.random.default_rng(7)
        probe = sk.sketch(sk.line.uniform_vector(rng), HmacDrbg(b"imp"))
        assert index.search(probe) == []

    def test_empty_index_returns_empty(self, factory, paper_params):
        index = factory(paper_params)
        probe = np.zeros(paper_params.n, dtype=np.int64)
        assert index.search(probe) == []

    def test_add_returns_sequential_ids(self, factory, paper_params):
        _, _, sketches = _population_sketches(paper_params, 5)
        index = factory(paper_params)
        assert [index.add(s) for s in sketches] == [0, 1, 2, 3, 4]
        assert len(index) == 5

    def test_rejects_wrong_shape(self, factory, paper_params):
        index = factory(paper_params)
        with pytest.raises(ParameterError):
            index.add(np.zeros(3, dtype=np.int64))
        with pytest.raises(ParameterError):
            index.search(np.zeros(3, dtype=np.int64))

    def test_add_many_equals_sequential_adds(self, factory, paper_params):
        """Bulk insertion must be indistinguishable from looping add()."""
        sk, templates, sketches = _population_sketches(paper_params, 12)
        bulk = factory(paper_params)
        serial = factory(paper_params)
        assert bulk.add_many(np.stack(sketches)) == list(range(12))
        for s in sketches:
            serial.add(s)
        assert len(bulk) == len(serial) == 12
        probe = sk.sketch(templates[7], HmacDrbg(b"bulk"))
        assert bulk.search(probe) == serial.search(probe) == [7]

    def test_add_many_empty_batch(self, factory, paper_params):
        index = factory(paper_params)
        assert index.add_many(np.empty((0, paper_params.n), dtype=np.int64)) \
            == []
        assert len(index) == 0

    def test_add_many_rejects_wrong_shape(self, factory, paper_params):
        index = factory(paper_params)
        with pytest.raises(ParameterError):
            index.add_many(np.zeros((2, 3), dtype=np.int64))

    def test_duplicate_templates_both_found(self, factory, paper_params):
        """Two users enrolled from identical templates: both must surface."""
        sk, templates, _ = _population_sketches(paper_params, 1)
        index = factory(paper_params)
        s0 = sk.sketch(templates[0], HmacDrbg(b"e0"))
        s1 = sk.sketch(templates[0], HmacDrbg(b"e1"))
        index.add(s0)
        index.add(s1)
        probe = sk.sketch(templates[0], HmacDrbg(b"pr"))
        assert index.search(probe) == [0, 1]


class TestAgreementProperty:
    @given(seed=st.integers(0, 1000), n_users=st.integers(1, 30))
    @settings(max_examples=30)
    def test_all_indexes_agree_with_match_matrix(self, seed, n_users):
        params = SystemParams(a=5, k=4, v=8, t=4, n=6)
        rng = np.random.default_rng(seed)
        half = params.interval_width // 2
        enrolled = rng.integers(-half, half + 1, size=(n_users, params.n))
        probe = rng.integers(-half, half + 1, size=params.n)

        expected = np.nonzero(match_matrix(enrolled, probe, params))[0].tolist()
        for factory in (lambda p: VectorizedScanIndex(p),
                        lambda p: PrefixBucketIndex(p, depth=3),
                        lambda p: NaiveLoopIndex(p)):
            index = factory(params)
            for row in enrolled:
                index.add(row)
            assert index.search(probe) == expected


class TestBatchSearch:
    @given(seed=st.integers(0, 1000), n_users=st.integers(0, 30),
           n_probes=st.integers(0, 8))
    @settings(max_examples=30)
    def test_search_batch_agrees_with_match_matrix(self, seed, n_users,
                                                   n_probes):
        params = SystemParams(a=5, k=4, v=8, t=4, n=6)
        rng = np.random.default_rng(seed)
        half = params.interval_width // 2
        enrolled = rng.integers(-half, half + 1, size=(n_users, params.n))
        probes = rng.integers(-half, half + 1, size=(n_probes, params.n))
        index = VectorizedScanIndex(params)
        if n_users:
            index.add_many(enrolled)
        expected = [
            np.nonzero(match_matrix(enrolled, probe, params))[0].tolist()
            if n_users else []
            for probe in probes
        ]
        assert index.search_batch(probes) == expected

    def test_search_batch_rejects_out_of_range(self, small_params):
        index = VectorizedScanIndex(small_params)
        bad = np.full((1, small_params.n), small_params.interval_width)
        with pytest.raises(ParameterError, match="movements"):
            index.search_batch(bad)

    def test_lut_group_loop_exercised_above_pair_threshold(self):
        """N > pair_threshold keeps the bitmask-LUT group loop active
        (the benchmark-scale regime), not just the per-probe tail."""
        params = SystemParams(a=5, k=4, v=8, t=4, n=6)
        rng = np.random.default_rng(123)
        half = params.interval_width // 2
        enrolled = rng.integers(-half, half + 1, size=(2500, params.n))
        probes = rng.integers(-half, half + 1, size=(5, params.n))
        index = VectorizedScanIndex(params)
        index.add_many(enrolled)
        expected = [
            np.nonzero(match_matrix(enrolled, probe, params))[0].tolist()
            for probe in probes
        ]
        assert index.search_batch(probes) == expected

    @given(seed=st.integers(0, 300), n_users=st.integers(1, 60))
    @settings(max_examples=25)
    def test_kernel_pair_threshold_extremes_agree(self, seed, n_users):
        """pair_threshold=0 (pure LUT) and huge (pure per-probe tail)
        must produce identical match sets."""
        params = SystemParams(a=5, k=4, v=8, t=4, n=6)
        rng = np.random.default_rng(seed)
        half = params.interval_width // 2
        enrolled = rng.integers(-half, half + 1,
                                size=(n_users, params.n)).astype(np.int32)
        probes = rng.integers(-half, half + 1, size=(6, params.n))
        ka, t = params.interval_width, params.t
        pure_lut = batch_match_rows(enrolled, probes, ka, t, chunk=3,
                                    pair_threshold=0)
        pure_scan = batch_match_rows(enrolled, probes, ka, t, chunk=3,
                                     pair_threshold=10 ** 9)
        expected = [
            np.nonzero(match_matrix(enrolled, probe, params))[0]
            for probe in probes
        ]
        for a, b, e in zip(pure_lut, pure_scan, expected):
            assert np.array_equal(a, e) and np.array_equal(b, e)


class TestScanInternals:
    def test_grows_past_initial_capacity(self, small_params):
        index = VectorizedScanIndex(small_params, capacity=2)
        for i in range(10):
            index.add(np.zeros(small_params.n, dtype=np.int64))
        assert len(index) == 10

    def test_chunk_one_works(self, paper_params):
        sk, templates, sketches = _population_sketches(paper_params, 10)
        index = VectorizedScanIndex(paper_params, chunk=1)
        for s in sketches:
            index.add(s)
        probe = sk.sketch(templates[4], HmacDrbg(b"c1"))
        assert index.search(probe) == [4]

    def test_rejects_zero_chunk(self, paper_params):
        with pytest.raises(ParameterError, match="chunk"):
            VectorizedScanIndex(paper_params, chunk=0)


class TestPrefixInternals:
    def test_rejects_bad_depth(self, small_params):
        with pytest.raises(ParameterError, match="depth"):
            PrefixBucketIndex(small_params, depth=0)
        with pytest.raises(ParameterError, match="depth"):
            PrefixBucketIndex(small_params, depth=small_params.n + 1)

    def test_depth_equal_to_n_works(self):
        params = SystemParams(a=5, k=4, v=8, t=4, n=4)
        index = PrefixBucketIndex(params, depth=params.n)
        sk = ChebyshevSketch(params)
        rng = np.random.default_rng(0)
        x = sk.line.uniform_vector(rng)
        index.add(sk.sketch(x, HmacDrbg(b"x")))
        probe = sk.sketch(x, HmacDrbg(b"y"))
        assert index.search(probe) == [0]
