"""Tests for the robust (hash-bound) secure sketch."""

import numpy as np
import pytest

from repro.core.params import SystemParams
from repro.core.robust import RobustChebyshevSketch, RobustSketchValue
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError, TamperDetectedError


@pytest.fixture
def robust(paper_params):
    return RobustChebyshevSketch(paper_params)


class TestRoundTrip:
    def test_recover_close_reading(self, robust, paper_params, rng, drbg):
        x = robust.inner.line.uniform_vector(rng)
        value = robust.sketch(x, drbg)
        noise = rng.integers(-paper_params.t, paper_params.t + 1,
                             size=paper_params.n)
        y = robust.inner.line.reduce(x + noise)
        assert np.array_equal(robust.recover(y, value),
                              robust.inner.line.reduce(x))

    def test_far_reading_raises_recovery_not_tamper(self, robust, rng, drbg):
        x = robust.inner.line.uniform_vector(rng)
        value = robust.sketch(x, drbg)
        y = robust.inner.line.uniform_vector(rng)
        with pytest.raises(RecoveryError):
            robust.recover(y, value)
        with pytest.raises(Exception) as excinfo:
            robust.recover(y, value)
        assert not isinstance(excinfo.value, TamperDetectedError)


class TestTamperDetection:
    def test_modified_movement_detected(self, robust, paper_params, rng, drbg):
        x = robust.inner.line.uniform_vector(rng)
        value = robust.sketch(x, drbg)
        tampered = value.movements.copy()
        # Shift one movement by a whole interval-compatible amount that
        # keeps the sketch structurally valid but changes recovery.
        delta = 2 if abs(int(tampered[0]) + 2) <= paper_params.interval_width // 2 else -2
        tampered[0] = int(tampered[0]) + delta
        bad = RobustSketchValue(movements=tampered, tag=value.tag)
        with pytest.raises(RecoveryError):
            # Either the shifted coordinate leaves the acceptance window
            # (RecoveryError) or recovery succeeds with a wrong value and
            # the tag catches it (TamperDetectedError, a subclass).
            robust.recover(x, bad)

    def test_interval_shift_attack_caught_by_tag(self, robust, paper_params,
                                                 rng, drbg):
        """Shifting input+sketch by a full interval fools Rec but not H."""
        line = robust.inner.line
        x = line.uniform_vector(rng)
        value = robust.sketch(x, drbg)
        # Attacker shifts the reading by exactly one interval: Rec recovers
        # x + ka (a *valid* template) — only the hash detects the swap.
        y = line.reduce(x + paper_params.interval_width)
        with pytest.raises(TamperDetectedError):
            robust.recover(y, value)

    def test_modified_tag_detected(self, robust, rng, drbg):
        x = robust.inner.line.uniform_vector(rng)
        value = robust.sketch(x, drbg)
        bad_tag = bytes([value.tag[0] ^ 1]) + value.tag[1:]
        bad = RobustSketchValue(movements=value.movements, tag=bad_tag)
        with pytest.raises(TamperDetectedError):
            robust.recover(x, bad)

    def test_swapped_sketches_detected(self, robust, rng):
        """Helper data from user A with tag from user B must not verify."""
        x_a = robust.inner.line.uniform_vector(rng)
        x_b = robust.inner.line.uniform_vector(rng)
        value_a = robust.sketch(x_a, HmacDrbg(b"a"))
        value_b = robust.sketch(x_b, HmacDrbg(b"b"))
        frankenstein = RobustSketchValue(
            movements=value_a.movements, tag=value_b.tag
        )
        with pytest.raises(RecoveryError):
            robust.recover(x_a, frankenstein)


class TestValueValidation:
    def test_tag_must_be_32_bytes(self):
        with pytest.raises(ParameterError, match="32-byte"):
            RobustSketchValue(movements=np.zeros(4, dtype=np.int64),
                              tag=b"short")

    def test_storage_accounting(self, robust, rng, drbg):
        x = robust.inner.line.uniform_vector(rng)
        value = robust.sketch(x, drbg)
        assert value.storage_bytes() == 8 * len(value.movements) + 32
