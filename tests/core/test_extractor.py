"""Tests for the succinct fuzzy extractor (Gen/Rep) and helper data."""

import numpy as np
import pytest

from repro.core.extractor import HelperData, SuccinctFuzzyExtractor
from repro.core.params import SystemParams
from repro.crypto.extractors import Sha256Extractor, UniversalHashExtractor
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError, TamperDetectedError


@pytest.fixture
def fe(paper_params):
    return SuccinctFuzzyExtractor(paper_params)


def _noisy(fe, x, rng):
    t = fe.params.t
    return fe.sketcher.line.reduce(
        x + rng.integers(-t, t + 1, size=fe.params.n)
    )


class TestGenRep:
    def test_rep_reproduces_R_exactly(self, fe, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        secret, helper = fe.generate(x, drbg)
        assert fe.reproduce(_noisy(fe, x, rng), helper) == secret

    def test_R_is_32_bytes_default(self, fe, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        secret, _ = fe.generate(x, drbg)
        assert len(secret) == 32

    def test_deterministic_given_drbg(self, fe, rng):
        x = fe.sketcher.line.uniform_vector(rng)
        r1 = fe.generate(x, HmacDrbg(b"fixed"))
        r2 = fe.generate(x, HmacDrbg(b"fixed"))
        assert r1[0] == r2[0]
        assert np.array_equal(r1[1].movements, r2[1].movements)
        assert r1[1].seed == r2[1].seed

    def test_different_users_different_secrets(self, fe, rng, drbg):
        x1 = fe.sketcher.line.uniform_vector(rng)
        x2 = fe.sketcher.line.uniform_vector(rng)
        s1, _ = fe.generate(x1, HmacDrbg(b"u1"))
        s2, _ = fe.generate(x2, HmacDrbg(b"u2"))
        assert s1 != s2

    def test_far_reading_rejected(self, fe, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, drbg)
        with pytest.raises(RecoveryError):
            fe.reproduce(fe.sketcher.line.uniform_vector(rng), helper)

    def test_works_with_universal_extractor(self, paper_params, rng, drbg):
        fe = SuccinctFuzzyExtractor(
            paper_params,
            extractor=UniversalHashExtractor(output_bytes=32, field_bits=2203),
        )
        x = fe.sketcher.line.uniform_vector(rng)
        secret, helper = fe.generate(x, drbg)
        assert fe.reproduce(_noisy(fe, x, rng), helper) == secret

    def test_output_length_configurable(self, paper_params, rng, drbg):
        fe = SuccinctFuzzyExtractor(
            paper_params, extractor=Sha256Extractor(output_bytes=16)
        )
        x = fe.sketcher.line.uniform_vector(rng)
        secret, _ = fe.generate(x, drbg)
        assert len(secret) == 16


class TestTamperDetection:
    def test_tampered_seed_accepted_without_bind_seed(self, paper_params,
                                                      rng, drbg):
        """Paper-faithful mode: the tag does not cover r (documented gap)."""
        fe = SuccinctFuzzyExtractor(paper_params, bind_seed=False)
        x = fe.sketcher.line.uniform_vector(rng)
        secret, helper = fe.generate(x, drbg)
        swapped = HelperData(movements=helper.movements, tag=helper.tag,
                             seed=bytes(32))
        # Rep succeeds but derives a *different* key — the gap in action.
        other = fe.reproduce(x, swapped)
        assert other != secret

    def test_tampered_seed_rejected_with_bind_seed(self, paper_params,
                                                   rng, drbg):
        fe = SuccinctFuzzyExtractor(paper_params, bind_seed=True)
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, drbg)
        swapped = HelperData(movements=helper.movements, tag=helper.tag,
                             seed=bytes(32))
        with pytest.raises(TamperDetectedError):
            fe.reproduce(x, swapped)

    def test_tampered_tag_rejected(self, fe, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, drbg)
        bad = HelperData(movements=helper.movements,
                         tag=bytes([helper.tag[0] ^ 0xFF]) + helper.tag[1:],
                         seed=helper.seed)
        with pytest.raises(TamperDetectedError):
            fe.reproduce(x, bad)

    def test_interval_shift_rejected(self, fe, paper_params, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, drbg)
        shifted = fe.sketcher.line.reduce(x + paper_params.interval_width)
        with pytest.raises(TamperDetectedError):
            fe.reproduce(shifted, helper)


class TestHelperDataSerialisation:
    def test_roundtrip(self, fe, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, drbg)
        decoded = HelperData.from_bytes(helper.to_bytes())
        assert np.array_equal(decoded.movements, helper.movements)
        assert decoded.tag == helper.tag
        assert decoded.seed == helper.seed

    def test_truncated_rejected(self, fe, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, drbg)
        data = helper.to_bytes()
        with pytest.raises(ParameterError, match="malformed"):
            HelperData.from_bytes(data[:-3])

    def test_trailing_garbage_rejected(self, fe, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, drbg)
        with pytest.raises(ParameterError, match="malformed"):
            HelperData.from_bytes(helper.to_bytes() + b"junk")

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            HelperData.from_bytes(b"")

    def test_storage_accounting(self, fe, rng, drbg):
        x = fe.sketcher.line.uniform_vector(rng)
        _, helper = fe.generate(x, drbg)
        assert helper.storage_bytes() == 8 * fe.params.n + 32 + 32
