"""Tests for SystemParams: validation and Theorem 3 entropy accounting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import SystemParams
from repro.exceptions import ParameterError


class TestValidation:
    def test_paper_defaults_are_valid(self):
        params = SystemParams.paper_defaults()
        assert params.a == 100
        assert params.k == 4
        assert params.v == 500
        assert params.t == 100
        assert params.n == 5000

    def test_paper_representation_range_matches_table2(self):
        params = SystemParams.paper_defaults()
        assert params.half_range == 100_000  # Table II: [-100000, 100000]

    def test_rejects_nonpositive_unit(self):
        with pytest.raises(ParameterError, match="unit a"):
            SystemParams(a=0, k=4, v=10, t=1, n=4)

    def test_rejects_odd_k(self):
        with pytest.raises(ParameterError, match="even"):
            SystemParams(a=10, k=3, v=10, t=1, n=4)

    def test_rejects_k_below_two(self):
        with pytest.raises(ParameterError, match="even"):
            SystemParams(a=10, k=0, v=10, t=1, n=4)

    def test_rejects_single_interval(self):
        with pytest.raises(ParameterError, match="v must be"):
            SystemParams(a=10, k=4, v=1, t=1, n=4)

    def test_rejects_threshold_at_half_interval(self):
        # t must be strictly below ka/2 = 20.
        with pytest.raises(ParameterError, match="threshold"):
            SystemParams(a=10, k=4, v=10, t=20, n=4)

    def test_rejects_zero_threshold(self):
        with pytest.raises(ParameterError, match="threshold"):
            SystemParams(a=10, k=4, v=10, t=0, n=4)

    def test_rejects_zero_dimension(self):
        with pytest.raises(ParameterError, match="dimension"):
            SystemParams(a=10, k=4, v=10, t=1, n=0)

    def test_threshold_just_below_half_interval_accepted(self):
        params = SystemParams(a=10, k=4, v=10, t=19, n=4)
        assert params.t == 19

    def test_frozen(self):
        params = SystemParams.small_test()
        with pytest.raises(AttributeError):
            params.a = 7  # type: ignore[misc]


class TestGeometry:
    def test_interval_width(self):
        assert SystemParams(a=3, k=4, v=5, t=5, n=2).interval_width == 12

    def test_circumference(self):
        assert SystemParams(a=3, k=4, v=5, t=5, n=2).circumference == 60

    def test_half_range(self):
        assert SystemParams(a=3, k=4, v=5, t=5, n=2).half_range == 30


class TestTheorem3:
    """Closed-form entropy accounting against the paper's Table II."""

    def test_residual_entropy_matches_table2(self):
        params = SystemParams.paper_defaults(n=5000)
        # Table II: m~ ≈ 44,829 bits at n = 5000.
        assert params.residual_entropy_bits == pytest.approx(44_829, abs=1.0)

    def test_storage_matches_table2(self):
        params = SystemParams.paper_defaults(n=5000)
        # Table II: storage ≈ 45,000 bits; exact form is n*log2(ka+1).
        assert params.storage_bits == pytest.approx(
            5000 * math.log2(401), abs=1e-6
        )
        assert params.storage_bits == pytest.approx(45_000, rel=0.05)

    def test_entropy_identity(self):
        params = SystemParams.paper_defaults(n=5000)
        assert (params.min_entropy_bits - params.residual_entropy_bits
                ) == pytest.approx(params.entropy_loss_bits, abs=1e-6)

    @given(
        a=st.integers(1, 50),
        k=st.sampled_from([2, 4, 6, 8]),
        v=st.integers(2, 64),
        n=st.integers(1, 100),
    )
    def test_entropy_loss_is_n_log_ka(self, a, k, v, n):
        t = max(1, k * a // 2 - 1)
        if t >= k * a // 2 or t < 1:
            return
        params = SystemParams(a=a, k=k, v=v, t=t, n=n)
        assert params.entropy_loss_bits == pytest.approx(
            n * math.log2(k * a), rel=1e-12
        )

    def test_false_close_bound_formula(self):
        params = SystemParams(a=10, k=4, v=8, t=5, n=3)
        expected = (11 / 40) ** 3
        assert params.false_close_bound == pytest.approx(expected)

    def test_exact_false_close_below_bound(self):
        params = SystemParams(a=10, k=4, v=8, t=5, n=3)
        assert params.false_close_probability() < params.false_close_bound

    def test_exact_false_close_matches_direct_formula(self):
        params = SystemParams(a=10, k=4, v=8, t=5, n=2)
        direct = ((2 * 5 + 1) ** 2 * (8 ** 2 - 1)) / (40 * 8) ** 2
        assert params.false_close_probability() == pytest.approx(direct, rel=1e-9)

    def test_false_close_negligible_at_paper_scale(self):
        params = SystemParams.paper_defaults(n=5000)
        # (201/400)^5000 ~ 2^-4968: far below float range, so in bits.
        assert params.false_close_bound_log2 == pytest.approx(-4968, abs=5)
        assert params.false_close_probability_log2() < -4000


class TestHelpers:
    def test_with_dimension(self):
        params = SystemParams.paper_defaults(n=5000).with_dimension(123)
        assert params.n == 123
        assert params.a == 100

    def test_security_report_keys(self):
        report = SystemParams.small_test().security_report()
        assert set(report) == {
            "min_entropy_bits",
            "residual_entropy_bits",
            "entropy_loss_bits",
            "storage_bits",
            "false_close_bound",
        }
