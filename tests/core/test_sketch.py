"""Tests for the Chebyshev secure sketch (Theorem 1, both directions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.numberline import NumberLine
from repro.core.params import SystemParams
from repro.core.sketch import ChebyshevSketch
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError


def _sketcher(params: SystemParams) -> ChebyshevSketch:
    return ChebyshevSketch(params)


def _noise_within(rng, t, n):
    return rng.integers(-t, t + 1, size=n, dtype=np.int64)


class TestSketchStructure:
    def test_movement_bounded_by_half_interval(self, small_params, rng, drbg):
        sk = _sketcher(small_params)
        for _ in range(20):
            x = sk.line.uniform_vector(rng)
            s = sk.sketch(x, drbg)
            assert int(np.max(np.abs(s))) <= small_params.interval_width // 2

    def test_sketch_plus_input_is_identifier(self, small_params, rng, drbg):
        sk = _sketcher(small_params)
        x = sk.line.uniform_vector(rng)
        s = sk.sketch(x, drbg)
        landed = sk.line.reduce(x + s)
        assert not np.any(sk.line.is_boundary(landed))
        deviation = sk.line.ring_distance(sk.line.identifier_of(landed), landed)
        assert int(np.max(deviation)) == 0

    def test_sketch_canonical_matches_sketch(self, small_params, rng):
        """The pre-validated entry point (the Gen hot path's single-
        canonicalisation route) agrees with the validating one."""
        sk = _sketcher(small_params)
        for i in range(10):
            x = sk.line.uniform_vector(rng)
            canonical = sk.line.validate_vector(x)
            coins = HmacDrbg(b"canon-%d" % i)
            coins2 = HmacDrbg(b"canon-%d" % i)
            assert np.array_equal(sk.sketch(x, coins),
                                  sk.sketch_canonical(canonical, coins2))

    def test_interior_points_deterministic(self, small_params):
        """Non-boundary coordinates sketch identically under any coins."""
        sk = _sketcher(small_params)
        x = np.array([1, 2, 3, 5, 6, 7, 9, 10, -1, -2, -3, -5, -6, -7, -9, -10])
        s1 = sk.sketch(x, HmacDrbg(b"coins-1"))
        s2 = sk.sketch(x, HmacDrbg(b"coins-2"))
        assert np.array_equal(s1, s2)

    def test_boundary_coin_produces_half_interval_movement(self, small_params):
        sk = _sketcher(small_params)
        x = np.zeros(16, dtype=np.int64)  # all on the boundary at 0
        s = sk.sketch(x, HmacDrbg(b"coins"))
        assert np.all(np.abs(s) == small_params.interval_width // 2)

    def test_boundary_coin_varies_with_drbg(self, small_params):
        sk = _sketcher(small_params)
        x = np.zeros(16, dtype=np.int64)
        outcomes = set()
        for i in range(16):
            s = sk.sketch(x, HmacDrbg(bytes([i])))
            outcomes.update(np.sign(s).tolist())
        assert outcomes == {-1, 1}, "both coin directions must occur"

    def test_extreme_point_wraps(self, small_params):
        """Special case 2: the largest point can move into the bottom interval."""
        sk = _sketcher(small_params)
        x = np.full(16, -32, dtype=np.int64)  # canonical spelling of ±kav/2
        saw_identifiers = set()
        for i in range(32):
            s = sk.sketch(x, HmacDrbg(bytes([i, 7])))
            landed = sk.line.reduce(x + s)
            saw_identifiers.update(np.unique(landed).tolist())
        assert saw_identifiers == {-28, 28}, saw_identifiers


class TestTheorem1Forward:
    """dis(x, y) <= t  ==>  Rec(y, SS(x)) == x."""

    @given(data=st.data())
    def test_roundtrip_small(self, data):
        params = SystemParams.small_test()
        sk = _sketcher(params)
        x = np.array(data.draw(st.lists(
            st.integers(-32, 31), min_size=16, max_size=16)), dtype=np.int64)
        noise = np.array(data.draw(st.lists(
            st.integers(-params.t, params.t), min_size=16, max_size=16)),
            dtype=np.int64)
        y = sk.line.reduce(x + noise)
        s = sk.sketch(x, HmacDrbg(b"prop"))
        assert np.array_equal(sk.recover(y, s), sk.line.reduce(x))

    def test_roundtrip_paper_geometry(self, paper_params, rng):
        sk = _sketcher(paper_params)
        for trial in range(20):
            x = sk.line.uniform_vector(rng)
            y = sk.line.reduce(x + _noise_within(rng, paper_params.t, paper_params.n))
            s = sk.sketch(x, HmacDrbg(trial.to_bytes(2, "big")))
            assert np.array_equal(sk.recover(y, s), sk.line.reduce(x))

    def test_exact_reading_recovers(self, paper_params, rng, drbg):
        sk = _sketcher(paper_params)
        x = sk.line.uniform_vector(rng)
        s = sk.sketch(x, drbg)
        assert np.array_equal(sk.recover(x, s), sk.line.reduce(x))

    def test_noise_at_exact_threshold_recovers(self, paper_params, rng, drbg):
        sk = _sketcher(paper_params)
        x = sk.line.uniform_vector(rng)
        noise = np.full(paper_params.n, paper_params.t, dtype=np.int64)
        noise[::2] *= -1
        y = sk.line.reduce(x + noise)
        s = sk.sketch(x, drbg)
        assert np.array_equal(sk.recover(y, s), sk.line.reduce(x))


class TestRingWrap:
    """The erratum case: readings and templates straddling the line ends."""

    def test_template_at_top_reading_wrapped(self, paper_params, drbg):
        sk = _sketcher(paper_params)
        line = sk.line
        # Template sits just below +kav/2; the reading wraps past the end.
        x = np.full(paper_params.n, line.half_range - 10, dtype=np.int64)
        y = line.reduce(x + paper_params.t)  # crosses the seam
        s = sk.sketch(x, drbg)
        assert np.array_equal(sk.recover(y, s), line.reduce(x))

    def test_template_at_bottom_reading_wrapped(self, paper_params, drbg):
        sk = _sketcher(paper_params)
        line = sk.line
        x = np.full(paper_params.n, -line.half_range + 10, dtype=np.int64)
        y = line.reduce(x - paper_params.t)
        s = sk.sketch(x, drbg)
        assert np.array_equal(sk.recover(y, s), line.reduce(x))

    def test_boundary_template_wrapping_coin(self, paper_params):
        """A template exactly on the seam: both coin outcomes must recover."""
        sk = _sketcher(paper_params)
        line = sk.line
        x = np.full(paper_params.n, -line.half_range, dtype=np.int64)
        y = line.reduce(x + 5)
        for i in range(8):
            s = sk.sketch(x, HmacDrbg(bytes([i, 3])))
            assert np.array_equal(sk.recover(y, s), line.reduce(x))


class TestTheorem1Converse:
    """dis(x, y) > t  ==>  Rec aborts or returns something != x."""

    @given(excess=st.integers(1, 50))
    @settings(max_examples=25)
    def test_beyond_threshold_never_silently_wrong(self, excess):
        params = SystemParams.paper_defaults(n=32)
        sk = _sketcher(params)
        rng = np.random.default_rng(excess)
        x = sk.line.uniform_vector(rng)
        y = x.copy()
        y[0] = sk.line.reduce(y[0] + params.t + excess)
        s = sk.sketch(x, HmacDrbg(b"conv"))
        try:
            z = sk.recover(y, s)
        except RecoveryError:
            return
        assert not np.array_equal(z, sk.line.reduce(x))

    def test_far_reading_aborts(self, paper_params, rng, drbg):
        sk = _sketcher(paper_params)
        x = sk.line.uniform_vector(rng)
        y = sk.line.uniform_vector(rng)  # unrelated
        s = sk.sketch(x, drbg)
        with pytest.raises(RecoveryError):
            sk.recover(y, s)


class TestSketchValidation:
    def test_rejects_wrong_length(self, small_params, drbg):
        sk = _sketcher(small_params)
        with pytest.raises(ParameterError, match="length"):
            sk.validate_sketch(np.zeros(3, dtype=np.int64))

    def test_rejects_oversized_movement(self, small_params):
        sk = _sketcher(small_params)
        s = np.zeros(16, dtype=np.int64)
        s[0] = small_params.interval_width  # ka > ka/2
        with pytest.raises(ParameterError, match="exceeds"):
            sk.validate_sketch(s)

    def test_rejects_float_sketch(self, small_params):
        sk = _sketcher(small_params)
        with pytest.raises(ParameterError, match="integer"):
            sk.validate_sketch(np.zeros(16, dtype=np.float64))

    def test_recover_rejects_malformed_sketch(self, small_params, rng, drbg):
        sk = _sketcher(small_params)
        x = sk.line.uniform_vector(rng)
        with pytest.raises(ParameterError):
            sk.recover(x, np.full(16, small_params.interval_width, dtype=np.int64))

    def test_storage_bits_matches_params(self, paper_params):
        sk = _sketcher(paper_params)
        assert sk.sketch_storage_bits() == paper_params.storage_bits
