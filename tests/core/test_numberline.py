"""Tests for the ring geometry of the number line La."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.numberline import NumberLine
from repro.core.params import SystemParams
from repro.exceptions import EncodingError


@pytest.fixture
def line(small_params):
    return NumberLine(small_params)


class TestReduce:
    def test_identity_inside_range(self, line):
        points = np.array([-31, -1, 0, 1, 31])
        assert np.array_equal(line.reduce(points), points)

    def test_positive_end_maps_to_negative_end(self, line):
        # half_range = 32; +32 is the same ring point as -32.
        assert line.reduce(32) == -32

    def test_wraps_full_circumference(self, line):
        assert line.reduce(64 + 5) == 5
        assert line.reduce(-64 - 5) == -5

    @given(st.integers(-10_000, 10_000))
    def test_reduce_is_idempotent(self, value):
        line = NumberLine(SystemParams.small_test())
        once = int(line.reduce(value))
        assert int(line.reduce(once)) == once

    @given(st.integers(-10_000, 10_000))
    def test_reduce_preserves_residue(self, value):
        line = NumberLine(SystemParams.small_test())
        assert (int(line.reduce(value)) - value) % line.circumference == 0

    @given(st.integers(-10_000, 10_000))
    def test_reduced_range(self, value):
        line = NumberLine(SystemParams.small_test())
        reduced = int(line.reduce(value))
        assert -line.half_range <= reduced < line.half_range


class TestBoundaries:
    def test_boundaries_are_multiples_of_ka(self, line):
        # small_test: a=2, k=4 -> ka=8; boundaries at -32,-24,...,24.
        points = np.arange(-32, 32)
        expected = points % 8 == 0
        assert np.array_equal(line.is_boundary(points), expected)

    def test_positive_end_is_boundary_when_v_even(self, line):
        assert bool(line.is_boundary(32))  # reduces to -32, multiple of 8

    def test_identifier_count_is_v(self, line):
        idents = line.identifiers()
        assert len(idents) == line.params.v
        assert len(np.unique(idents)) == line.params.v

    def test_identifiers_are_interval_midpoints(self, line):
        # With ka=8, identifiers sit 4 above each boundary.
        idents = np.sort(line.identifiers())
        assert np.array_equal(idents, np.arange(-28, 32, 8))

    def test_identifier_of_interior_points(self, line):
        # Points 1..7 live in interval (0, 8) with identifier 4.
        points = np.arange(1, 8)
        assert np.array_equal(line.identifier_of(points), np.full(7, 4))

    def test_identifier_of_negative_interior(self, line):
        points = np.arange(-7, 0)
        assert np.array_equal(line.identifier_of(points), np.full(7, -4))

    def test_identifiers_are_never_boundaries(self, line):
        assert not np.any(line.is_boundary(line.identifiers()))

    def test_odd_v_geometry_consistent(self):
        # v odd: the extreme ring point is an identifier, not a boundary.
        params = SystemParams(a=2, k=2, v=3, t=1, n=4)
        line = NumberLine(params)
        idents = line.identifiers()
        assert len(np.unique(idents)) == 3
        assert not np.any(line.is_boundary(idents))


class TestDistances:
    def test_ring_distance_direct(self, line):
        assert line.ring_distance(3, -3) == 6

    def test_ring_distance_wrapped(self, line):
        # -31 to 31: direct |distance| 62, around the ring 64-62 = 2.
        assert line.ring_distance(-31, 31) == 2

    def test_ring_distance_symmetry(self, line):
        assert line.ring_distance(5, -20) == line.ring_distance(-20, 5)

    def test_chebyshev_is_max_coordinate(self, line):
        x = np.array([0, 10, -5, 31])
        y = np.array([1, 12, -5, -31])
        # last coordinate: ring distance 2; second: 2; first: 1 -> max 2.
        assert line.chebyshev_distance(x, y) == 2

    @given(st.integers(-32, 31), st.integers(-32, 31), st.integers(-32, 31))
    def test_ring_distance_triangle_inequality(self, x, y, z):
        line = NumberLine(SystemParams.small_test())
        assert line.ring_distance(x, z) <= (
            line.ring_distance(x, y) + line.ring_distance(y, z)
        )

    @given(st.integers(-32, 31))
    def test_ring_distance_identity(self, x):
        line = NumberLine(SystemParams.small_test())
        assert line.ring_distance(x, x) == 0

    def test_max_ring_distance_is_half_circumference(self, line):
        assert line.ring_distance(0, 32) == 32


class TestMovement:
    @given(st.integers(-32, 31), st.integers(-32, 31))
    def test_movement_lands_on_target(self, point, target):
        line = NumberLine(SystemParams.small_test())
        movement = line.movement_to(np.array([point]), np.array([target]))
        landed = line.reduce(point + movement[0])
        assert int(landed) == int(line.reduce(target))


class TestValidation:
    def test_accepts_both_endpoint_spellings(self, line):
        vec = np.array([32, -32] + [0] * 14)
        reduced = line.validate_vector(vec)
        assert reduced[0] == -32 and reduced[1] == -32

    def test_rejects_out_of_range(self, line):
        vec = np.array([33] + [0] * 15)
        with pytest.raises(EncodingError, match="outside"):
            line.validate_vector(vec)

    def test_rejects_wrong_dimension(self, line):
        with pytest.raises(EncodingError, match="dimension"):
            line.validate_vector(np.zeros(5, dtype=np.int64))

    def test_rejects_floats(self, line):
        with pytest.raises(EncodingError, match="integer"):
            line.validate_vector(np.zeros(16, dtype=np.float64))

    def test_rejects_matrix(self, line):
        with pytest.raises(EncodingError, match="1-D"):
            line.validate_vector(np.zeros((4, 4), dtype=np.int64))

    def test_uniform_vector_in_range(self, line, rng):
        vec = line.uniform_vector(rng)
        assert vec.shape == (16,)
        assert vec.min() >= -32 and vec.max() < 32
