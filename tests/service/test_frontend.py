"""ServiceFrontend: drop-in handler surface, micro-batching, backpressure,
shutdown semantics, and — the load-bearing satellite — concurrency parity:
a threaded workload through the frontend must produce byte-identical
protocol outcomes and the same audit-kind multiset as the serial run.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

import numpy as np
import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.exceptions import ServiceClosedError, ServiceOverloadError
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import IdentificationRequest
from repro.protocols.runners import (
    run_enrollment,
    run_identification,
    run_verification,
)
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service import ServiceFrontend


@pytest.fixture
def stack(paper_params, fast_scheme):
    """Server + population + per-user devices (deterministic per user)."""
    population = UserPopulation(paper_params, size=6,
                                noise=BoundedUniformNoise(paper_params.t),
                                seed=11)
    server = AuthenticationServer(paper_params, fast_scheme, seed=b"svc-srv")
    devices = {
        user_id: BiometricDevice(paper_params, fast_scheme,
                                 seed=user_id.encode() + b"-dev")
        for user_id in population.user_ids()
    }
    return server, population, devices


def _frontend(server, **kwargs) -> ServiceFrontend:
    kwargs.setdefault("batch_window_s", 0.01)
    kwargs.setdefault("batch_linger_s", 0.002)
    kwargs.setdefault("result_timeout_s", 30.0)
    return ServiceFrontend(server, **kwargs)


class TestDropInSurface:
    def test_runners_drive_frontend_like_a_server(self, stack):
        server, population, devices = stack
        user_id = population.user_ids()[0]
        device = devices[user_id]
        with _frontend(server) as frontend:
            run = run_enrollment(device, frontend, DuplexLink(), user_id,
                                 population.template(0))
            assert run.outcome.accepted
            run = run_identification(device, frontend, DuplexLink(),
                                     population.genuine_reading(0))
            assert run.outcome.identified
            assert run.outcome.user_id == user_id
            run = run_verification(device, frontend, DuplexLink(), user_id,
                                   population.genuine_reading(0))
            assert run.outcome.verified
            # A stranger still gets ⊥ through the pipeline.
            run = run_identification(device, frontend, DuplexLink(),
                                     population.impostor_reading())
            assert not run.outcome.identified
        stats = frontend.stats()
        assert stats.completed == stats.submitted
        assert stats.identify_batches >= 1

    def test_delegation_surface(self, stack):
        server, population, devices = stack
        with _frontend(server) as frontend:
            assert frontend.params is server.params
            assert frontend.scheme is server.scheme
            assert frontend.store is server.store
            assert frontend.engine_stats() is None
            assert frontend.outstanding_sessions() == 0
            assert frontend.audit_log() == server.audit_log()

    def test_handler_errors_propagate_and_pipeline_survives(self, stack):
        server, population, devices = stack
        user_id = population.user_ids()[0]
        device = devices[user_id]
        with _frontend(server) as frontend:
            bad = IdentificationRequest(
                sketch=np.zeros(3, dtype=np.int64))  # wrong dimension
            with pytest.raises(Exception):
                frontend.handle_identification_request(bad)
            # The batcher must outlive a poisoned request.
            run = run_enrollment(device, frontend, DuplexLink(), user_id,
                                 population.template(0))
            assert run.outcome.accepted

    def test_poisoned_probe_fails_alone_not_its_batchmates(self, stack):
        """A malformed probe coalesced with a genuine one must error only
        its own caller — batching never amplifies one client's garbage
        into collateral failures."""
        server, population, devices = stack
        user_id = population.user_ids()[0]
        device = devices[user_id]
        run_enrollment(device, server, DuplexLink(), user_id,
                       population.template(0))
        with _frontend(server, batch_linger_s=0.05,
                       batch_window_s=0.2) as frontend:
            bad = frontend._submit("identify", IdentificationRequest(
                sketch=np.zeros(3, dtype=np.int64)))
            good = frontend._submit("identify", device.probe_sketch(
                population.genuine_reading(0)))
            with pytest.raises(Exception):
                bad.result(timeout=10.0)
            reply = good.result(timeout=10.0)  # challenged, not poisoned
            assert hasattr(reply, "session_id")
        assert frontend.stats().max_batch == 2  # they shared a batch


class TestBackpressureAndShutdown:
    def test_overload_raises_instead_of_queueing_unbounded(self, stack):
        server, _, _ = stack
        release = threading.Event()
        original = server.handle_enrollment

        def stalled(submission):
            release.wait(10.0)
            return original(submission)

        server.handle_enrollment = stalled
        frontend = _frontend(server, max_queue=1, submit_timeout_s=0.05)
        try:
            # First op occupies the batcher; the queue (size 1) fills
            # behind it; the next submit must be refused, not absorbed.
            futures = [frontend._submit("enroll", None)]
            deadline = time.monotonic() + 5.0
            with pytest.raises(ServiceOverloadError):
                while time.monotonic() < deadline:
                    futures.append(frontend._submit("enroll", None))
            assert frontend.stats().rejected == 1
        finally:
            release.set()
            frontend.close()

    def test_close_is_idempotent_and_rejects_new_work(self, stack):
        server, population, devices = stack
        frontend = _frontend(server)
        frontend.close()
        frontend.close()
        with pytest.raises(ServiceClosedError):
            frontend.handle_identification_request(
                IdentificationRequest(sketch=np.zeros(
                    server.params.n, dtype=np.int64)))

    def test_queued_work_completes_before_shutdown(self, stack):
        """FIFO guarantees in-flight requests finish ahead of the stop
        sentinel — close() drains, it does not drop."""
        server, population, devices = stack
        user_id = population.user_ids()[0]
        frontend = _frontend(server)
        submission = devices[user_id].enroll(user_id, population.template(0))
        future = frontend._submit("enroll", submission)
        frontend.close()
        assert future.result(timeout=5.0).accepted


class TestConcurrencyParity:
    """Satellite: threaded-through-frontend == serial, byte for byte."""

    def _run_workload(self, server_factory, population, paper_params,
                      fast_scheme, endpoint_factory, threads: int):
        """Enroll + identify every user; returns (outcome bytes, audit)."""
        server = server_factory()
        users = population.user_ids()
        devices = {
            user_id: BiometricDevice(paper_params, fast_scheme,
                                     seed=user_id.encode() + b"-par")
            for user_id in users
        }
        outcomes: dict[str, bytes] = {}
        lock = threading.Lock()
        errors: list[BaseException] = []

        def flow(endpoint, user_id: str, index: int) -> None:
            try:
                enroll = run_enrollment(devices[user_id], endpoint,
                                        DuplexLink(), user_id,
                                        population.template(index))
                identify = run_identification(
                    devices[user_id], endpoint, DuplexLink(),
                    population.genuine_reading(
                        index, np.random.default_rng(index)))
                with lock:
                    outcomes[user_id] = (enroll.outcome.encode()
                                         + identify.outcome.encode())
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        with endpoint_factory(server) as endpoint:
            if threads == 1:
                for index, user_id in enumerate(users):
                    flow(endpoint, user_id, index)
            else:
                per_thread = [users[t::threads] for t in range(threads)]
                workers = [
                    threading.Thread(target=lambda t=t: [
                        flow(endpoint, user_id, users.index(user_id))
                        for user_id in per_thread[t]
                    ])
                    for t in range(threads)
                ]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
        if errors:
            raise errors[0]
        kinds = Counter(e.kind for e in server.audit_log())
        return outcomes, kinds

    class _Direct:
        """Endpoint context manager around a bare server (serial leg)."""

        def __init__(self, server):
            self.server = server

        def __enter__(self):
            return self.server

        def __exit__(self, *exc_info):
            return None

    def test_threaded_frontend_matches_serial_run(self, stack, paper_params,
                                                  fast_scheme):
        _, population, _ = stack

        def server_factory():
            return AuthenticationServer(paper_params, fast_scheme,
                                        seed=b"parity-srv")

        serial_outcomes, serial_kinds = self._run_workload(
            server_factory, population, paper_params, fast_scheme,
            self._Direct, threads=1)
        threaded_outcomes, threaded_kinds = self._run_workload(
            server_factory, population, paper_params, fast_scheme,
            lambda server: _frontend(server, workers=3), threads=3)

        assert threaded_outcomes == serial_outcomes  # byte-identical
        assert threaded_kinds == serial_kinds        # audit multiset
        assert serial_kinds["enroll-ok"] == len(population)
        assert serial_kinds["identify-ok"] == len(population)
