"""The frontend-routed workload simulation must agree with the classic
one: same seed, same traffic classes, same outcome counts — the pipeline
may change scheduling, never answers."""

from __future__ import annotations

from repro.protocols.simulation import TrafficMix, WorkloadSimulator
from repro.service import ServiceFrontend


def _outcome_signature(report):
    return {
        name: (stats.requests, stats.identified)
        for name, stats in report.per_class.items()
    }


class TestFrontendRoutedSimulation:
    def test_matches_classic_simulation_outcomes(self, paper_params,
                                                 fast_scheme):
        mix = TrafficMix(genuine=0.7, stranger=0.2, noisy_genuine=0.1)
        classic = WorkloadSimulator(paper_params, fast_scheme, n_users=6,
                                    mix=mix, seed=3)
        classic_report = classic.run(40)

        routed = WorkloadSimulator.with_frontend(
            paper_params, fast_scheme, n_users=6, mix=mix, seed=3,
            batch_window_s=0.005, batch_linger_s=0.001)
        try:
            assert isinstance(routed.endpoint, ServiceFrontend)
            routed_report = routed.run(40)
        finally:
            routed.close()

        assert _outcome_signature(routed_report) == \
            _outcome_signature(classic_report)
        assert routed_report.n_users == classic_report.n_users
        assert routed_report.total_wire_bytes == classic_report.total_wire_bytes

    def test_with_frontend_over_engine_store(self, paper_params, fast_scheme):
        """Frontend + engine compose: the full PR-1/2/3 stack in one run."""
        from repro.engine.engine import IdentificationEngine

        routed = WorkloadSimulator.with_frontend(
            paper_params, fast_scheme, n_users=5, seed=9,
            store_factory=lambda p: IdentificationEngine(p, shards=2))
        try:
            report = routed.run(25)
        finally:
            routed.close()
        assert report.n_requests == 25
        stats = routed.engine_stats()
        assert stats is not None
        assert stats.enrolled == 5
        assert stats.probes_served >= 25
