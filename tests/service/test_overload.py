"""Frontend overload behaviour: deadline sheds, CoDel admission
control, the submit-time fast reject, and the adaptive linger laws.

Every congestion episode here is manufactured deterministically — a
``frontend.batcher`` fault-harness stall or direct controller feeding —
so the assertions are about the control *laws*, not about racing the
scheduler.
"""

import threading
import time

import pytest

from repro import faults
from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.core.params import SystemParams
from repro.engine.engine import IdentificationEngine
from repro.exceptions import DeadlineExceededError, ServiceOverloadError
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import VerificationChallenge
from repro.protocols.runners import run_enrollment
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service import deadlines
from repro.service.frontend import ServiceFrontend, _LingerController

N_USERS = 2


@pytest.fixture
def net_params() -> SystemParams:
    return SystemParams.paper_defaults(n=32)


@pytest.fixture
def population(net_params):
    return UserPopulation(net_params, size=N_USERS,
                          noise=BoundedUniformNoise(net_params.t), seed=41)


@pytest.fixture(autouse=True)
def _no_fault_leakage():
    yield
    faults.clear()


@pytest.fixture
def enrolled(net_params, fast_scheme, population):
    """An enrolled server (no frontend yet: tests pick their knobs)."""
    engine = IdentificationEngine(net_params, shards=2)
    server = AuthenticationServer(net_params, fast_scheme, store=engine,
                                  seed=b"overload-test")
    device = BiometricDevice(net_params, fast_scheme, seed=b"overload-dev")
    for i, user_id in enumerate(population.user_ids()):
        run = run_enrollment(device, server, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted
    return server, population.user_ids()[0]


def _request(user_id: str):
    from repro.protocols.messages import VerificationRequest
    return VerificationRequest(user_id=user_id)


class TestDeadlineSheds:
    def test_expired_at_submission_is_rejected_at_the_door(self, enrolled):
        """A budget already elapsed at submit never queues: the typed
        error (with a backoff hint) comes back immediately and the shed
        counter records it."""
        server, user = enrolled
        frontend = ServiceFrontend(server, workers=1)
        try:
            with deadlines.bind(time.monotonic() - 0.01):
                with pytest.raises(DeadlineExceededError) as excinfo:
                    frontend.handle_verification_request(_request(user))
            assert excinfo.value.retry_after_ms >= 10
            assert frontend.stats().shed_expired == 1
        finally:
            frontend.close()

    def test_expired_while_queued_is_shed_at_dequeue(self, enrolled):
        """An op whose budget elapses while the batcher is busy is shed
        when dequeued, not scanned: the stalled no-deadline op ahead of
        it still succeeds."""
        server, user = enrolled
        faults.install([
            {"point": "frontend.batcher", "style": "delay",
             "delay_s": 0.15, "times": 1},
        ])
        frontend = ServiceFrontend(server, workers=1)
        try:
            results: list[object] = []

            def trigger():
                results.append(
                    frontend.handle_verification_request(_request(user)))

            t = threading.Thread(target=trigger)
            t.start()
            time.sleep(0.03)  # let the trigger op enter the stall
            deadline = deadlines.budget_to_deadline(50)
            with deadlines.bind(deadline):
                with pytest.raises(DeadlineExceededError):
                    frontend.handle_verification_request(_request(user))
            t.join()
            assert isinstance(results[0], VerificationChallenge)
            assert frontend.stats().shed_expired == 1
        finally:
            frontend.close()


class TestCoDelShedding:
    def test_persistent_congestion_sheds_paced_not_drained(self, enrolled):
        """Once dequeued sojourns stay above ``shed_target_s`` for a
        full ``shed_interval_s``, the frontend sheds — but paced: most
        of the backlog is still served, never bulk-dropped."""
        server, user = enrolled
        # Every batcher iteration stalls 60 ms, so queued ops' sojourns
        # (all > 20 ms) form a persistent above-target streak.
        faults.install([
            {"point": "frontend.batcher", "style": "delay",
             "delay_s": 0.06},
        ])
        frontend = ServiceFrontend(server, workers=1,
                                   shed_target_s=0.02,
                                   shed_interval_s=0.05)
        try:
            outcomes: list[object] = []
            lock = threading.Lock()

            def one():
                try:
                    reply = frontend.handle_verification_request(
                        _request(user))
                except ServiceOverloadError as exc:
                    assert exc.retry_after_ms >= 10
                    reply = exc
                with lock:
                    outcomes.append(reply)

            threads = [threading.Thread(target=one) for _ in range(8)]
            for t in threads:
                t.start()
                time.sleep(0.01)  # spread arrivals across iterations
            for t in threads:
                t.join()
            shed = [o for o in outcomes if isinstance(o, ServiceOverloadError)]
            served = [o for o in outcomes
                      if isinstance(o, VerificationChallenge)]
            assert len(shed) >= 1, "persistent congestion must shed"
            assert len(served) >= 4, "CoDel paces sheds, never drains"
            assert frontend.stats().shed_overload == len(shed)
        finally:
            frontend.close()

    def test_no_sheds_below_target(self, enrolled):
        """An uncongested frontend with shedding configured never
        sheds."""
        server, user = enrolled
        frontend = ServiceFrontend(server, workers=1,
                                   shed_target_s=0.5,
                                   shed_interval_s=0.05)
        try:
            for _ in range(6):
                reply = frontend.handle_verification_request(_request(user))
                assert isinstance(reply, VerificationChallenge)
            assert frontend.stats().shed_overload == 0
        finally:
            frontend.close()


class TestSubmitFastReject:
    def test_full_queue_with_tiny_budget_rejects_immediately(self,
                                                             enrolled):
        """Queue full + a deadline budget below the backoff hint: the
        frontend must answer overload *now* — blocking would burn the
        whole budget on a wait that cannot end well."""
        server, user = enrolled
        faults.install([
            {"point": "frontend.batcher", "style": "delay",
             "delay_s": 0.4, "times": 1},
        ])
        frontend = ServiceFrontend(server, workers=1, max_queue=1,
                                   submit_timeout_s=0.35)
        try:
            background: list[threading.Thread] = []
            for _ in range(2):  # one stalls in the batcher, one fills
                t = threading.Thread(
                    target=frontend.handle_verification_request,
                    args=(_request(user),))
                t.start()
                background.append(t)
                time.sleep(0.03)
            start = time.perf_counter()
            with deadlines.bind(deadlines.budget_to_deadline(8)):
                with pytest.raises(ServiceOverloadError) as excinfo:
                    frontend.handle_verification_request(_request(user))
            elapsed = time.perf_counter() - start
            assert elapsed < 0.1, "must fast-reject, not block the budget"
            assert excinfo.value.retry_after_ms >= 10
            for t in background:
                t.join()
        finally:
            frontend.close()


class TestLingerController:
    def test_grows_toward_half_scan_cost_when_uncongested(self):
        ctrl = _LingerController(initial_s=0.004, max_s=0.05,
                                 latency_target_s=0.05)
        for _ in range(40):
            ctrl.observe_flush(batch_size=8, elapsed_s=0.04)
        assert ctrl.linger_s == pytest.approx(0.02, rel=0.05)
        assert ctrl.shrinks == 0

    def test_halves_under_congestion(self):
        ctrl = _LingerController(initial_s=0.016, max_s=0.05,
                                 latency_target_s=0.01)
        for _ in range(3):
            ctrl.observe_sojourn(0.2)  # sojourn EWMA far above target
            ctrl.observe_flush(batch_size=8, elapsed_s=0.04)
        assert ctrl.linger_s == pytest.approx(0.002, rel=0.05)
        assert ctrl.shrinks == 3

    def test_never_exceeds_the_window(self):
        ctrl = _LingerController(initial_s=0.004, max_s=0.01,
                                 latency_target_s=1.0)
        for _ in range(100):
            ctrl.observe_flush(batch_size=8, elapsed_s=1.0)
        assert ctrl.linger_s <= 0.01


class TestHealthSnapshot:
    def test_snapshot_carries_overload_fields(self, enrolled):
        """The health frame is how failover clients see congestion: the
        hint, shed counters, restart count, and degraded flag all cross
        it."""
        server, _ = enrolled
        frontend = ServiceFrontend(server, workers=1)
        try:
            snap = frontend.health_snapshot()
            assert snap["retry_after_ms"] >= 10
            assert snap["shed_expired"] == 0
            assert snap["shed_overload"] == 0
            assert snap["batcher_restarts"] == 0
            assert snap["degraded"] is False
            assert snap["ready"] is True
        finally:
            frontend.close()
