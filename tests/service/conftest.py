"""Service-layer test fixtures: every test here runs under the watchdog
(the concurrency machinery must fail fast, never hang the suite)."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _service_watchdog(watchdog):
    """Arm the shared per-test deadline for every service test."""
    yield
