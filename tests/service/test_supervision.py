"""Batcher supervision: crash -> typed retryable failure -> restart,
and past the restart budget, graceful degradation to the serial path."""

from __future__ import annotations

import time

import pytest

from repro import faults
from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.exceptions import ServiceRestartingError, TransientError
from repro.protocols.device import BiometricDevice
from repro.protocols.runners import run_enrollment, run_identification
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service import ServiceFrontend


@pytest.fixture
def stack(paper_params, fast_scheme):
    population = UserPopulation(paper_params, size=3,
                                noise=BoundedUniformNoise(paper_params.t),
                                seed=31)
    server = AuthenticationServer(paper_params, fast_scheme, seed=b"sup-srv")
    device = BiometricDevice(paper_params, fast_scheme, seed=b"sup-dev")
    return server, population, device


@pytest.fixture(autouse=True)
def _no_fault_leakage():
    yield
    faults.clear()


def _enroll_all(frontend, device, population):
    for i, user_id in enumerate(population.user_ids()):
        run = run_enrollment(device, frontend, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted


def _wait_restarts(frontend, count, deadline_s=10.0):
    deadline = time.monotonic() + deadline_s
    while frontend.health_snapshot()["batcher_restarts"] < count:
        assert time.monotonic() < deadline, "batcher never restarted"
        time.sleep(0.005)


class TestBatcherRestart:
    def test_crash_fails_inflight_op_typed_and_recovers(self, stack):
        server, population, device = stack
        with ServiceFrontend(server, batch_window_s=0.01,
                             batch_linger_s=0.002) as frontend:
            _enroll_all(frontend, device, population)

            faults.install([{"point": "frontend.batcher", "style": "raise",
                             "times": 1}])
            with pytest.raises(ServiceRestartingError) as excinfo:
                run_identification(device, frontend, DuplexLink(),
                                   population.genuine_reading(0))
            # Typed, transient, and carrying a backoff hint — exactly
            # what the retry layer needs to do the right thing.
            assert isinstance(excinfo.value, TransientError)
            assert excinfo.value.retry_after_ms >= 10

            # The supervisor restarts the batcher; the next run succeeds
            # on the batched path (not the degraded serial one).
            _wait_restarts(frontend, 1)
            run = run_identification(device, frontend, DuplexLink(),
                                     population.genuine_reading(0))
            assert run.outcome.user_id == population.user_ids()[0]
            health = frontend.health_snapshot()
            assert health["batcher_restarts"] == 1
            assert not health["degraded"]
            assert health["ready"]

    def test_crash_storm_degrades_to_serial_service(self, stack):
        server, population, device = stack
        with ServiceFrontend(server, batch_window_s=0.01,
                             batch_linger_s=0.002,
                             max_batcher_restarts=2) as frontend:
            _enroll_all(frontend, device, population)

            # Every batcher tick dies: the supervisor burns through its
            # restart budget and flips to degraded.
            faults.install([{"point": "frontend.batcher",
                             "style": "raise"}])
            deadline = time.monotonic() + 15.0
            while not frontend.health_snapshot()["degraded"]:
                assert time.monotonic() < deadline, "never degraded"
                try:
                    run_identification(device, frontend, DuplexLink(),
                                       population.genuine_reading(0))
                except ServiceRestartingError:
                    pass
                time.sleep(0.01)
            faults.clear()

            # Degraded is not down: the serial path answers correctly
            # and health says so (ready, with the degraded flag up).
            health = frontend.health_snapshot()
            assert health["degraded"] and health["ready"]
            for i in range(len(population)):
                run = run_identification(device, frontend, DuplexLink(),
                                         population.genuine_reading(i))
                assert run.outcome.user_id == population.user_ids()[i]

    def test_degraded_path_still_enrolls(self, stack):
        server, population, device = stack
        with ServiceFrontend(server, batch_window_s=0.01,
                             batch_linger_s=0.002,
                             max_batcher_restarts=0) as frontend:
            faults.install([{"point": "frontend.batcher",
                             "style": "raise"}])
            deadline = time.monotonic() + 15.0
            while not frontend.health_snapshot()["degraded"]:
                assert time.monotonic() < deadline, "never degraded"
                try:
                    run_enrollment(device, frontend, DuplexLink(), "early",
                                   population.template(0))
                except ServiceRestartingError:
                    pass
                time.sleep(0.01)
            faults.clear()
            run = run_enrollment(device, frontend, DuplexLink(), "late",
                                 population.template(1))
            assert run.outcome.accepted
            run = run_identification(device, frontend, DuplexLink(),
                                     population.genuine_reading(1))
            assert run.outcome.user_id == "late"
