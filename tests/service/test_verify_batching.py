"""The frontend's verification-response micro-batcher: batched and serial
verification must return identical accept/reject decisions (the PR's
parity criterion), coalescing must actually happen under concurrency, and
a poisoned batchmate must fail alone — all on top of the server's
``handle_verification_response_batch`` and the cache's ``verify_batch``.

Runs under the service conftest's autouse watchdog.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
from repro.crypto.signatures import get_scheme
from repro.protocols.device import BiometricDevice
from repro.protocols.messages import (
    VerificationChallenge,
    VerificationOutcome,
    VerificationRequest,
    VerificationResponse,
)
from repro.protocols.runners import run_enrollment, run_verification
from repro.protocols.server import AuthenticationServer
from repro.protocols.transport import DuplexLink
from repro.service import ServiceFrontend

N_USERS = 6


def _build_stack(params, scheme, seed=b"vb-srv"):
    population = UserPopulation(params, size=N_USERS,
                                noise=BoundedUniformNoise(params.t),
                                seed=23)
    server = AuthenticationServer(params, scheme, seed=seed)
    devices = {}
    for i, user_id in enumerate(population.user_ids()):
        devices[user_id] = BiometricDevice(params, scheme,
                                           seed=user_id.encode() + b"-vbd")
        run = run_enrollment(devices[user_id], server, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted
    return server, population, devices


@pytest.fixture(params=["schnorr-p-256", "dsa-512"],
                ids=["schnorr-msm", "dsa-loop"])
def stack(request, paper_params):
    """One stack per back-end: the MSM batch path and the loop fallback."""
    scheme = get_scheme(request.param)
    return _build_stack(paper_params, scheme)


def _tampered_response(endpoint, user_id) -> VerificationOutcome:
    """Open a real session, answer with a garbage signature."""
    challenge = endpoint.handle_verification_request(
        VerificationRequest(user_id=user_id))
    assert isinstance(challenge, VerificationChallenge)
    return endpoint.handle_verification_response(VerificationResponse(
        session_id=challenge.session_id, signature=b"\x01" * 65,
        nonce=b"\x02" * 16))


class TestBatchedSerialParity:
    """Acceptance criterion: batched and serial verification return
    identical accept/reject decisions, genuine and tampered alike."""

    def test_concurrent_mixed_verdicts_match_serial(self, stack):
        server, population, devices = stack
        user_ids = population.user_ids()

        # Serial ground truth on the bare server: genuine readings
        # accept, tampered responses reject.
        serial: list[tuple[str, bool]] = []
        for i, user_id in enumerate(user_ids):
            run = run_verification(devices[user_id], server, DuplexLink(),
                                   user_id, population.genuine_reading(i))
            serial.append((user_id, run.outcome.verified))
        for user_id in user_ids[:3]:
            outcome = _tampered_response(server, user_id)
            serial.append((user_id, outcome.verified))
        serial_audit = Counter(e.kind for e in server.audit_log()
                               if e.kind.startswith("verify"))

        # The same workload, concurrent, through the batching frontend
        # on an identically seeded fresh stack.
        server2, population2, devices2 = _build_stack(
            server.params, server.scheme)
        concurrent: list[tuple[str, bool]] = []
        lock = threading.Lock()
        errors: list[BaseException] = []
        with ServiceFrontend(server2, batch_window_s=0.05,
                             batch_linger_s=0.01,
                             result_timeout_s=30.0) as frontend:
            barrier = threading.Barrier(N_USERS + 3)

            def genuine(i: int) -> None:
                user_id = user_ids[i]
                try:
                    barrier.wait()
                    run = run_verification(
                        devices2[user_id], frontend, DuplexLink(), user_id,
                        population2.genuine_reading(i))
                    with lock:
                        concurrent.append((user_id, run.outcome.verified))
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            def tampered(i: int) -> None:
                user_id = user_ids[i]
                try:
                    barrier.wait()
                    outcome = _tampered_response(frontend, user_id)
                    with lock:
                        concurrent.append((user_id, outcome.verified))
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=genuine, args=(i,))
                       for i in range(N_USERS)]
            threads += [threading.Thread(target=tampered, args=(i,))
                        for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            stats = frontend.stats()
        assert Counter(concurrent) == Counter(serial)
        frontend_audit = Counter(e.kind for e in server2.audit_log()
                                 if e.kind.startswith("verify"))
        assert frontend_audit == serial_audit
        assert stats.verify_batches >= 1
        assert stats.verify_ops == N_USERS + 3

    def test_batch_counters_reach_cache_and_engine_stats(self, paper_params):
        scheme = get_scheme("schnorr-p-256")
        server, population, devices = _build_stack(paper_params, scheme)
        with ServiceFrontend(server, batch_window_s=0.05,
                             batch_linger_s=0.01) as frontend:
            futures = []
            for i, user_id in enumerate(population.user_ids()):
                challenge = frontend.handle_verification_request(
                    VerificationRequest(user_id=user_id))
                response = devices[user_id].respond_verification(
                    population.genuine_reading(i), challenge.helper_data,
                    challenge.challenge, challenge.session_id)
                futures.append(frontend._submit("verify-response", response))
            outcomes = [f.result(timeout=20.0) for f in futures]
        assert all(o.verified for o in outcomes)
        cache_stats = server.key_tables.stats()
        assert cache_stats["batch_calls"] >= 1
        assert cache_stats["batch_items"] == N_USERS


class TestBatchIsolation:
    def test_poisoned_response_fails_alone_not_its_batchmates(self, stack):
        """A garbage payload coalesced with a genuine response must error
        only its own caller — and must not consume the genuine response's
        session (the batch handler reads fields before popping)."""
        server, population, devices = stack
        user_id = population.user_ids()[0]
        challenge = server.handle_verification_request(
            VerificationRequest(user_id=user_id))
        good_response = devices[user_id].respond_verification(
            population.genuine_reading(0), challenge.helper_data,
            challenge.challenge, challenge.session_id)
        with ServiceFrontend(server, batch_linger_s=0.05,
                             batch_window_s=0.2) as frontend:
            bad = frontend._submit("verify-response", object())  # no fields
            good = frontend._submit("verify-response", good_response)
            with pytest.raises(AttributeError):
                bad.result(timeout=10.0)
            outcome = good.result(timeout=10.0)
            assert outcome.verified and outcome.user_id == user_id
        assert frontend.stats().max_verify_batch == 2  # they shared a batch

    def test_dead_session_in_batch_fails_closed(self, stack):
        server, population, devices = stack
        user_id = population.user_ids()[0]
        challenge = server.handle_verification_request(
            VerificationRequest(user_id=user_id))
        response = devices[user_id].respond_verification(
            population.genuine_reading(0), challenge.helper_data,
            challenge.challenge, challenge.session_id)
        dead = VerificationResponse(session_id=b"\x00" * 16,
                                    signature=response.signature,
                                    nonce=response.nonce)
        with ServiceFrontend(server, batch_linger_s=0.05,
                             batch_window_s=0.2) as frontend:
            dead_future = frontend._submit("verify-response", dead)
            good_future = frontend._submit("verify-response", response)
            dead_outcome = dead_future.result(timeout=10.0)
            good_outcome = good_future.result(timeout=10.0)
        assert not dead_outcome.verified and dead_outcome.user_id == ""
        assert good_outcome.verified and good_outcome.user_id == user_id

    def test_replay_within_one_batch_is_rejected_once(self, stack):
        """Two responses naming the same session coalesced together: the
        first consumes the one-shot challenge, the replay fails closed —
        exactly the serial replay-protection semantics."""
        server, population, devices = stack
        user_id = population.user_ids()[0]
        challenge = server.handle_verification_request(
            VerificationRequest(user_id=user_id))
        response = devices[user_id].respond_verification(
            population.genuine_reading(0), challenge.helper_data,
            challenge.challenge, challenge.session_id)
        with ServiceFrontend(server, batch_linger_s=0.05,
                             batch_window_s=0.2) as frontend:
            first = frontend._submit("verify-response", response)
            replay = frontend._submit("verify-response", response)
            outcomes = [first.result(timeout=10.0),
                        replay.result(timeout=10.0)]
        verdicts = sorted(o.verified for o in outcomes)
        assert verdicts == [False, True]

    def test_raising_scheme_fails_its_item_closed_not_the_batch(
            self, paper_params):
        """A scheme whose ``verify`` *raises* on garbage (instead of
        returning False) must not take honest batchmates down with it:
        their sessions are already spent when the batched crypto call
        explodes, so the server retries per item in place — the culprit
        fails closed, the honest response keeps its true verdict."""
        base = get_scheme("dsa-512")

        class Prickly:
            """dsa-512, except garbage signatures raise."""

            name = "prickly-dsa-512"

            def keygen_from_seed(self, seed):
                return base.keygen_from_seed(seed)

            def sign(self, signing_key, message):
                return base.sign(signing_key, message)

            def precompute(self, verify_key):
                return base.precompute(verify_key)

            def verify(self, verify_key, message, signature, table=None):
                if signature == b"\x07" * 40:
                    raise RuntimeError("garbage signature")
                return base.verify(verify_key, message, signature,
                                   table=table)

            def verify_batch(self, items, tables=None):
                return [self.verify(k, m, s) for k, m, s in items]

        server, population, devices = _build_stack(paper_params, Prickly())
        user_ids = population.user_ids()
        challenge_a = server.handle_verification_request(
            VerificationRequest(user_id=user_ids[0]))
        good = devices[user_ids[0]].respond_verification(
            population.genuine_reading(0), challenge_a.helper_data,
            challenge_a.challenge, challenge_a.session_id)
        challenge_b = server.handle_verification_request(
            VerificationRequest(user_id=user_ids[1]))
        bad = VerificationResponse(session_id=challenge_b.session_id,
                                   signature=b"\x07" * 40,
                                   nonce=b"\x01" * 16)
        outcomes = server.handle_verification_response_batch([good, bad])
        assert outcomes[0].verified and outcomes[0].user_id == user_ids[0]
        assert not outcomes[1].verified
        assert outcomes[1].user_id == user_ids[1]  # audited, fail-closed
        kinds = Counter(e.kind for e in server.audit_log()
                        if e.kind.startswith("verify"))
        assert kinds["verify-ok"] == 1 and kinds["verify-fail"] == 1

    def test_mixed_identify_and_verify_burst_flushes_both(self, stack):
        """One window collecting both coalescable kinds dispatches one
        scan batch and one verify batch, nothing starved."""
        server, population, devices = stack
        user_id = population.user_ids()[0]
        device = devices[user_id]
        challenge = server.handle_verification_request(
            VerificationRequest(user_id=user_id))
        response = device.respond_verification(
            population.genuine_reading(0), challenge.helper_data,
            challenge.challenge, challenge.session_id)
        with ServiceFrontend(server, batch_linger_s=0.05,
                             batch_window_s=0.2) as frontend:
            probe = frontend._submit(
                "identify", device.probe_sketch(
                    population.genuine_reading(0)))
            verify_future = frontend._submit("verify-response", response)
            reply = probe.result(timeout=10.0)
            outcome = verify_future.result(timeout=10.0)
        assert hasattr(reply, "session_id")  # challenged, not dropped
        assert outcome.verified
        stats = frontend.stats()
        assert stats.identify_batches == 1
        assert stats.verify_batches == 1
