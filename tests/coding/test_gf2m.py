"""Tests for GF(2^m) field arithmetic: axioms and table correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.gf2m import GF2m, PRIMITIVE_POLYNOMIALS, get_field


def _slow_mul(a: int, b: int, m: int, poly: int) -> int:
    """Reference carry-less multiplication with polynomial reduction."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a & (1 << m):
            a ^= poly
    return result


class TestConstruction:
    @pytest.mark.parametrize("m", sorted(PRIMITIVE_POLYNOMIALS))
    def test_all_listed_polynomials_are_primitive(self, m):
        # GF2m's constructor raises unless alpha generates the full
        # multiplicative group, so construction itself is the check.
        field = GF2m(m)
        assert field.order == 1 << m

    def test_rejects_wrong_degree_polynomial(self):
        with pytest.raises(ValueError, match="degree"):
            GF2m(4, primitive_poly=0b111)

    def test_rejects_non_primitive_polynomial(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive
        # (alpha has order 5, not 15).
        with pytest.raises(ValueError, match="not primitive"):
            GF2m(4, primitive_poly=0b11111)

    def test_rejects_out_of_range_m(self):
        with pytest.raises(ValueError):
            GF2m(1)
        with pytest.raises(ValueError):
            GF2m(17)

    def test_cache_returns_same_object(self):
        assert get_field(8) is get_field(8)


class TestFieldAxioms:
    """Exhaustive checks on GF(2^4); property checks on GF(2^8)."""

    def test_multiplication_matches_reference_gf16(self):
        field = GF2m(4)
        poly = PRIMITIVE_POLYNOMIALS[4]
        for a in range(16):
            for b in range(16):
                assert field.mul(a, b) == _slow_mul(a, b, 4, poly)

    def test_every_nonzero_element_invertible_gf16(self):
        field = GF2m(4)
        for a in range(1, 16):
            assert field.mul(a, field.inv(a)) == 1

    @given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.integers(0, 255))
    @settings(max_examples=200)
    def test_distributivity_gf256(self, a, b, c):
        field = get_field(8)
        assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_commutativity_gf256(self, a, b):
        field = get_field(8)
        assert field.mul(a, b) == field.mul(b, a)

    @given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.integers(0, 255))
    @settings(max_examples=200)
    def test_associativity_gf256(self, a, b, c):
        field = get_field(8)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    def test_zero_annihilates(self):
        field = get_field(8)
        for a in (0, 1, 77, 255):
            assert field.mul(a, 0) == 0

    def test_one_is_identity(self):
        field = get_field(8)
        for a in range(256):
            assert field.mul(a, 1) == a

    def test_inv_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            get_field(8).inv(0)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            get_field(8).div(1, 0)

    @given(a=st.integers(1, 255), b=st.integers(1, 255))
    def test_div_is_mul_by_inverse(self, a, b):
        field = get_field(8)
        assert field.div(a, b) == field.mul(a, field.inv(b))


class TestPowers:
    def test_alpha_powers_cycle(self):
        field = get_field(4)
        assert field.alpha_power(0) == 1
        assert field.alpha_power(15) == 1  # order 2^4 - 1

    def test_negative_alpha_power(self):
        field = get_field(4)
        assert field.mul(field.alpha_power(-3), field.alpha_power(3)) == 1

    @given(a=st.integers(1, 255), e=st.integers(-50, 50))
    @settings(max_examples=100)
    def test_pow_matches_repeated_mul(self, a, e):
        field = get_field(8)
        expected = 1
        base = a if e >= 0 else field.inv(a)
        for _ in range(abs(e)):
            expected = field.mul(expected, base)
        assert field.pow(a, e) == expected

    def test_pow_zero_conventions(self):
        field = get_field(8)
        assert field.pow(0, 0) == 1
        assert field.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            field.pow(0, -1)

    def test_log_alpha_inverts_alpha_power(self):
        field = get_field(6)
        for power in range(0, 63, 7):
            assert field.log_alpha(field.alpha_power(power)) == power

    def test_log_of_zero_raises(self):
        with pytest.raises(ValueError):
            get_field(4).log_alpha(0)


class TestVectorOps:
    def test_mul_vector_matches_scalar(self):
        field = get_field(8)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 100)
        b = rng.integers(0, 256, 100)
        expected = np.array([field.mul(int(x), int(y)) for x, y in zip(a, b)])
        assert np.array_equal(field.mul_vector(a, b), expected)

    def test_mul_vector_broadcasts_scalar(self):
        field = get_field(8)
        a = np.array([1, 2, 3])
        result = field.mul_vector(a, np.int64(7))
        expected = np.array([field.mul(int(x), 7) for x in a])
        assert np.array_equal(result, expected)

    def test_eval_poly_at_points_matches_horner(self):
        from repro.coding.polynomial import evaluate

        field = get_field(8)
        coeffs = np.array([3, 0, 7, 1], dtype=np.int64)
        points = np.arange(0, 256, 17, dtype=np.int64)
        result = field.eval_poly_at_points(coeffs, points)
        expected = np.array([
            evaluate(field, [3, 0, 7, 1], int(x)) for x in points
        ])
        assert np.array_equal(result, expected)

    def test_elements(self):
        assert len(get_field(5).elements()) == 32
