"""Tests for Reed-Solomon codes and the Berlekamp-Welch decoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import polynomial as poly
from repro.coding.gf2m import get_field
from repro.coding.reed_solomon import RsCode, berlekamp_welch
from repro.exceptions import DecodingError, ParameterError


class TestRsConstruction:
    def test_length_and_capacity(self):
        code = RsCode(4, 7)
        assert (code.n, code.k, code.t) == (15, 7, 4)

    def test_rejects_k_out_of_range(self):
        with pytest.raises(ParameterError):
            RsCode(4, 15)
        with pytest.raises(ParameterError):
            RsCode(4, 0)

    def test_shortened_length(self):
        code = RsCode(8, 100, shorten=55)
        assert code.n == 200


class TestRsRoundTrip:
    @given(seed=st.integers(0, 10 ** 6), n_errors=st.integers(0, 4))
    @settings(max_examples=40)
    def test_corrects_up_to_t(self, seed, n_errors):
        code = RsCode(6, 30)  # t = 16
        rng = np.random.default_rng(seed)
        msg = rng.integers(0, 64, size=code.k, dtype=np.int64)
        cw = code.encode(msg)
        corrupted = cw.copy()
        if n_errors:
            positions = rng.choice(code.n, size=n_errors, replace=False)
            for p in positions:
                corrupted[p] ^= int(rng.integers(1, 64))
        decoded, count = code.decode(corrupted)
        assert np.array_equal(decoded, cw)
        assert count == n_errors
        assert np.array_equal(code.extract_message(decoded), msg)

    def test_capacity_errors_corrected(self, rng):
        code = RsCode(4, 7)  # t = 4
        msg = rng.integers(0, 16, size=7, dtype=np.int64)
        cw = code.encode(msg)
        corrupted = cw.copy()
        for p in rng.choice(code.n, size=code.t, replace=False):
            corrupted[p] ^= int(rng.integers(1, 16))
        decoded, count = code.decode(corrupted)
        assert np.array_equal(decoded, cw) and count == code.t

    def test_beyond_capacity_never_silently_original(self, rng):
        code = RsCode(4, 7)
        cw = code.encode(rng.integers(0, 16, size=7, dtype=np.int64))
        corrupted = cw.copy()
        for p in rng.choice(code.n, size=code.t * 2 + 1, replace=False):
            corrupted[p] ^= int(rng.integers(1, 16))
        try:
            decoded, _ = code.decode(corrupted)
        except DecodingError:
            return
        assert not np.array_equal(decoded, cw)

    def test_out_of_field_symbols_rejected(self):
        code = RsCode(4, 7)
        with pytest.raises(ParameterError):
            code.encode(np.full(7, 16, dtype=np.int64))

    def test_shortened_roundtrip(self, rng):
        code = RsCode(6, 20, shorten=13)  # n = 50
        msg = rng.integers(0, 64, size=code.k, dtype=np.int64)
        cw = code.encode(msg)
        corrupted = cw.copy()
        for p in rng.choice(code.n, size=5, replace=False):
            corrupted[p] ^= int(rng.integers(1, 64))
        decoded, count = code.decode(corrupted)
        assert np.array_equal(decoded, cw) and count == 5


class TestBerlekampWelch:
    FIELD = get_field(8)

    def _evaluate_all(self, coeffs, xs):
        return [poly.evaluate(self.FIELD, coeffs, x) for x in xs]

    def test_no_errors(self):
        secret = [10, 20, 30]
        xs = list(range(1, 10))
        ys = self._evaluate_all(secret, xs)
        assert berlekamp_welch(self.FIELD, xs, ys, k=3) == secret

    @given(seed=st.integers(0, 10 ** 6), n_errors=st.integers(0, 8))
    @settings(max_examples=40)
    def test_corrects_within_capacity(self, seed, n_errors):
        rng = np.random.default_rng(seed)
        k = 4
        secret = [int(rng.integers(0, 256)) for _ in range(k)]
        while secret and secret[-1] == 0:
            secret[-1] = int(rng.integers(0, 256))
        xs = list(range(1, 25))  # 24 points, capacity (24-4)/2 = 10
        ys = self._evaluate_all(secret, xs)
        for pos in rng.choice(len(xs), size=n_errors, replace=False):
            ys[pos] ^= int(rng.integers(1, 256))
        recovered = berlekamp_welch(self.FIELD, xs, ys, k=k)
        padded = recovered + [0] * (k - len(recovered))
        expected = poly.normalize(secret)
        assert poly.normalize(padded) == expected

    def test_too_many_errors_raises(self):
        secret = [1, 2, 3, 4]
        xs = list(range(1, 11))  # capacity (10-4)/2 = 3
        ys = self._evaluate_all(secret, xs)
        rng = np.random.default_rng(1)
        for pos in rng.choice(len(xs), size=5, replace=False):
            ys[pos] ^= int(rng.integers(1, 256))
        with pytest.raises(DecodingError):
            berlekamp_welch(self.FIELD, xs, ys, k=4, max_errors=3)

    def test_insufficient_points_raises(self):
        with pytest.raises(DecodingError, match="at least"):
            berlekamp_welch(self.FIELD, [1, 2], [3, 4], k=3)

    def test_duplicate_points_rejected(self):
        with pytest.raises(ParameterError, match="distinct"):
            berlekamp_welch(self.FIELD, [1, 1, 2], [3, 3, 4], k=2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="equal length"):
            berlekamp_welch(self.FIELD, [1, 2], [3], k=1)

    def test_max_errors_zero_requires_exact_fit(self):
        secret = [5, 6]
        xs = [1, 2, 3, 4]
        ys = self._evaluate_all(secret, xs)
        assert berlekamp_welch(self.FIELD, xs, ys, k=2, max_errors=0) == secret
        ys[0] ^= 9
        with pytest.raises(DecodingError):
            berlekamp_welch(self.FIELD, xs, ys, k=2, max_errors=0)
