"""Tests for polynomial arithmetic over GF(2^m)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import polynomial as poly
from repro.coding.gf2m import get_field

FIELD = get_field(8)


def _polys(max_degree=6):
    return st.lists(st.integers(0, 255), min_size=0, max_size=max_degree + 1)


class TestBasics:
    def test_normalize_strips_trailing_zeros(self):
        assert poly.normalize([1, 2, 0, 0]) == [1, 2]

    def test_normalize_zero_polynomial(self):
        assert poly.normalize([0, 0, 0]) == []

    def test_degree(self):
        assert poly.degree([5]) == 0
        assert poly.degree([0, 1]) == 1
        assert poly.degree([]) == -1
        assert poly.degree([0, 0]) == -1

    @given(_polys(), _polys())
    def test_add_commutative(self, a, b):
        assert poly.add(FIELD, a, b) == poly.add(FIELD, b, a)

    @given(_polys())
    def test_add_self_is_zero(self, a):
        assert poly.add(FIELD, a, a) == []

    @given(_polys(), _polys())
    def test_mul_commutative(self, a, b):
        assert poly.mul(FIELD, a, b) == poly.mul(FIELD, b, a)

    @given(_polys(3), _polys(3), _polys(3))
    @settings(max_examples=50)
    def test_mul_distributes_over_add(self, a, b, c):
        lhs = poly.mul(FIELD, a, poly.add(FIELD, b, c))
        rhs = poly.add(FIELD, poly.mul(FIELD, a, b), poly.mul(FIELD, a, c))
        assert lhs == rhs

    def test_mul_degrees_add(self):
        a = [1, 0, 3]   # degree 2
        b = [0, 7]      # degree 1
        assert poly.degree(poly.mul(FIELD, a, b)) == 3

    def test_shift_multiplies_by_x(self):
        assert poly.shift([1, 2], 2) == [0, 0, 1, 2]
        assert poly.shift([], 5) == []

    def test_scale(self):
        assert poly.scale(FIELD, [1, 2], 0) == []
        assert poly.scale(FIELD, [1, 2], 1) == [1, 2]


class TestDivision:
    @given(_polys(6), _polys(4))
    @settings(max_examples=100)
    def test_divmod_identity(self, a, b):
        if poly.degree(b) < 0:
            return
        q, r = poly.divmod_poly(FIELD, a, b)
        reconstructed = poly.add(FIELD, poly.mul(FIELD, q, b), r)
        assert reconstructed == poly.normalize(a)
        assert poly.degree(r) < poly.degree(b)

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            poly.divmod_poly(FIELD, [1, 2], [])

    def test_exact_division(self):
        product = poly.mul(FIELD, [3, 1], [5, 0, 1])
        q, r = poly.divmod_poly(FIELD, product, [3, 1])
        assert r == []
        assert q == [5, 0, 1]


class TestEvaluate:
    def test_constant(self):
        assert poly.evaluate(FIELD, [42], 17) == 42

    def test_zero_poly(self):
        assert poly.evaluate(FIELD, [], 5) == 0

    def test_at_zero_gives_constant_term(self):
        assert poly.evaluate(FIELD, [9, 1, 1], 0) == 9

    @given(_polys(), _polys(), st.integers(0, 255))
    @settings(max_examples=50)
    def test_evaluation_is_ring_homomorphism(self, a, b, x):
        lhs = poly.evaluate(FIELD, poly.mul(FIELD, a, b), x)
        rhs = FIELD.mul(poly.evaluate(FIELD, a, x), poly.evaluate(FIELD, b, x))
        assert lhs == rhs


class TestDerivative:
    def test_char2_even_terms_vanish(self):
        # d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2 in char 2.
        assert poly.derivative(FIELD, [9, 7, 5, 3]) == [7, 0, 3]

    def test_constant_derivative_zero(self):
        assert poly.derivative(FIELD, [5]) == []


class TestInterpolation:
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=6, unique=True))
    @settings(max_examples=50)
    def test_interpolation_passes_through_points(self, xs):
        import numpy as np

        rng = np.random.default_rng(sum(xs) + len(xs))
        ys = [int(rng.integers(0, 256)) for _ in xs]
        p = poly.lagrange_interpolate(FIELD, xs, ys)
        assert poly.degree(p) < len(xs)
        for x, y in zip(xs, ys):
            assert poly.evaluate(FIELD, p, x) == y

    def test_recovers_known_polynomial(self):
        secret = [13, 7, 99]
        xs = [1, 2, 3, 4]
        ys = [poly.evaluate(FIELD, secret, x) for x in xs]
        assert poly.lagrange_interpolate(FIELD, xs, ys) == secret

    def test_duplicate_x_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            poly.lagrange_interpolate(FIELD, [1, 1], [2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            poly.lagrange_interpolate(FIELD, [1, 2], [3])


class TestGcdMonic:
    def test_monic_leading_one(self):
        p = poly.monic(FIELD, [2, 4, 6])
        assert p[-1] == 1

    def test_gcd_of_multiples(self):
        common = [3, 1]  # x + 3
        a = poly.mul(FIELD, common, [5, 0, 1])
        b = poly.mul(FIELD, common, [7, 1])
        g = poly.gcd_poly(FIELD, a, b)
        assert g == poly.monic(FIELD, common)

    def test_gcd_coprime_is_one(self):
        # (x + 1) and (x + 2) are coprime.
        assert poly.gcd_poly(FIELD, [1, 1], [2, 1]) == [1]
