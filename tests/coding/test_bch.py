"""Tests for the BCH codec: construction, round-trips, failure modes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.bch import BchCode, design_bch
from repro.exceptions import DecodingError, ParameterError


class TestConstruction:
    @pytest.mark.parametrize("m,t,expected_n", [(4, 2, 15), (5, 3, 31),
                                                (7, 10, 127), (8, 15, 255)])
    def test_code_length(self, m, t, expected_n):
        assert BchCode(m, t).n == expected_n

    def test_known_dimension_15_7(self):
        # BCH(15, 7, t=2) is the classic double-error-correcting code.
        code = BchCode(4, 2)
        assert (code.n, code.k) == (15, 7)

    def test_known_dimension_15_5(self):
        code = BchCode(4, 3)
        assert (code.n, code.k) == (15, 5)

    def test_rejects_zero_t(self):
        with pytest.raises(ParameterError):
            BchCode(4, 0)

    def test_rejects_excessive_t(self):
        with pytest.raises(ParameterError):
            BchCode(4, 8)  # 2t+1 = 17 > 15

    def test_rejects_bad_shorten(self):
        code = BchCode(4, 2)
        with pytest.raises(ParameterError):
            BchCode(4, 2, shorten=code.k)

    def test_generator_is_binary(self):
        code = BchCode(6, 5)
        assert all(c in (0, 1) for c in code.generator)

    def test_generator_divides_x_n_minus_1(self):
        """g(x) | x^n + 1 — the defining property of a cyclic code."""
        from repro.coding import polynomial as poly

        code = BchCode(4, 2)
        x_n_1 = [1] + [0] * (code.n - 1) + [1]
        _, remainder = poly.divmod_poly(code.field, x_n_1, code.generator)
        assert remainder == []


class TestEncode:
    def test_systematic_message_recoverable(self, rng):
        code = BchCode(5, 3)
        msg = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        assert np.array_equal(code.extract_message(code.encode(msg)), msg)

    def test_codeword_passes_membership(self, rng):
        code = BchCode(5, 3)
        cw = code.encode(rng.integers(0, 2, size=code.k, dtype=np.uint8))
        assert code.is_codeword(cw)

    def test_zero_message_gives_zero_codeword(self):
        code = BchCode(4, 2)
        assert not np.any(code.encode(np.zeros(code.k, dtype=np.uint8)))

    def test_linearity(self, rng):
        code = BchCode(5, 3)
        m1 = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        m2 = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        assert np.array_equal(
            code.encode(m1 ^ m2), code.encode(m1) ^ code.encode(m2)
        )

    def test_rejects_wrong_length(self):
        code = BchCode(4, 2)
        with pytest.raises(ParameterError):
            code.encode(np.zeros(code.k + 1, dtype=np.uint8))

    def test_rejects_non_binary(self):
        code = BchCode(4, 2)
        with pytest.raises(ParameterError):
            code.encode(np.full(code.k, 2, dtype=np.uint8))


class TestDecode:
    @given(seed=st.integers(0, 10 ** 6), n_errors=st.integers(0, 5))
    @settings(max_examples=60)
    def test_corrects_up_to_t(self, seed, n_errors):
        code = BchCode(7, 5)
        rng = np.random.default_rng(seed)
        cw = code.random_codeword(rng)
        corrupted = cw.copy()
        if n_errors:
            positions = rng.choice(code.n, size=n_errors, replace=False)
            corrupted[positions] ^= 1
        decoded, count = code.decode(corrupted)
        assert np.array_equal(decoded, cw)
        assert count == n_errors

    def test_clean_word_zero_errors(self, rng):
        code = BchCode(5, 3)
        cw = code.random_codeword(rng)
        decoded, count = code.decode(cw)
        assert count == 0
        assert np.array_equal(decoded, cw)

    def test_beyond_capacity_raises_or_miscorrects_detectably(self, rng):
        """t+many errors: decoder must raise, never silently return the
        original codeword as if nothing happened with wrong count."""
        code = BchCode(5, 2)
        cw = code.random_codeword(rng)
        corrupted = cw.copy()
        corrupted[rng.choice(code.n, size=11, replace=False)] ^= 1
        try:
            decoded, count = code.decode(corrupted)
        except DecodingError:
            return
        # Miscorrection to a *different* codeword is information-
        # theoretically unavoidable; decoding back to cw is not.
        assert not np.array_equal(decoded, cw)

    def test_error_in_every_parity_position(self, rng):
        code = BchCode(5, 3)
        cw = code.random_codeword(rng)
        corrupted = cw.copy()
        corrupted[:3] ^= 1  # parity region
        decoded, count = code.decode(corrupted)
        assert np.array_equal(decoded, cw) and count == 3


class TestShortened:
    def test_shortened_roundtrip(self, rng):
        code = BchCode(8, 10, shorten=55)
        assert code.n == 200 and code.k == 255 - code.spec.generator_degree - 55
        msg = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        cw = code.encode(msg)
        corrupted = cw.copy()
        corrupted[rng.choice(code.n, size=10, replace=False)] ^= 1
        decoded, count = code.decode(corrupted)
        assert np.array_equal(decoded, cw) and count == 10
        assert np.array_equal(code.extract_message(decoded), msg)

    def test_shortened_membership(self, rng):
        code = BchCode(6, 3, shorten=10)
        cw = code.random_codeword(rng)
        assert code.is_codeword(cw)
        cw[0] ^= 1
        assert not code.is_codeword(cw)


class TestDesign:
    def test_design_picks_smallest_field(self):
        assert design_bch(100, 5) == (7, 5)
        assert design_bch(15, 2) == (4, 2)

    def test_design_rejects_huge(self):
        with pytest.raises(ParameterError):
            design_bch(10 ** 6, 3)
