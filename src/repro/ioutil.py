"""Crash-safe file I/O shared by the persistence layers.

Both helper-data stores (the JSONL store in
:mod:`repro.protocols.database` and the engine shard store in
:mod:`repro.engine.storage`) promise that a save which dies mid-write
cannot destroy the previous on-disk state.  The mechanism is the classic
same-directory temp file + ``os.replace`` swap, centralised here so the
crash-safety logic has exactly one implementation.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


@contextmanager
def atomic_replace(path: str | Path, mode: str = "wb",
                   encoding: str | None = None) -> Iterator[IO]:
    """Write-then-rename: yields a temp file that replaces ``path`` on
    clean exit and is deleted (leaving ``path`` untouched) on error.

    The temp file lives in the target's directory so the final
    ``os.replace`` is an atomic same-filesystem rename.
    """
    path = Path(path)
    handle = tempfile.NamedTemporaryFile(
        mode, encoding=encoding, dir=path.parent,
        prefix=path.name + ".", suffix=".tmp", delete=False,
    )
    try:
        with handle:
            yield handle
        os.replace(handle.name, path)
    except BaseException:
        os.unlink(handle.name)
        raise
