"""Synthetic biometric populations.

The paper's evaluation "use[s] simulated data which is independent from any
type of biometric" (Section VII): templates are integer vectors on the
number line, and a genuine reading is the template plus bounded noise.
This module reproduces that workload and generalises it with pluggable
noise models so accuracy experiments (FAR/FRR vs threshold) are possible:

* :class:`BoundedUniformNoise` — uniform in ``[-amplitude, amplitude]``
  per coordinate; with ``amplitude <= t`` every genuine reading is
  accepted (the paper's setting).
* :class:`TruncatedGaussianNoise` — Gaussian with clipping, modelling
  sensors whose errors are concentrated but occasionally larger; yields a
  nonzero false-reject rate when ``sigma`` approaches ``t``.
* :class:`SparseOutlierNoise` — mostly-small noise with a few wild
  coordinates (dropped minutiae, eyelash occlusion); exercises the
  Chebyshev metric's sensitivity to single-coordinate outliers.

:class:`UserPopulation` ties a per-user template store to reading
generation and is the workload generator used by every protocol benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.core.numberline import NumberLine
from repro.core.params import SystemParams
from repro.exceptions import ParameterError


class NoiseModel(Protocol):
    """A per-reading noise source for synthetic biometrics."""

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Return an integer noise vector of dimension ``n``."""
        ...


@dataclass(frozen=True)
class BoundedUniformNoise:
    """Uniform integer noise in ``[-amplitude, amplitude]`` (paper's model)."""

    amplitude: int

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ParameterError("amplitude must be >= 0")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw an integer noise vector of dimension ``n``."""
        if self.amplitude == 0:
            return np.zeros(n, dtype=np.int64)
        return rng.integers(-self.amplitude, self.amplitude + 1, size=n,
                            dtype=np.int64)


@dataclass(frozen=True)
class TruncatedGaussianNoise:
    """Rounded Gaussian noise clipped to ``[-clip, clip]``."""

    sigma: float
    clip: int

    def __post_init__(self) -> None:
        if self.sigma < 0 or self.clip < 0:
            raise ParameterError("sigma and clip must be >= 0")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw an integer noise vector of dimension ``n``."""
        raw = rng.normal(0.0, self.sigma, size=n)
        return np.clip(np.round(raw), -self.clip, self.clip).astype(np.int64)


@dataclass(frozen=True)
class SparseOutlierNoise:
    """Small base noise plus occasional large outliers.

    Each coordinate independently becomes an outlier with probability
    ``outlier_rate``; outliers are uniform over ``[-outlier_amplitude,
    outlier_amplitude]``.
    """

    base_amplitude: int
    outlier_rate: float
    outlier_amplitude: int

    def __post_init__(self) -> None:
        if not 0 <= self.outlier_rate <= 1:
            raise ParameterError("outlier_rate must be in [0, 1]")
        if self.base_amplitude < 0 or self.outlier_amplitude < 0:
            raise ParameterError("amplitudes must be >= 0")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw an integer noise vector of dimension ``n``."""
        base = BoundedUniformNoise(self.base_amplitude).sample(rng, n)
        mask = rng.random(n) < self.outlier_rate
        n_outliers = int(mask.sum())
        if n_outliers:
            base[mask] = rng.integers(
                -self.outlier_amplitude, self.outlier_amplitude + 1,
                size=n_outliers, dtype=np.int64,
            )
        return base


@dataclass
class UserPopulation:
    """A set of enrolled users with reproducible template and reading draws.

    Templates are uniform on the line (the paper's implicit source
    distribution, and the one Theorem 3's entropy analysis assumes).
    Reading generation never mutates stored templates.
    """

    params: SystemParams
    size: int
    noise: NoiseModel = field(default_factory=lambda: BoundedUniformNoise(100))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ParameterError("population size must be >= 1")
        self._line = NumberLine(self.params)
        rng = np.random.default_rng(self.seed)
        self._templates = rng.integers(
            -self._line.half_range, self._line.half_range,
            size=(self.size, self.params.n), dtype=np.int64,
        )
        # Separate stream for readings so adding users doesn't shift noise.
        self._reading_rng = np.random.default_rng(self.seed + 1)

    def __len__(self) -> int:
        return self.size

    def user_ids(self) -> list[str]:
        """Stable synthetic identities, ``user-0000`` style."""
        return [f"user-{i:04d}" for i in range(self.size)]

    def template(self, index: int) -> np.ndarray:
        """The enrolled template of user ``index`` (a copy)."""
        return self._templates[index].copy()

    def genuine_reading(self, index: int,
                        rng: np.random.Generator | None = None) -> np.ndarray:
        """A fresh reading of user ``index``: template + noise, on the ring."""
        rng = rng if rng is not None else self._reading_rng
        noise = self.noise.sample(rng, self.params.n)
        return self._line.reduce(self._templates[index] + noise)

    def impostor_reading(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """A reading from a user *outside* the population (uniform template)."""
        rng = rng if rng is not None else self._reading_rng
        template = rng.integers(
            -self._line.half_range, self._line.half_range,
            size=self.params.n, dtype=np.int64,
        )
        noise = self.noise.sample(rng, self.params.n)
        return self._line.reduce(template + noise)

    def chebyshev_to_template(self, index: int, reading: np.ndarray) -> int:
        """Ring Chebyshev distance from a reading to user ``index``'s template."""
        return self._line.chebyshev_distance(self._templates[index], reading)
