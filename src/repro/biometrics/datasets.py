"""Dataset simulators for three biometric modalities.

Public biometric corpora are not redistributable and are unavailable
offline, so — per the reproduction's substitution policy (DESIGN.md §3) —
each simulator produces synthetic data with the *statistical shape* the
literature reports for its modality.  What matters for this paper is the
relationship between within-class (genuine) and between-class (impostor)
distances under the metric each scheme uses; the generators are calibrated
so that relationship holds:

* :class:`IrisLikeDataset` — fixed-length binary codes (default 2048 bits,
  the classic iris-code size).  Genuine comparisons differ in ~10-15% of
  bits, impostors in ~40-50% (Daugman's decidability setting).  Feeds the
  Hamming-metric baseline (code-offset/BCH).
* :class:`FaceLikeDataset` — continuous unit-norm embeddings (default 512
  dims, FaceNet-style) with per-user class centres; genuine cosine
  similarity high, impostor near zero.  Quantised onto ``La`` for the
  Chebyshev scheme.
* :class:`FingerprintLikeDataset` — integer grid features with sparse
  outliers (missed/spurious minutiae).  Stresses Chebyshev's sensitivity
  to single-coordinate outliers; the accuracy example uses it to show
  threshold tuning.

Every dataset yields ``(user_index, reading)`` samples with reproducible
seeding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.biometrics.encoding import quantize_to_line
from repro.core.params import SystemParams
from repro.exceptions import ParameterError


@dataclass
class IrisLikeDataset:
    """Binary iris-code-like templates with bit-flip reading noise."""

    n_users: int
    code_bits: int = 2048
    genuine_flip_rate: float = 0.12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.code_bits < 8:
            raise ParameterError("need n_users >= 1 and code_bits >= 8")
        if not 0 <= self.genuine_flip_rate < 0.5:
            raise ParameterError("genuine_flip_rate must be in [0, 0.5)")
        rng = np.random.default_rng(self.seed)
        self._codes = rng.integers(
            0, 2, size=(self.n_users, self.code_bits), dtype=np.uint8
        )
        self._rng = np.random.default_rng(self.seed + 1)

    def template(self, index: int) -> np.ndarray:
        """The enrolled iris code of user ``index`` (a copy)."""
        return self._codes[index].copy()

    def genuine_reading(self, index: int,
                        rng: np.random.Generator | None = None) -> np.ndarray:
        """Template with each bit flipped independently at the genuine rate."""
        rng = rng if rng is not None else self._rng
        flips = (rng.random(self.code_bits) < self.genuine_flip_rate)
        return self._codes[index] ^ flips.astype(np.uint8)

    def impostor_reading(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """An unrelated uniformly random code (~50% expected disagreement)."""
        rng = rng if rng is not None else self._rng
        return rng.integers(0, 2, size=self.code_bits, dtype=np.uint8)

    @staticmethod
    def hamming(a: np.ndarray, b: np.ndarray) -> int:
        return int(np.count_nonzero(a != b))


@dataclass
class FaceLikeDataset:
    """Continuous embedding vectors with per-user class centres.

    ``within_class_sigma`` is the expected *norm* of the within-class
    perturbation (dimension-normalised internally), so genuine cosine
    similarity is ~``1/sqrt(1 + sigma^2)`` regardless of ``dim`` — about
    0.9 at the default 0.5, matching well-trained face embedders.
    """

    n_users: int
    dim: int = 512
    within_class_sigma: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 1 or self.dim < 8:
            raise ParameterError("need n_users >= 1 and dim >= 8")
        rng = np.random.default_rng(self.seed)
        centres = rng.normal(0.0, 1.0, size=(self.n_users, self.dim))
        self._centres = centres / np.linalg.norm(centres, axis=1, keepdims=True)
        self._rng = np.random.default_rng(self.seed + 1)

    def _perturb(self, centre: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        per_coord = self.within_class_sigma / np.sqrt(self.dim)
        noisy = centre + rng.normal(0.0, per_coord, size=self.dim)
        return noisy / np.linalg.norm(noisy)

    def template_embedding(self, index: int) -> np.ndarray:
        """The user's class-centre embedding (unit norm, a copy)."""
        return self._centres[index].copy()

    def genuine_embedding(self, index: int,
                          rng: np.random.Generator | None = None) -> np.ndarray:
        """A fresh same-user embedding (centre + within-class noise)."""
        rng = rng if rng is not None else self._rng
        return self._perturb(self._centres[index], rng)

    def impostor_embedding(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """An embedding of a user outside the population."""
        rng = rng if rng is not None else self._rng
        raw = rng.normal(0.0, 1.0, size=self.dim)
        return raw / np.linalg.norm(raw)

    def template_on_line(self, index: int, params: SystemParams) -> np.ndarray:
        """The user's class centre quantised onto ``La`` (dimension = dim)."""
        self._check_dim(params)
        return quantize_to_line(self._centres[index], params)

    def genuine_on_line(self, index: int, params: SystemParams,
                        rng: np.random.Generator | None = None) -> np.ndarray:
        """A genuine reading quantised onto the number line."""
        self._check_dim(params)
        return quantize_to_line(self.genuine_embedding(index, rng), params)

    def impostor_on_line(self, params: SystemParams,
                         rng: np.random.Generator | None = None) -> np.ndarray:
        """An impostor reading quantised onto the number line."""
        self._check_dim(params)
        return quantize_to_line(self.impostor_embedding(rng), params)

    def _check_dim(self, params: SystemParams) -> None:
        if params.n != self.dim:
            raise ParameterError(
                f"params.n={params.n} must equal embedding dim={self.dim}"
            )


@dataclass
class FingerprintLikeDataset:
    """Integer grid features with sparse outliers (minutiae artefacts).

    Each user has a template of ``n_features`` integer positions; a
    genuine reading perturbs every position slightly and replaces a small
    fraction with arbitrary values (a missed minutia picked up elsewhere).
    """

    n_users: int
    params: SystemParams
    base_jitter: int = 40
    outlier_rate: float = 0.002
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ParameterError("need n_users >= 1")
        if not 0 <= self.outlier_rate <= 1:
            raise ParameterError("outlier_rate must be in [0, 1]")
        from repro.core.numberline import NumberLine

        self._line = NumberLine(self.params)
        rng = np.random.default_rng(self.seed)
        self._templates = rng.integers(
            -self._line.half_range, self._line.half_range,
            size=(self.n_users, self.params.n), dtype=np.int64,
        )
        self._rng = np.random.default_rng(self.seed + 1)

    def template(self, index: int) -> np.ndarray:
        """The enrolled grid-feature template of user ``index``."""
        return self._templates[index].copy()

    def genuine_reading(self, index: int,
                        rng: np.random.Generator | None = None) -> np.ndarray:
        """A same-user reading: jitter everywhere, sparse wild outliers."""
        rng = rng if rng is not None else self._rng
        n = self.params.n
        noise = rng.integers(-self.base_jitter, self.base_jitter + 1,
                             size=n, dtype=np.int64)
        reading = self._line.reduce(self._templates[index] + noise)
        outliers = rng.random(n) < self.outlier_rate
        n_out = int(outliers.sum())
        if n_out:
            reading[outliers] = rng.integers(
                -self._line.half_range, self._line.half_range,
                size=n_out, dtype=np.int64,
            )
        return reading

    def impostor_reading(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """A reading from a user outside the population."""
        rng = rng if rng is not None else self._rng
        return rng.integers(
            -self._line.half_range, self._line.half_range,
            size=self.params.n, dtype=np.int64,
        )
