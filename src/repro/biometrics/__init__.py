"""Synthetic biometric data: populations, modality simulators, metrics.

The paper evaluates on simulated vectors ("independent from any type of
biometric", Section VII); this package reproduces that workload and adds
modality-shaped simulators for the accuracy studies.
"""

from repro.biometrics.datasets import (
    FaceLikeDataset,
    FingerprintLikeDataset,
    IrisLikeDataset,
)
from repro.biometrics.encoding import (
    binarize,
    bits_to_line,
    line_to_bits,
    quantize_to_line,
)
from repro.biometrics.metrics import (
    RatePoint,
    decidability,
    equal_error_rate,
    false_accept_rate,
    false_reject_rate,
    roc_curve,
)
from repro.biometrics.synthetic import (
    BoundedUniformNoise,
    NoiseModel,
    SparseOutlierNoise,
    TruncatedGaussianNoise,
    UserPopulation,
)

__all__ = [
    "FaceLikeDataset",
    "FingerprintLikeDataset",
    "IrisLikeDataset",
    "binarize",
    "bits_to_line",
    "line_to_bits",
    "quantize_to_line",
    "RatePoint",
    "decidability",
    "equal_error_rate",
    "false_accept_rate",
    "false_reject_rate",
    "roc_curve",
    "BoundedUniformNoise",
    "NoiseModel",
    "SparseOutlierNoise",
    "TruncatedGaussianNoise",
    "UserPopulation",
]
