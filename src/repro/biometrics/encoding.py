"""Encoding biometric feature vectors onto the number line.

The paper assumes "user biometric data has been converted into the format
needed" (Section VII) — i.e. a vector of integer points on ``La``.  Real
feature extractors emit continuous vectors (face embeddings), integer
grids (fingerprint minutiae maps) or bit strings (iris codes); this module
provides the conversions:

* :func:`quantize_to_line` — affine-scale a continuous vector into the
  line's integer range (for the Chebyshev scheme);
* :func:`binarize` — threshold a continuous vector into bits (for the
  Hamming-metric baseline);
* :func:`bits_to_line` / :func:`line_to_bits` — move between the two
  worlds so the same synthetic user population can exercise both the
  proposed scheme and the code-offset baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.numberline import NumberLine
from repro.core.params import SystemParams
from repro.exceptions import EncodingError


def quantize_to_line(features: np.ndarray, params: SystemParams,
                     feature_range: tuple[float, float] = (-1.0, 1.0)) -> np.ndarray:
    """Map a continuous feature vector onto integer points of ``La``.

    ``feature_range`` states the nominal range of the extractor's output;
    values are clipped to it, affinely mapped onto
    ``[-kav/2, kav/2 - 1]`` and rounded.  Clipping (rather than rejecting)
    mirrors what deployed pipelines do with outlier dimensions.
    """
    arr = np.asarray(features, dtype=np.float64)
    if arr.ndim != 1:
        raise EncodingError(f"expected 1-D features, got shape {arr.shape}")
    lo, hi = feature_range
    if not lo < hi:
        raise EncodingError(f"invalid feature range ({lo}, {hi})")
    line = NumberLine(params)
    clipped = np.clip(arr, lo, hi)
    unit = (clipped - lo) / (hi - lo)  # in [0, 1]
    scaled = np.round(unit * (line.circumference - 1)) - line.half_range
    return scaled.astype(np.int64)


def binarize(features: np.ndarray, thresholds: np.ndarray | float = 0.0) -> np.ndarray:
    """Threshold continuous features into a bit vector (iris-code style)."""
    arr = np.asarray(features, dtype=np.float64)
    if arr.ndim != 1:
        raise EncodingError(f"expected 1-D features, got shape {arr.shape}")
    return (arr > thresholds).astype(np.uint8)


def bits_to_line(bits: np.ndarray, params: SystemParams,
                 group: int | None = None) -> np.ndarray:
    """Pack groups of bits into integer points of ``La``.

    ``group`` bits are read per output coordinate (default: as many as fit
    in the line's range).  Used to run binary datasets through the
    Chebyshev scheme for cross-metric comparisons.
    """
    bits = np.asarray(bits)
    if not np.all((bits == 0) | (bits == 1)):
        raise EncodingError("bits must contain only 0/1 values")
    line = NumberLine(params)
    if group is None:
        group = max(1, int(np.log2(line.circumference)) - 1)
    if len(bits) % group:
        raise EncodingError(
            f"bit length {len(bits)} not divisible by group size {group}"
        )
    weights = (1 << np.arange(group, dtype=np.int64))[::-1]
    values = bits.reshape(-1, group).astype(np.int64) @ weights
    # Spread the packed values across the line's range.
    max_value = (1 << group) - 1
    unit = values / max_value if max_value else values
    scaled = np.round(unit * (line.circumference - 1)) - line.half_range
    return scaled.astype(np.int64)


def line_to_bits(points: np.ndarray, params: SystemParams,
                 bits_per_point: int = 8) -> np.ndarray:
    """Gray-free fixed-width binarisation of line points (for baselines).

    Each coordinate is mapped to its ``bits_per_point``-bit quantisation
    level; adjacent line points map to adjacent levels, so small Chebyshev
    noise becomes small (but not strictly bounded) Hamming noise — the
    classic reason Hamming-metric extractors handle continuous biometrics
    poorly, which the baseline benchmark surfaces.
    """
    line = NumberLine(params)
    arr = line.validate_vector(np.asarray(points), dimension=len(points))
    unit = (arr + line.half_range) / (line.circumference - 1)
    levels = np.round(unit * ((1 << bits_per_point) - 1)).astype(np.int64)
    out = np.zeros(len(arr) * bits_per_point, dtype=np.uint8)
    for bit in range(bits_per_point):
        out[bit::bits_per_point] = (levels >> (bits_per_point - 1 - bit)) & 1
    return out
