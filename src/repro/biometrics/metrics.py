"""Biometric accuracy metrics: FAR, FRR, ROC, EER.

A biometric decision system accepts or rejects comparisons.  Given scored
genuine and impostor trials (score = distance; *lower is more genuine*),
these helpers compute the standard operating-point metrics the biometric
literature reports.  They power the accuracy example and the
threshold-sweep tests that show how the paper's ``t`` trades false accepts
against false rejects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError


@dataclass(frozen=True)
class RatePoint:
    """FAR/FRR at one decision threshold."""

    threshold: float
    far: float
    frr: float


def false_accept_rate(impostor_scores: np.ndarray, threshold: float) -> float:
    """Fraction of impostor comparisons at or below the distance threshold."""
    scores = _check_scores(impostor_scores, "impostor_scores")
    return float(np.mean(scores <= threshold))


def false_reject_rate(genuine_scores: np.ndarray, threshold: float) -> float:
    """Fraction of genuine comparisons above the distance threshold."""
    scores = _check_scores(genuine_scores, "genuine_scores")
    return float(np.mean(scores > threshold))


def roc_curve(genuine_scores: np.ndarray, impostor_scores: np.ndarray,
              thresholds: np.ndarray | None = None) -> list[RatePoint]:
    """FAR/FRR across thresholds (default: every observed score value)."""
    genuine = _check_scores(genuine_scores, "genuine_scores")
    impostor = _check_scores(impostor_scores, "impostor_scores")
    if thresholds is None:
        thresholds = np.unique(np.concatenate([genuine, impostor]))
    return [
        RatePoint(
            threshold=float(th),
            far=false_accept_rate(impostor, float(th)),
            frr=false_reject_rate(genuine, float(th)),
        )
        for th in np.asarray(thresholds, dtype=np.float64)
    ]


def equal_error_rate(genuine_scores: np.ndarray,
                     impostor_scores: np.ndarray) -> tuple[float, float]:
    """Approximate EER: ``(eer, threshold)`` where FAR and FRR cross.

    Scans the merged score set and returns the point minimising
    ``|FAR - FRR|``, with the EER estimated as their mean there — the
    standard finite-sample estimator.
    """
    points = roc_curve(genuine_scores, impostor_scores)
    best = min(points, key=lambda p: (abs(p.far - p.frr), p.threshold))
    return (best.far + best.frr) / 2.0, best.threshold


def decidability(genuine_scores: np.ndarray, impostor_scores: np.ndarray) -> float:
    """Daugman's d': separation of the two score distributions.

    ``d' = |mu_i - mu_g| / sqrt((var_g + var_i) / 2)``.  Iris systems
    report d' around 7-14; a d' below ~2 means the modality cannot support
    a low-FAR threshold.
    """
    genuine = _check_scores(genuine_scores, "genuine_scores")
    impostor = _check_scores(impostor_scores, "impostor_scores")
    pooled = np.sqrt((genuine.var(ddof=1) + impostor.var(ddof=1)) / 2.0)
    if pooled == 0:
        raise ParameterError("score distributions have zero variance")
    return float(abs(impostor.mean() - genuine.mean()) / pooled)


def _check_scores(scores: np.ndarray, what: str) -> np.ndarray:
    arr = np.asarray(scores, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ParameterError(f"{what} must be a non-empty 1-D array")
    return arr
