"""Signature-kernel benchmark harness behind ``repro crypto-bench``.

The identification protocol spends one signature per challenge (paper
Fig. 3), and Table II compares back-ends precisely because sign/verify
dominates end-to-end time once the sketch search is sublinear.  This
harness measures the four costs that matter, parity-checking the fast
paths against the retained reference implementations while timing:

* **scalar multiplication** — the affine double-and-add reference vs the
  Jacobian/wNAF kernel (fixed-base comb for ``G``, windowed NAF for a
  variable point, warm-table Shamir for the double-scalar verify shape);
* **scheme primitives** — keygen / sign / cold reference verify /
  fast verify / precomputed-table verify for each signature back-end;
* **batch verification** — ``verify_batch`` at batch size ``k`` vs ``k``
  warm single-table verifies (the Schnorr back-end collapses the batch
  into one randomized multi-scalar multiplication; the speedup is the
  per-signature crypto floor the service frontend's verify micro-batcher
  buys under bursty traffic);
* **end-to-end identification** — the full Fig. 3 flow (probe → sketch
  search → challenge → ``Rep`` + sign → verify) over a small enrolled
  stack, cold pass and warm pass (the second pass verifies against the
  server's key-table cache).

``write_trajectory`` appends each run to a JSON artifact
(``BENCH_crypto.json``) so speedups can be tracked across commits.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.crypto import backend
from repro.crypto.prng import HmacDrbg
from repro.crypto.signatures import get_scheme
from repro.ioutil import atomic_replace

#: Scheme names benchmarked by default: the paper's DSA plus the EC drop-ins.
DEFAULT_SCHEMES = ("ecdsa-p-256", "schnorr-p-256", "dsa-1024")


def _mean_time(fn, iterations: int) -> float:
    """Mean wall-clock seconds of ``iterations`` calls of ``fn``."""
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


@dataclass(frozen=True)
class CryptoBenchReport:
    """Mean latencies (seconds) for one crypto-bench run."""

    iterations: int
    #: ``affine_reference`` / ``fixed_base`` / ``wnaf_variable`` /
    #: ``shamir_warm`` mean seconds per scalar multiplication.
    scalar_mult: dict[str, float]
    #: scheme name -> ``keygen`` / ``sign`` / ``verify_reference`` /
    #: ``verify`` / ``verify_table`` / ``precompute`` mean seconds.
    schemes: dict[str, dict[str, float]]
    #: scheme name -> ``identify_cold`` / ``identify_warm`` mean seconds
    #: per end-to-end identification (empty when the flow was skipped).
    identify: dict[str, dict[str, float]] = field(default_factory=dict)
    #: scheme name -> ``k`` / ``batch_s`` / ``batch_per_sig`` /
    #: ``single_per_sig`` for the randomized batch-verification leg
    #: (empty when the leg was skipped).
    batch_verify: dict[str, dict[str, float]] = field(default_factory=dict)
    #: The integer-kernel backend the run executed on (``"python"`` or
    #: ``"gmpy2"``) — the trajectory column that keeps rows comparable.
    backend: str = "python"

    @property
    def scalar_mult_speedup(self) -> float:
        """Fixed-base Jacobian/wNAF kernel vs the affine reference."""
        fast = self.scalar_mult["fixed_base"]
        return self.scalar_mult["affine_reference"] / fast if fast > 0 \
            else float("inf")

    @property
    def wnaf_speedup(self) -> float:
        """Variable-point wNAF vs the affine reference."""
        fast = self.scalar_mult["wnaf_variable"]
        return self.scalar_mult["affine_reference"] / fast if fast > 0 \
            else float("inf")

    def verify_speedup(self, scheme: str) -> float:
        """Precomputed-table verify vs the scheme's cold reference verify."""
        timings = self.schemes[scheme]
        warm = timings["verify_table"]
        return timings["verify_reference"] / warm if warm > 0 \
            else float("inf")

    def batch_verify_speedup(self, scheme: str) -> float:
        """Per-signature batch verify vs the warm single-table verify."""
        timings = self.batch_verify[scheme]
        batch = timings["batch_per_sig"]
        return timings["single_per_sig"] / batch if batch > 0 \
            else float("inf")

    def summary_lines(self) -> list[str]:
        """Human-readable bench table (one string per line)."""
        sm = self.scalar_mult
        lines = [
            f"crypto bench ({self.iterations} iterations/measurement, "
            f"backend={self.backend})",
            "scalar multiplication (P-256):",
            f"  affine reference   {sm['affine_reference'] * 1e3:8.2f} ms",
            f"  fixed-base comb    {sm['fixed_base'] * 1e3:8.2f} ms  "
            f"(x{self.scalar_mult_speedup:.1f})",
            f"  wNAF variable pt   {sm['wnaf_variable'] * 1e3:8.2f} ms  "
            f"(x{self.wnaf_speedup:.1f})",
            f"  Shamir warm table  {sm['shamir_warm'] * 1e3:8.2f} ms",
        ]
        for name, t in self.schemes.items():
            lines.append(
                f"{name}: keygen {t['keygen'] * 1e3:.2f} ms, "
                f"sign {t['sign'] * 1e3:.2f} ms, "
                f"verify {t['verify_reference'] * 1e3:.2f} ms cold-ref / "
                f"{t['verify'] * 1e3:.2f} ms fast / "
                f"{t['verify_table'] * 1e3:.2f} ms warm-table "
                f"(x{self.verify_speedup(name):.1f})"
            )
        for name, t in self.batch_verify.items():
            lines.append(
                f"batch verify [{name}] k={t['k']:.0f}: "
                f"{t['batch_per_sig'] * 1e3:.2f} ms/sig batched vs "
                f"{t['single_per_sig'] * 1e3:.2f} ms/sig warm single "
                f"(x{self.batch_verify_speedup(name):.1f})"
            )
        for name, t in self.identify.items():
            lines.append(
                f"identify end-to-end [{name}]: "
                f"{t['identify_cold'] * 1e3:.1f} ms cold, "
                f"{t['identify_warm'] * 1e3:.1f} ms warm tables"
            )
        return lines

    def to_json_dict(self) -> dict:
        """JSON-serialisable form (the trajectory artifact's unit entry)."""
        return {
            "iterations": self.iterations,
            "backend": self.backend,
            "scalar_mult_s": dict(self.scalar_mult),
            "scalar_mult_speedup": self.scalar_mult_speedup,
            "wnaf_speedup": self.wnaf_speedup,
            "schemes_s": {k: dict(v) for k, v in self.schemes.items()},
            "verify_speedups": {
                name: self.verify_speedup(name) for name in self.schemes
            },
            "batch_verify_s": {k: dict(v)
                               for k, v in self.batch_verify.items()},
            "batch_verify_speedups": {
                name: self.batch_verify_speedup(name)
                for name in self.batch_verify
            },
            "identify_s": {k: dict(v) for k, v in self.identify.items()},
        }


def write_trajectory(report: CryptoBenchReport, path: str | Path) -> None:
    """Append ``report`` to the JSON trajectory artifact at ``path``.

    The artifact is ``{"runs": [...]}``; each run carries a timestamp so
    the speedup trajectory across commits stays reconstructible.  Only
    the most recent 50 runs are kept.
    """
    path = Path(path)
    runs: list[dict] = []
    if path.exists():
        try:
            runs = json.loads(path.read_text()).get("runs", [])
        except (ValueError, AttributeError):
            runs = []
        if not isinstance(runs, list):
            runs = []  # unreadable artifact: start a fresh trajectory
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())}
    entry.update(report.to_json_dict())
    runs.append(entry)
    with atomic_replace(path, mode="w", encoding="utf-8") as handle:
        handle.write(json.dumps({"runs": runs[-50:]}, indent=2) + "\n")


def _bench_scalar_mult(iterations: int, seed: int) -> dict[str, float]:
    """Scalar-mult section; parity-checks fast vs affine while timing."""
    from repro.crypto.ec import P256

    drbg = HmacDrbg(seed.to_bytes(8, "big"), personalization=b"crypto-bench")
    g = P256.generator
    q_point = P256.multiply(drbg.random_int_range(1, P256.n - 1), g)
    scalars = [drbg.random_int_range(1, P256.n - 1) for _ in range(iterations)]
    pairs = [(drbg.random_int_range(1, P256.n - 1),
              drbg.random_int_range(1, P256.n - 1))
             for _ in range(iterations)]
    table = P256.precompute_table(q_point)
    P256.multiply_base(1)  # build the comb outside the timers

    # Parity: a wrong answer must never look like a speedup.
    for k in scalars[:2]:
        reference = P256.multiply_affine(k, g)
        assert P256.multiply(k, g) == reference, "fixed-base parity violation"
        assert P256.multiply(k, q_point) == \
            P256.multiply_affine(k, q_point), "wNAF parity violation"
    u1, u2 = pairs[0]
    assert P256.shamir_multiply(u1, u2, table=table) == P256.add(
        P256.multiply_affine(u1, g), P256.multiply_affine(u2, q_point)
    ), "Shamir parity violation"

    affine_iters = max(2, iterations // 4)  # the reference is ~25x slower
    it = iter(scalars)
    times = {
        "affine_reference": _mean_time(
            lambda: P256.multiply_affine(scalars[0], g), affine_iters),
        "fixed_base": _mean_time(lambda: P256.multiply(next(it), g),
                                 iterations),
    }
    it = iter(scalars)
    times["wnaf_variable"] = _mean_time(
        lambda: P256.multiply(next(it), q_point), iterations)
    it2 = iter(pairs)
    times["shamir_warm"] = _mean_time(
        lambda: P256.shamir_multiply(*next(it2), table=table), iterations)
    return times


def _bench_scheme(name: str, iterations: int) -> dict[str, float]:
    """Primitive timings for one scheme; parity-checks every verify path."""
    scheme = get_scheme(name)
    seed = b"crypto-bench-" + name.encode()
    keypair = scheme.keygen_from_seed(seed)
    message = b"crypto-bench-challenge"
    signature = scheme.sign(keypair.signing_key, message)
    table = scheme.precompute(keypair.verify_key)
    assert table is not None, f"{name}: precompute refused a good key"

    assert scheme.verify(keypair.verify_key, message, signature)
    assert scheme.verify(keypair.verify_key, message, signature, table=table)
    assert scheme.verify_reference(keypair.verify_key, message, signature)
    bad = bytearray(signature)
    bad[-1] ^= 1
    assert not scheme.verify(keypair.verify_key, message, bytes(bad),
                             table=table)

    return {
        "keygen": _mean_time(lambda: scheme.keygen_from_seed(seed),
                             iterations),
        "sign": _mean_time(lambda: scheme.sign(keypair.signing_key, message),
                           iterations),
        "verify_reference": _mean_time(
            lambda: scheme.verify_reference(keypair.verify_key, message,
                                            signature),
            max(2, iterations // 4)),
        "verify": _mean_time(
            lambda: scheme.verify(keypair.verify_key, message, signature),
            iterations),
        "verify_table": _mean_time(
            lambda: scheme.verify(keypair.verify_key, message, signature,
                                  table=table),
            iterations),
        "precompute": _mean_time(
            lambda: scheme.precompute(keypair.verify_key),
            max(2, iterations // 4)),
    }


def _bench_batch_verify(name: str, k: int, iterations: int) -> dict[str, float]:
    """Batch-verification leg: ``verify_batch`` at size ``k`` vs ``k``
    warm single-table verifies, parity-checked both honest and forged."""
    scheme = get_scheme(name)
    message = b"crypto-bench-batch"
    keypairs = [scheme.keygen_from_seed(b"batch-%02d-" % i + name.encode())
                for i in range(k)]
    signatures = [scheme.sign(kp.signing_key, message) for kp in keypairs]
    tables = [scheme.precompute(kp.verify_key) for kp in keypairs]
    items = [(kp.verify_key, message, sig)
             for kp, sig in zip(keypairs, signatures)]

    # Parity: all-honest accepts; a forged member is pinpointed, not
    # hidden (the randomized-weights guarantee) — a wrong answer must
    # never look like a speedup.
    assert scheme.verify_batch(items, tables=tables) == [True] * k
    forged = list(items)
    bad = bytearray(signatures[k // 2])
    bad[-1] ^= 1
    forged[k // 2] = (keypairs[k // 2].verify_key, message, bytes(bad))
    assert scheme.verify_batch(forged, tables=tables) == \
        [i != k // 2 for i in range(k)]

    batch_iters = max(2, iterations // 2)

    def singles() -> list[bool]:
        return [scheme.verify(key, msg, sig, table=table)
                for (key, msg, sig), table in zip(items, tables)]

    batch_s = _mean_time(lambda: scheme.verify_batch(items, tables=tables),
                         batch_iters)
    single_s = _mean_time(singles, batch_iters)
    return {
        "k": float(k),
        "batch_s": batch_s,
        "batch_per_sig": batch_s / k,
        "single_per_sig": single_s / k,
    }


def _bench_identify(name: str, n_users: int, n_requests: int,
                    dimension: int, seed: int) -> dict[str, float]:
    """End-to-end Fig. 3 identification latency, cold and warm passes."""
    from repro.biometrics.synthetic import BoundedUniformNoise, UserPopulation
    from repro.core.params import SystemParams
    from repro.protocols.device import BiometricDevice
    from repro.protocols.runners import run_enrollment, run_identification
    from repro.protocols.server import AuthenticationServer
    from repro.protocols.transport import DuplexLink

    params = SystemParams.paper_defaults(n=dimension)
    scheme = get_scheme(name)
    population = UserPopulation(params, size=n_users,
                                noise=BoundedUniformNoise(params.t),
                                seed=seed)
    device = BiometricDevice(params, scheme, seed=b"crypto-bench-device")
    server = AuthenticationServer(params, scheme, seed=b"crypto-bench-server")
    for i, user_id in enumerate(population.user_ids()):
        run = run_enrollment(device, server, DuplexLink(), user_id,
                             population.template(i))
        assert run.outcome.accepted, f"enrollment refused for {user_id}"

    def one_pass() -> float:
        start = time.perf_counter()
        for request in range(n_requests):
            target = request % n_users
            run = run_identification(device, server, DuplexLink(),
                                     population.genuine_reading(target))
            assert run.outcome.identified, "genuine reading not identified"
        return (time.perf_counter() - start) / n_requests

    cold = one_pass()   # first pass: every key's first verify, fully cold
    one_pass()          # second pass: recurring keys get their tables built
    warm = one_pass()   # third pass: every verify against warm tables
    return {"identify_cold": cold, "identify_warm": warm}


def run_crypto_bench(iterations: int = 8,
                     schemes: tuple[str, ...] = DEFAULT_SCHEMES,
                     identify_scheme: str | None = "ecdsa-p-256",
                     identify_users: int = 8,
                     identify_requests: int = 8,
                     dimension: int = 256,
                     batch_scheme: str | None = "schnorr-p-256",
                     batch_k: int = 32,
                     seed: int = 0) -> CryptoBenchReport:
    """Run every section and return the collected report.

    ``identify_scheme=None`` skips the end-to-end flow (the unit the
    smoke-mode CI job trims first); ``batch_scheme=None`` skips the
    batch-verification leg, and ``batch_k`` sets its batch size.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if batch_k < 1:
        raise ValueError("batch_k must be >= 1")
    scheme_times = {name: _bench_scheme(name, iterations) for name in schemes}
    batch_verify: dict[str, dict[str, float]] = {}
    if batch_scheme is not None:
        batch_verify[batch_scheme] = _bench_batch_verify(
            batch_scheme, batch_k, iterations)
    identify: dict[str, dict[str, float]] = {}
    if identify_scheme is not None:
        identify[identify_scheme] = _bench_identify(
            identify_scheme, identify_users, identify_requests, dimension,
            seed)
    return CryptoBenchReport(
        iterations=iterations,
        scalar_mult=_bench_scalar_mult(iterations, seed),
        schemes=scheme_times,
        identify=identify,
        batch_verify=batch_verify,
        backend=backend.active().name,
    )
