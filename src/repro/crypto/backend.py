"""Pluggable fast-integer backend for the crypto hot paths.

All field and group arithmetic in this package ultimately bottoms out in a
handful of big-integer operations: modular multiplication chains (the
Jacobian point formulas, window tables), modular exponentiation, modular
inverse, and the one-batched-inversion trick (Montgomery).  This module
abstracts exactly those operations behind a tiny interface with two
implementations:

* **python** — stdlib arbitrary-precision ``int``.  Always present; this is
  the auditable reference every other backend is parity-locked against.
* **gmpy2** — GMP-backed ``gmpy2.mpz``.  Selected automatically when the
  ``gmpy2`` extension is importable; typically 3-10x faster on 256-bit
  field arithmetic because ``mpz`` skips CPython's generic object overhead
  on every multiply/reduce.

The trick that keeps the kernels backend-agnostic: ``mpz`` and ``int``
interoperate under every arithmetic operator, and any expression touching
an ``mpz`` produces an ``mpz``.  So the kernels only need to *lift* one
operand per chain — the field modulus ``p`` (see ``Curve._field``) or a
precomputed table entry — and the whole chain runs at native speed without
changing a single formula.  Results are lowered back to plain ``int`` via
``int(...)`` at the public boundaries (``Point`` coordinates, signature
integers), so outputs are byte-identical across backends.

Selection:

* ``REPRO_CRYPTO_BACKEND=python|gmpy2`` forces a backend at import time
  (forcing ``gmpy2`` when it is not importable raises immediately).
* unset / ``auto`` picks ``gmpy2`` when importable, ``python`` otherwise.
* :func:`set_backend` / :func:`use_backend` switch at runtime (tests, the
  ``crypto-bench --backend both`` shootout).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Sequence


class PythonBackend:
    """Stdlib ``int`` arithmetic — the always-available reference."""

    name = "python"

    def wrap(self, value: int):
        """Lift ``value`` into the backend's fast integer type."""
        return value

    def unwrap(self, value) -> int:
        """Lower a backend integer back to a plain ``int``."""
        return int(value)

    def modmul(self, a, b, modulus) -> int:
        """``a * b % modulus`` as a plain ``int``."""
        return int(a * b % modulus)

    def modexp(self, base, exponent, modulus) -> int:
        """``base ** exponent % modulus`` as a plain ``int``."""
        return pow(int(base), int(exponent), int(modulus))

    def modinv(self, value, modulus) -> int:
        """Inverse of ``value`` modulo ``modulus``; ValueError when none."""
        try:
            return pow(int(value), -1, int(modulus))
        except ValueError as exc:
            raise ValueError(
                f"{int(value)} has no inverse modulo {int(modulus)}") from exc

    def batch_modinv(self, values: Sequence, modulus) -> list[int]:
        """Invert every element with **one** modular inversion total.

        Montgomery's trick: invert the running product of all values, then
        peel off the individual inverses with two multiplications each.
        Raises ``ValueError`` if any element is not invertible (the error
        then names the product, not the offending element — callers
        guarantee invertibility).  This is the shared helper behind
        ``Curve._batch_to_affine`` and the deferred window-table builds in
        ``Curve.multi_multiply``.
        """
        if not values:
            return []
        m = self.wrap(modulus)
        prefix = []
        acc = self.wrap(1)
        for value in values:
            acc = acc * value % m
            prefix.append(acc)
        inv = self.wrap(self.modinv(acc, m))
        out: list[int] = [0] * len(values)
        for i in range(len(values) - 1, -1, -1):
            out[i] = int(inv * (prefix[i - 1] if i else 1) % m)
            inv = inv * values[i] % m
        return out


class Gmpy2Backend(PythonBackend):
    """GMP-backed ``mpz`` arithmetic via the ``gmpy2`` extension."""

    name = "gmpy2"

    def __init__(self, module) -> None:
        self._gmpy2 = module
        self._mpz = module.mpz
        self._powmod = module.powmod
        self._invert = module.invert

    def wrap(self, value: int):
        """Lift ``value`` into an ``mpz``."""
        return self._mpz(value)

    def modmul(self, a, b, modulus) -> int:
        """``a * b % modulus`` through ``mpz``, lowered to ``int``."""
        return int(self._mpz(a) * b % modulus)

    def modexp(self, base, exponent, modulus) -> int:
        """``powmod`` through GMP, lowered to ``int``."""
        return int(self._powmod(self._mpz(base), exponent, modulus))

    def modinv(self, value, modulus) -> int:
        """GMP ``invert``; ValueError (not ZeroDivisionError) when none."""
        try:
            return int(self._invert(self._mpz(value), modulus))
        except ZeroDivisionError as exc:
            raise ValueError(
                f"{int(value)} has no inverse modulo {int(modulus)}") from exc


_BACKENDS: dict[str, PythonBackend] = {"python": PythonBackend()}

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover
    _gmpy2 = None
else:  # pragma: no cover
    _BACKENDS["gmpy2"] = Gmpy2Backend(_gmpy2)

#: Environment variable forcing the backend choice at import time.
ENV_VAR = "REPRO_CRYPTO_BACKEND"


def available_backends() -> tuple[str, ...]:
    """Names of the backends importable in this interpreter."""
    return tuple(_BACKENDS)


def _resolve(name: str) -> PythonBackend:
    key = name.strip().lower()
    if key in ("", "auto"):
        return _BACKENDS.get("gmpy2", _BACKENDS["python"])
    if key not in ("python", "gmpy2"):
        raise ValueError(
            f"unknown crypto backend {name!r} (expected python|gmpy2|auto)")
    backend = _BACKENDS.get(key)
    if backend is None:
        raise ImportError(
            f"crypto backend {key!r} requested but gmpy2 is not importable")
    return backend


_active: PythonBackend = _resolve(os.environ.get(ENV_VAR, "auto"))


def active() -> PythonBackend:
    """The currently selected backend."""
    return _active


def set_backend(name: str) -> PythonBackend:
    """Select a backend by name (``python``/``gmpy2``/``auto``)."""
    global _active
    _active = _resolve(name)
    return _active


@contextmanager
def use_backend(name: str) -> Iterator[PythonBackend]:
    """Temporarily select a backend (tests and the bench shootout)."""
    global _active
    previous = _active
    _active = _resolve(name)
    try:
        yield _active
    finally:
        _active = previous


# -- module-level conveniences (route through the active backend) ----------

def wrap(value: int):
    """Lift ``value`` into the active backend's fast integer type."""
    return _active.wrap(value)


def modmul(a, b, modulus) -> int:
    """``a * b % modulus`` on the active backend, as a plain ``int``."""
    return _active.modmul(a, b, modulus)


def modexp(base, exponent, modulus) -> int:
    """``base ** exponent % modulus`` on the active backend."""
    return _active.modexp(base, exponent, modulus)


def modinv(value, modulus) -> int:
    """Modular inverse on the active backend; ValueError when none."""
    return _active.modinv(value, modulus)


def batch_modinv(values: Sequence, modulus) -> list[int]:
    """Montgomery batch inversion on the active backend."""
    return _active.batch_modinv(values, modulus)
