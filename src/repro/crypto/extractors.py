"""Strong randomness extractors.

The generic fuzzy-extractor construction (paper Section II-A) composes a
secure sketch with a *strong extractor* ``Ext``: ``R = Ext(x; r)`` where
``r`` is a public uniformly random seed.  A ``(m, l, eps)``-strong extractor
guarantees that when the source ``x`` has min-entropy at least ``m``, the
pair ``(Ext(x; r), r)`` is ``eps``-close to ``(U_l, r)``.

Three instantiations are provided:

* :class:`Sha256Extractor` — the paper's Table II choice ("Random
  Extractor: SHA256").  Heuristic (random-oracle) extractor: fast and what
  deployed systems use, but carries no information-theoretic guarantee.
* :class:`UniversalHashExtractor` — ``h_{a,b}(x) = ((a*x + b) mod p) >> k``
  over a Mersenne-like prime.  Universal hashing satisfies the leftover
  hash lemma, giving a *provable* extractor:
  ``eps <= 2**-((m - l) / 2)``.
* :class:`ToeplitzExtractor` — a random Toeplitz matrix over GF(2), also
  universal, with numpy-vectorised bit arithmetic.  Included because
  Toeplitz hashing is the standard choice in hardware implementations
  (seed length is linear rather than quadratic in the input).

All extractors are deterministic functions of ``(data, seed)``, so ``Rep``
on the device reproduces exactly the ``R`` that ``Gen`` produced.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.crypto.hashing import hash_concat


@runtime_checkable
class StrongExtractor(Protocol):
    """Structural interface: a seeded deterministic extractor."""

    #: Short name used in parameter records and benchmark labels.
    name: str
    #: Number of output bytes (``l = 8 * output_bytes``).
    output_bytes: int
    #: Number of seed bytes the extractor consumes.
    seed_bytes: int

    def extract(self, data: bytes, seed: bytes) -> bytes:
        """Extract ``output_bytes`` nearly-uniform bytes from ``data``."""
        ...


class Sha256Extractor:
    """SHA-256 in keyed mode — the paper's extractor choice.

    ``Ext(x; r) = SHA256(r || x)`` (with injective framing), truncated or
    expanded to the requested output length.
    """

    def __init__(self, output_bytes: int = 32, seed_bytes: int = 32) -> None:
        if output_bytes <= 0 or output_bytes > 32:
            raise ValueError("Sha256Extractor supports 1..32 output bytes")
        if seed_bytes <= 0:
            raise ValueError("seed_bytes must be positive")
        self.name = "sha256"
        self.output_bytes = output_bytes
        self.seed_bytes = seed_bytes

    def extract(self, data: bytes, seed: bytes) -> bytes:
        """``Ext(data; seed)`` — keyed SHA-256, truncated."""
        if len(seed) != self.seed_bytes:
            raise ValueError(
                f"seed must be {self.seed_bytes} bytes, got {len(seed)}"
            )
        return hash_concat([seed, data], label=b"ext-sha256")[: self.output_bytes]


class UniversalHashExtractor:
    """Multiplicative universal hashing over a large prime field.

    The seed encodes a pair ``(a, b)`` with ``a != 0``; the extractor
    computes ``((a * x + b) mod p)`` and keeps the top ``8*output_bytes``
    bits.  The family ``{x -> (a*x + b) mod p}`` is pairwise independent on
    ``[0, p)``, so by the leftover hash lemma the output is
    ``2**-((m - l)/2)``-close to uniform when the input min-entropy is
    ``m``.

    ``p`` is chosen as the smallest prime above ``2**field_bits`` so that
    inputs up to ``field_bits`` bits embed injectively.
    """

    # Smallest primes exceeding 2**k for the supported field sizes,
    # verified in tests/crypto/test_extractors.py.
    _FIELD_PRIMES = {
        521: 2 ** 521 - 1,          # Mersenne prime
        607: 2 ** 607 - 1,          # Mersenne prime
        1279: 2 ** 1279 - 1,        # Mersenne prime
        2203: 2 ** 2203 - 1,        # Mersenne prime
        4253: 2 ** 4253 - 1,        # Mersenne prime
        9689: 2 ** 9689 - 1,        # Mersenne prime
    }

    def __init__(self, output_bytes: int = 32, field_bits: int = 1279) -> None:
        if field_bits not in self._FIELD_PRIMES:
            raise ValueError(
                f"field_bits must be one of {sorted(self._FIELD_PRIMES)}"
            )
        if output_bytes * 8 >= field_bits:
            raise ValueError("output length must be below the field size")
        self.name = f"universal-{field_bits}"
        self.output_bytes = output_bytes
        self.field_bits = field_bits
        self._prime = self._FIELD_PRIMES[field_bits]
        self._coeff_bytes = (field_bits + 7) // 8
        self.seed_bytes = 2 * self._coeff_bytes

    def _embed(self, data: bytes) -> int:
        """Embed input bytes into the field, folding long inputs.

        Inputs longer than the field are folded by block-wise evaluation of
        a polynomial in ``2**field_bits`` — injectivity is lost for such
        inputs (the entropy argument then applies per block), which the
        docstring of the fuzzy extractor surfaces to callers.
        """
        block = self._coeff_bytes
        value = 0
        for offset in range(0, max(len(data), 1), block):
            chunk = data[offset: offset + block]
            value = (value * (1 << self.field_bits)
                     + int.from_bytes(chunk, "big")) % self._prime
        return value

    def extract(self, data: bytes, seed: bytes) -> bytes:
        """``Ext(data; seed)`` — pairwise-independent hashing, top bits."""
        if len(seed) != self.seed_bytes:
            raise ValueError(
                f"seed must be {self.seed_bytes} bytes, got {len(seed)}"
            )
        a = int.from_bytes(seed[: self._coeff_bytes], "big") % self._prime
        b = int.from_bytes(seed[self._coeff_bytes:], "big") % self._prime
        if a == 0:
            a = 1  # keep the function injective in x
        x = self._embed(data)
        value = (a * x + b) % self._prime
        # Keep the top bits: shift out everything below the output length.
        shift = self._prime.bit_length() - 8 * self.output_bytes
        truncated = value >> shift
        return truncated.to_bytes(self.output_bytes, "big")


class ToeplitzExtractor:
    """Random Toeplitz matrix over GF(2).

    A Toeplitz matrix with ``rows = 8*output_bytes`` rows and
    ``cols = 8*input_bytes`` columns is defined by ``rows + cols - 1`` seed
    bits (first column + first row).  The output is the matrix-vector
    product over GF(2), computed with numpy by sliding a window over the
    seed-bit array.

    Toeplitz families are universal, so the leftover hash lemma applies as
    for :class:`UniversalHashExtractor`.
    """

    def __init__(self, output_bytes: int = 32, input_bytes: int = 1024) -> None:
        if output_bytes <= 0 or input_bytes <= 0:
            raise ValueError("output_bytes and input_bytes must be positive")
        self.name = "toeplitz"
        self.output_bytes = output_bytes
        self.input_bytes = input_bytes
        self._rows = 8 * output_bytes
        self._cols = 8 * input_bytes
        self.seed_bytes = (self._rows + self._cols - 1 + 7) // 8

    def extract(self, data: bytes, seed: bytes) -> bytes:
        """``Ext(data; seed)`` — Toeplitz matrix-vector product over GF(2)."""
        if len(seed) != self.seed_bytes:
            raise ValueError(
                f"seed must be {self.seed_bytes} bytes, got {len(seed)}"
            )
        if len(data) > self.input_bytes:
            raise ValueError(
                f"input longer than {self.input_bytes} bytes; "
                "construct the extractor with a larger input_bytes"
            )
        padded = data.ljust(self.input_bytes, b"\x00")
        x = np.unpackbits(np.frombuffer(padded, dtype=np.uint8))
        diagonals = np.unpackbits(np.frombuffer(seed, dtype=np.uint8))
        diagonals = diagonals[: self._rows + self._cols - 1]
        # Row i of the Toeplitz matrix is diagonals[i : i + cols] reversed
        # appropriately; using a strided view avoids materialising the
        # rows x cols matrix.
        windows = np.lib.stride_tricks.sliding_window_view(diagonals, self._cols)
        # windows[i] corresponds to row (rows - 1 - i); ordering of rows is
        # a relabeling of the same hash family, so use windows[:rows].
        products = (windows[: self._rows] & x).sum(axis=1) & 1
        return np.packbits(products.astype(np.uint8)).tobytes()


def default_extractor() -> Sha256Extractor:
    """The paper's configuration: SHA-256 with a 32-byte seed and output."""
    return Sha256Extractor(output_bytes=32, seed_bytes=32)
