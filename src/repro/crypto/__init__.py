"""Cryptographic substrate: hashing, DRBG, signatures, strong extractors.

Everything in this package is implemented from scratch on top of the
standard library (``hashlib``/``hmac``) and numpy — no third-party
cryptography dependencies.  It is *reproduction-grade* code: functionally
correct and extensively tested, but not hardened (no constant-time field
arithmetic), so it must not guard real secrets.
"""

from repro.crypto.dsa import Dsa, DsaGroup, generate_group
from repro.crypto.dsa_groups import GROUP_512, GROUP_1024, GROUP_2048
from repro.crypto.ec import P256, Curve, Point, PointTable
from repro.crypto.ecdsa import Ecdsa
from repro.crypto.extractors import (
    Sha256Extractor,
    StrongExtractor,
    ToeplitzExtractor,
    UniversalHashExtractor,
    default_extractor,
)
from repro.crypto.prng import HmacDrbg, derive_drbg, rng_from_seed
from repro.crypto.schnorr import EcSchnorr
from repro.crypto.numbertheory import FixedBaseExp, sliding_window_pow
from repro.crypto.signatures import (
    KeyPair,
    SignatureScheme,
    VerifyTableCache,
    available_schemes,
    get_scheme,
    register_scheme,
)

__all__ = [
    "Dsa",
    "DsaGroup",
    "generate_group",
    "GROUP_512",
    "GROUP_1024",
    "GROUP_2048",
    "P256",
    "Curve",
    "Point",
    "PointTable",
    "Ecdsa",
    "EcSchnorr",
    "Sha256Extractor",
    "StrongExtractor",
    "ToeplitzExtractor",
    "UniversalHashExtractor",
    "default_extractor",
    "HmacDrbg",
    "derive_drbg",
    "rng_from_seed",
    "KeyPair",
    "SignatureScheme",
    "VerifyTableCache",
    "FixedBaseExp",
    "sliding_window_pow",
    "available_schemes",
    "get_scheme",
    "register_scheme",
]

# Register the standard scheme instances so protocols can look them up by
# name (e.g. from serialised system parameters).
register_scheme(Dsa(GROUP_512))
register_scheme(Dsa(GROUP_1024))
register_scheme(Dsa(GROUP_2048))
register_scheme(Ecdsa())
register_scheme(EcSchnorr())
