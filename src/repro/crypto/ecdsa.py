"""ECDSA over NIST P-256.

An alternative signature back-end for the identification protocol.  The
structure mirrors :mod:`repro.crypto.dsa`: deterministic key derivation
from the fuzzy-extractor output, deterministic (RFC-6979-style) nonces, and
canonical byte encodings for keys and signatures.
"""

from __future__ import annotations

from repro.crypto.ec import Curve, P256, PointTable
from repro.crypto.hashing import sha256
from repro.crypto.numbertheory import modinv
from repro.crypto.prng import HmacDrbg
from repro.crypto.signatures import KeyPair, SignatureScheme
from repro.exceptions import SignatureError


class Ecdsa(SignatureScheme):
    """ECDSA over a prime-order curve.

    Encodings:

    * signing key — the private scalar ``d``, curve-order-sized big-endian;
    * verify key  — SEC1 compressed point ``Q = d*G``;
    * signature   — ``r || s``, each curve-order-sized big-endian.
    """

    def __init__(self, curve: Curve = P256, name: str | None = None) -> None:
        self.curve = curve
        self.name = name or f"ecdsa-{curve.name.lower()}"
        self._n_len = (curve.n.bit_length() + 7) // 8

    def _hash_to_zn(self, message: bytes) -> int:
        digest = sha256(message)
        value = int.from_bytes(digest, "big")
        shift = max(0, 8 * len(digest) - self.curve.n.bit_length())
        return (value >> shift) % self.curve.n

    def _nonce(self, d: int, h: int, retry: int) -> int:
        seed = (d.to_bytes(self._n_len, "big")
                + h.to_bytes(self._n_len, "big")
                + retry.to_bytes(4, "big"))
        drbg = HmacDrbg(seed, personalization=b"ecdsa-nonce")
        while True:
            k = drbg.random_int(self.curve.n)
            if k != 0:
                return k

    def keygen_from_seed(self, seed: bytes) -> KeyPair:
        """Derive ``d`` (private) and ``Q = d*G`` (public) from ``seed``."""
        drbg = HmacDrbg(seed, personalization=b"ecdsa-keygen")
        d = drbg.random_int_range(1, self.curve.n - 1)
        q = self.curve.multiply(d, self.curve.generator)
        return KeyPair(
            signing_key=d.to_bytes(self._n_len, "big"),
            verify_key=self.curve.encode_point(q),
        )

    def sign(self, signing_key: bytes, message: bytes) -> bytes:
        """Produce an ECDSA signature ``(r, s)`` on ``message``."""
        if len(signing_key) != self._n_len:
            raise SignatureError(
                f"signing key must be {self._n_len} bytes, got {len(signing_key)}"
            )
        curve = self.curve
        d = int.from_bytes(signing_key, "big")
        if not (1 <= d < curve.n):
            raise SignatureError("signing key out of range")
        h = self._hash_to_zn(message)
        retry = 0
        while True:
            k = self._nonce(d, h, retry)
            point = curve.multiply(k, curve.generator)
            r = point.x % curve.n
            if r == 0:
                retry += 1
                continue
            s = modinv(k, curve.n) * (h + r * d) % curve.n
            if s == 0:
                retry += 1
                continue
            return (r.to_bytes(self._n_len, "big")
                    + s.to_bytes(self._n_len, "big"))

    def precompute(self, verify_key: bytes) -> PointTable | None:
        """Build the wNAF window table for a long-lived verify key.

        Returns ``None`` for a malformed key (mirroring :meth:`verify`'s
        tolerance).  Pass the table back through ``verify(..., table=)`` —
        or let the protocol layer's key-table cache do it — to verify
        against warm precomputation.
        """
        return self.curve.precompute_verify_key(verify_key)

    def verify(self, verify_key: bytes, message: bytes, signature: bytes,
               table: PointTable | None = None) -> bool:
        """Check an ECDSA signature; ``False`` on any malformation.

        ``u1*G + u2*Q`` is evaluated with Shamir's double-scalar trick in
        one interleaved pass; a ``table`` from :meth:`precompute` skips
        both the point decompression and the per-call window build.  A
        table built for a *different* key fails closed.
        """
        curve = self.curve
        if len(signature) != 2 * self._n_len:
            return False
        if table is None:
            try:
                q = curve.decode_point(verify_key)
            except ValueError:
                return False
            if q.is_infinity:
                return False
        else:
            if table.verify_key != verify_key:
                return False
            q = table.point
        r = int.from_bytes(signature[: self._n_len], "big")
        s = int.from_bytes(signature[self._n_len:], "big")
        if not (0 < r < curve.n and 0 < s < curve.n):
            return False
        h = self._hash_to_zn(message)
        w = modinv(s, curve.n)
        u1 = h * w % curve.n
        u2 = r * w % curve.n
        point = curve.shamir_multiply(u1, u2, q, table)
        if point.is_infinity:
            return False
        return point.x % curve.n == r

    def verify_reference(self, verify_key: bytes, message: bytes,
                         signature: bytes) -> bool:
        """The original affine-arithmetic verify, retained verbatim.

        Two independent double-and-add multiplications with one modular
        inversion per group operation.  Benchmarks and parity tests use
        this as the cold baseline for the Shamir/table fast path.
        """
        curve = self.curve
        if len(signature) != 2 * self._n_len:
            return False
        try:
            q = curve.decode_point(verify_key)
        except ValueError:
            return False
        if q.is_infinity:
            return False
        r = int.from_bytes(signature[: self._n_len], "big")
        s = int.from_bytes(signature[self._n_len:], "big")
        if not (0 < r < curve.n and 0 < s < curve.n):
            return False
        h = self._hash_to_zn(message)
        w = modinv(s, curve.n)
        u1 = h * w % curve.n
        u2 = r * w % curve.n
        point = curve.add(
            curve.multiply_affine(u1, curve.generator),
            curve.multiply_affine(u2, q),
        )
        if point.is_infinity:
            return False
        return point.x % curve.n == r
