"""Common interface for the digital-signature schemes.

The identification protocol (paper Fig. 3) is parameterised by a signature
scheme ``(KeyGen, Sign, Verify)``.  Table II instantiates it with DSA; this
library also ships ECDSA-P256 and EC-Schnorr so protocol benchmarks can
compare signature back-ends.

All schemes implement the same small surface:

* ``keygen_from_seed(seed) -> (SigningKey, VerifyKey)`` — deterministic key
  derivation from the fuzzy extractor output ``R``.  Determinism is the
  crux of the paper's design: the private key is *never stored*; it is
  re-derived from the biometric on every identification via ``Rep``.
* ``sign(signing_key, message) -> bytes``
* ``verify(verify_key, message, signature, table=None) -> bool``
* ``precompute(verify_key) -> table | None`` — build a reusable
  verification table for a long-lived key (wNAF window tables for the EC
  schemes, fixed-base exponentiation tables for DSA).  Passing the result
  back through ``verify``'s ``table`` argument skips the per-call
  precomputation; :class:`VerifyTableCache` automates this for the
  protocol layer, which verifies against the *same* stored per-user key on
  every identification.

Keys and signatures cross the (simulated) wire, so both have canonical byte
encodings.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Protocol, Sequence, runtime_checkable

from repro import obs

#: One batch-verification item: ``(verify_key, message, signature)``.
VerifyItem = tuple[bytes, bytes, bytes]


@dataclass(frozen=True)
class KeyPair:
    """A signing/verification key pair in canonical byte encoding."""

    signing_key: bytes
    verify_key: bytes


@runtime_checkable
class SignatureScheme(Protocol):
    """Structural interface implemented by DSA, ECDSA and Schnorr back-ends."""

    #: Short human-readable name, e.g. ``"dsa-1024"``.
    name: str

    def keygen_from_seed(self, seed: bytes) -> KeyPair:
        """Derive a key pair deterministically from ``seed``."""
        ...

    def sign(self, signing_key: bytes, message: bytes) -> bytes:
        """Sign ``message`` and return the encoded signature."""
        ...

    def verify(self, verify_key: bytes, message: bytes, signature: bytes,
               table: Any | None = None) -> bool:
        """Return ``True`` iff ``signature`` is valid for ``message``.

        ``table``, when given, must come from ``precompute(verify_key)``
        for the *same* key; it short-circuits the per-call precomputation.
        """
        ...

    def precompute(self, verify_key: bytes) -> Any | None:
        """Build a reusable verification table for ``verify_key``.

        Returns ``None`` when the key is malformed (``verify`` would
        reject it anyway).
        """
        ...

    def verify_batch(self, items: Sequence[VerifyItem],
                     tables: Sequence[Any | None] | None = None) -> list[bool]:
        """Per-item verdicts for a batch of ``(key, message, signature)``.

        The contract is *exact per-item equivalence* with :meth:`verify`:
        ``verify_batch(items)[i] == verify(*items[i])`` for every batch
        composition — a scheme may amortise work across the batch (the
        Schnorr back-end collapses the batch into one randomized
        multi-scalar multiplication) but must isolate which members are
        invalid rather than rejecting the batch wholesale.

        This default implementation simply loops :meth:`verify`, so
        every scheme supports the surface; back-ends with an algebraic
        batch trick override it.  ``tables`` (optional, parallel to
        ``items``) carries per-item precomputed tables, ``None`` entries
        meaning cold; a ``tables`` list that does not parallel ``items``
        is an error (a silent ``zip`` truncation would report honest
        tail signatures as forged).
        """
        if tables is None:
            tables = (None,) * len(items)
        elif len(tables) != len(items):
            raise ValueError("tables must parallel items")
        return [
            self.verify(key, message, signature, table=table)
            for (key, message, signature), table in zip(items, tables)
        ]


@dataclass(frozen=True)
class VerifyCacheStats:
    """Frozen snapshot of :meth:`VerifyTableCache.stats`.

    The same snapshot-dataclass convention as ``EngineStats`` /
    ``FrontendStats``; :meth:`as_dict` and item access keep the former
    raw-dict consumers (bench rows, tests) working unchanged.
    """

    entries: int
    capacity: int
    hits: int
    misses: int
    evictions: int
    batch_calls: int
    batch_items: int
    batch_max: int
    batch_warm: int

    def as_dict(self) -> dict[str, int]:
        """The snapshot as a plain dict (JSON-ready)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __getitem__(self, key: str) -> int:
        """Dict-style access for pre-dataclass consumers."""
        if key not in self.__dataclass_fields__:
            raise KeyError(key)
        return getattr(self, key)


class VerifyTableCache:
    """Bounded LRU cache of per-key verification tables.

    The identification server verifies every challenge response against a
    *stored* per-user verify key, so in steady state the same keys recur
    request after request.  Tables are built on a key's *second* verify
    (build-on-second-use): a key seen once costs nothing extra — the
    one-time table build is only paid for keys that demonstrably recur, so
    a stranger probing with a throwaway key cannot make the server
    precompute on their behalf.  Cached tables are evicted in LRU order
    past ``capacity`` entries.  Nothing here is persisted — tables are
    pure precomputation, rebuilt on demand after a restart.

    Entries are keyed by ``(scheme.name, verify_key)`` so one cache can
    front stores that mix signature back-ends.  A scheme without a
    ``precompute`` surface degrades gracefully to cold verifies.

    ``capacity`` bounds *entries*, not bytes — table weight varies by
    scheme (a P-256 wNAF table is a few KB; a dsa-2048 ``FixedBaseExp``
    table runs to hundreds of KB), so size the cap to the heaviest
    scheme the store serves.

    The cache is thread-safe: one internal lock guards the table maps and
    the hit/miss counters, so the concurrent service frontend's verify
    workers can share a single cache.  The lock covers bookkeeping only —
    table *builds* and the signature verifications themselves run outside
    it (two threads racing an unbuilt key may both build the table; the
    result is identical and the loser's copy is simply dropped).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._tables: OrderedDict[tuple[str, bytes], Any] = OrderedDict()
        self._seen_once: OrderedDict[tuple[str, bytes], None] = OrderedDict()
        # Keys whose precompute returned None, tracked apart from real
        # tables: a flood of garbage keys must not evict warm tables.
        self._rejected: OrderedDict[tuple[str, bytes], None] = OrderedDict()
        # Counters live on the process-wide metrics registry (one
        # labelled series per cache instance); the former plain-int
        # attributes survive as read-only properties below.
        instance = obs.registry.next_instance("verify-cache")
        reg = obs.registry
        self._hits = reg.counter(
            "repro_verify_cache_hits_total",
            "Table lookups answered from the cache.", labels=instance)
        self._misses = reg.counter(
            "repro_verify_cache_misses_total",
            "Table lookups that found no cached entry.", labels=instance)
        self._evictions = reg.counter(
            "repro_verify_cache_evictions_total",
            "Warm tables dropped past the LRU capacity.", labels=instance)
        # Batch-path counters: calls/items through verify_batch, the
        # largest batch seen, and how many batched items verified
        # against a warm table (the batch-hit rate).
        self._batch_calls = reg.counter(
            "repro_verify_cache_batch_calls_total",
            "verify_batch invocations.", labels=instance)
        self._batch_items = reg.counter(
            "repro_verify_cache_batch_items_total",
            "Signatures checked through verify_batch.", labels=instance)
        self._batch_max = reg.gauge(
            "repro_verify_cache_batch_max",
            "Largest verify batch seen.", labels=instance)
        self._batch_warm = reg.counter(
            "repro_verify_cache_batch_warm_total",
            "Batched items verified against a warm table.", labels=instance)
        self._entries_gauge = reg.gauge(
            "repro_verify_cache_entries",
            "Warm tables currently cached.", labels=instance,
            owner=self, fn=len)
        #: Latency distribution of signature verification through this
        #: cache (one observation per ``verify`` call / ``verify_batch``
        #: item-amortised call).
        self.verify_seconds = reg.histogram(
            "repro_verify_latency_seconds",
            "Signature verification latency through the table cache.",
            labels=instance)

    # Former plain-int counter attributes, now read through the registry.

    @property
    def hits(self) -> int:
        """Table lookups answered from the cache."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Table lookups that found no cached entry."""
        return self._misses.value

    @property
    def evictions(self) -> int:
        """Warm tables dropped past the LRU capacity."""
        return self._evictions.value

    @property
    def batch_calls(self) -> int:
        """``verify_batch`` invocations."""
        return self._batch_calls.value

    @property
    def batch_items(self) -> int:
        """Signatures checked through ``verify_batch``."""
        return self._batch_items.value

    @property
    def batch_max(self) -> int:
        """Largest verify batch seen."""
        return int(self._batch_max.value)

    @property
    def batch_warm(self) -> int:
        """Batched items verified against a warm table."""
        return self._batch_warm.value

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def table_for(self, scheme: SignatureScheme, verify_key: bytes) -> Any | None:
        """The cached table for ``verify_key``; builds on the second use.

        Returns ``None`` when the key has only been seen once, the scheme
        offers no precomputation, or the key is malformed (negative
        results are remembered too — in a side structure that does not
        consume table capacity — so a garbage key costs neither a rebuild
        attempt per request nor a genuine key's warm slot).
        """
        builder = getattr(scheme, "precompute", None)
        if builder is None:
            return None
        key = (scheme.name, verify_key)
        with self._lock:
            tables = self._tables
            if key in tables:
                self._hits.inc()
                tables.move_to_end(key)
                return tables[key]
            if key in self._rejected:
                self._hits.inc()
                self._rejected.move_to_end(key)
                return None
            self._misses.inc()
            seen = self._seen_once
            if key not in seen:
                seen[key] = None
                if len(seen) > self.capacity:
                    seen.popitem(last=False)
                return None
            del seen[key]
        # Build outside the lock: precompute is the expensive step, and
        # two threads racing an unbuilt key derive identical tables from
        # the same public key — the slower writer just overwrites.
        table = builder(verify_key)
        with self._lock:
            if table is None:
                self._rejected[key] = None
                if len(self._rejected) > self.capacity:
                    self._rejected.popitem(last=False)
                return None
            self._tables[key] = table
            if len(self._tables) > self.capacity:
                self._tables.popitem(last=False)
                self._evictions.inc()
        return table

    def verify(self, scheme: SignatureScheme, verify_key: bytes,
               message: bytes, signature: bytes) -> bool:
        """``scheme.verify`` against the cached (or newly built) table.

        The call is timed into the verify latency histogram and, when a
        request trace is bound to the calling thread, recorded as that
        trace's ``verify`` span.
        """
        start = time.perf_counter()
        table = self.table_for(scheme, verify_key)
        if table is None:
            ok = scheme.verify(verify_key, message, signature)
        else:
            ok = scheme.verify(verify_key, message, signature, table=table)
        elapsed = time.perf_counter() - start
        self.verify_seconds.observe(elapsed)
        obs.tracer.record("verify", elapsed,
                          detail="warm" if table is not None else "cold")
        return ok

    def verify_batch(self, scheme: SignatureScheme,
                     items: Sequence[VerifyItem]) -> list[bool]:
        """Per-item verdicts for a batch, each against its cached table.

        The batched analogue of :meth:`verify`: every item's key runs
        through :meth:`table_for` (so warm tables are used, recurring
        keys get promoted, and the hit/miss counters advance exactly as
        they would for serial verifies), then the whole batch goes to
        ``scheme.verify_batch`` in one call — for the Schnorr back-end
        that is one randomized multi-scalar multiplication for the whole
        burst.  A scheme without a ``verify_batch`` surface degrades to
        a per-item loop, mirroring :meth:`verify`'s tolerance of
        table-less schemes.
        """
        if not items:
            return []
        start = time.perf_counter()
        tables = [self.table_for(scheme, key) for key, _, _ in items]
        self._batch_calls.inc()
        self._batch_items.inc(len(items))
        self._batch_max.track_max(len(items))
        self._batch_warm.inc(sum(1 for table in tables if table is not None))
        batch = getattr(scheme, "verify_batch", None)
        if batch is not None:
            verdicts = batch(items, tables=tables)
        else:
            verdicts = [
                scheme.verify(key, message, signature) if table is None
                else scheme.verify(key, message, signature, table=table)
                for (key, message, signature), table in zip(items, tables)
            ]
        # One amortised observation per item keeps the verify latency
        # histogram comparable between the serial and batched paths.
        elapsed = time.perf_counter() - start
        per_item = elapsed / len(items)
        for _ in items:
            self.verify_seconds.observe(per_item)
        obs.tracer.record("verify", elapsed, detail=f"batch={len(items)}")
        return verdicts

    def clear(self) -> None:
        """Drop every cached table and key marker (counters are kept)."""
        with self._lock:
            self._tables.clear()
            self._seen_once.clear()
            self._rejected.clear()

    def stats(self) -> VerifyCacheStats:
        """Snapshot of the cache counters as :class:`VerifyCacheStats`.

        Covers entries, capacity, hits, misses, evictions, plus the
        batch-path counters (calls, items, max size, warm-table items);
        the snapshot supports ``as_dict()`` and item access for
        dict-era consumers.
        """
        with self._lock:
            entries = len(self._tables)
        return VerifyCacheStats(
            entries=entries,
            capacity=self.capacity,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            batch_calls=self.batch_calls,
            batch_items=self.batch_items,
            batch_max=self.batch_max,
            batch_warm=self.batch_warm,
        )


_REGISTRY: dict[str, "SignatureScheme"] = {}


def register_scheme(scheme: SignatureScheme) -> SignatureScheme:
    """Register a scheme instance under its ``name`` for lookup."""
    _REGISTRY[scheme.name] = scheme
    return scheme


def get_scheme(name: str) -> SignatureScheme:
    """Look up a registered scheme; raises :class:`KeyError` with the known
    names when ``name`` is unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise KeyError(f"unknown signature scheme {name!r}; known: {known}") from None


def available_schemes() -> list[str]:
    """Names of all registered signature schemes."""
    return sorted(_REGISTRY)
