"""Common interface for the digital-signature schemes.

The identification protocol (paper Fig. 3) is parameterised by a signature
scheme ``(KeyGen, Sign, Verify)``.  Table II instantiates it with DSA; this
library also ships ECDSA-P256 and EC-Schnorr so protocol benchmarks can
compare signature back-ends.

All schemes implement the same small surface:

* ``keygen_from_seed(seed) -> (SigningKey, VerifyKey)`` — deterministic key
  derivation from the fuzzy extractor output ``R``.  Determinism is the
  crux of the paper's design: the private key is *never stored*; it is
  re-derived from the biometric on every identification via ``Rep``.
* ``sign(signing_key, message) -> bytes``
* ``verify(verify_key, message, signature) -> bool``

Keys and signatures cross the (simulated) wire, so both have canonical byte
encodings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@dataclass(frozen=True)
class KeyPair:
    """A signing/verification key pair in canonical byte encoding."""

    signing_key: bytes
    verify_key: bytes


@runtime_checkable
class SignatureScheme(Protocol):
    """Structural interface implemented by DSA, ECDSA and Schnorr back-ends."""

    #: Short human-readable name, e.g. ``"dsa-1024"``.
    name: str

    def keygen_from_seed(self, seed: bytes) -> KeyPair:
        """Derive a key pair deterministically from ``seed``."""
        ...

    def sign(self, signing_key: bytes, message: bytes) -> bytes:
        """Sign ``message`` and return the encoded signature."""
        ...

    def verify(self, verify_key: bytes, message: bytes, signature: bytes) -> bool:
        """Return ``True`` iff ``signature`` is valid for ``message``."""
        ...


_REGISTRY: dict[str, "SignatureScheme"] = {}


def register_scheme(scheme: SignatureScheme) -> SignatureScheme:
    """Register a scheme instance under its ``name`` for lookup."""
    _REGISTRY[scheme.name] = scheme
    return scheme


def get_scheme(name: str) -> SignatureScheme:
    """Look up a registered scheme; raises :class:`KeyError` with the known
    names when ``name`` is unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise KeyError(f"unknown signature scheme {name!r}; known: {known}") from None


def available_schemes() -> list[str]:
    """Names of all registered signature schemes."""
    return sorted(_REGISTRY)
