"""Common interface for the digital-signature schemes.

The identification protocol (paper Fig. 3) is parameterised by a signature
scheme ``(KeyGen, Sign, Verify)``.  Table II instantiates it with DSA; this
library also ships ECDSA-P256 and EC-Schnorr so protocol benchmarks can
compare signature back-ends.

All schemes implement the same small surface:

* ``keygen_from_seed(seed) -> (SigningKey, VerifyKey)`` — deterministic key
  derivation from the fuzzy extractor output ``R``.  Determinism is the
  crux of the paper's design: the private key is *never stored*; it is
  re-derived from the biometric on every identification via ``Rep``.
* ``sign(signing_key, message) -> bytes``
* ``verify(verify_key, message, signature, table=None) -> bool``
* ``precompute(verify_key) -> table | None`` — build a reusable
  verification table for a long-lived key (wNAF window tables for the EC
  schemes, fixed-base exponentiation tables for DSA).  Passing the result
  back through ``verify``'s ``table`` argument skips the per-call
  precomputation; :class:`VerifyTableCache` automates this for the
  protocol layer, which verifies against the *same* stored per-user key on
  every identification.

Keys and signatures cross the (simulated) wire, so both have canonical byte
encodings.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Protocol, Sequence, runtime_checkable

#: One batch-verification item: ``(verify_key, message, signature)``.
VerifyItem = tuple[bytes, bytes, bytes]


@dataclass(frozen=True)
class KeyPair:
    """A signing/verification key pair in canonical byte encoding."""

    signing_key: bytes
    verify_key: bytes


@runtime_checkable
class SignatureScheme(Protocol):
    """Structural interface implemented by DSA, ECDSA and Schnorr back-ends."""

    #: Short human-readable name, e.g. ``"dsa-1024"``.
    name: str

    def keygen_from_seed(self, seed: bytes) -> KeyPair:
        """Derive a key pair deterministically from ``seed``."""
        ...

    def sign(self, signing_key: bytes, message: bytes) -> bytes:
        """Sign ``message`` and return the encoded signature."""
        ...

    def verify(self, verify_key: bytes, message: bytes, signature: bytes,
               table: Any | None = None) -> bool:
        """Return ``True`` iff ``signature`` is valid for ``message``.

        ``table``, when given, must come from ``precompute(verify_key)``
        for the *same* key; it short-circuits the per-call precomputation.
        """
        ...

    def precompute(self, verify_key: bytes) -> Any | None:
        """Build a reusable verification table for ``verify_key``.

        Returns ``None`` when the key is malformed (``verify`` would
        reject it anyway).
        """
        ...

    def verify_batch(self, items: Sequence[VerifyItem],
                     tables: Sequence[Any | None] | None = None) -> list[bool]:
        """Per-item verdicts for a batch of ``(key, message, signature)``.

        The contract is *exact per-item equivalence* with :meth:`verify`:
        ``verify_batch(items)[i] == verify(*items[i])`` for every batch
        composition — a scheme may amortise work across the batch (the
        Schnorr back-end collapses the batch into one randomized
        multi-scalar multiplication) but must isolate which members are
        invalid rather than rejecting the batch wholesale.

        This default implementation simply loops :meth:`verify`, so
        every scheme supports the surface; back-ends with an algebraic
        batch trick override it.  ``tables`` (optional, parallel to
        ``items``) carries per-item precomputed tables, ``None`` entries
        meaning cold; a ``tables`` list that does not parallel ``items``
        is an error (a silent ``zip`` truncation would report honest
        tail signatures as forged).
        """
        if tables is None:
            tables = (None,) * len(items)
        elif len(tables) != len(items):
            raise ValueError("tables must parallel items")
        return [
            self.verify(key, message, signature, table=table)
            for (key, message, signature), table in zip(items, tables)
        ]


class VerifyTableCache:
    """Bounded LRU cache of per-key verification tables.

    The identification server verifies every challenge response against a
    *stored* per-user verify key, so in steady state the same keys recur
    request after request.  Tables are built on a key's *second* verify
    (build-on-second-use): a key seen once costs nothing extra — the
    one-time table build is only paid for keys that demonstrably recur, so
    a stranger probing with a throwaway key cannot make the server
    precompute on their behalf.  Cached tables are evicted in LRU order
    past ``capacity`` entries.  Nothing here is persisted — tables are
    pure precomputation, rebuilt on demand after a restart.

    Entries are keyed by ``(scheme.name, verify_key)`` so one cache can
    front stores that mix signature back-ends.  A scheme without a
    ``precompute`` surface degrades gracefully to cold verifies.

    ``capacity`` bounds *entries*, not bytes — table weight varies by
    scheme (a P-256 wNAF table is a few KB; a dsa-2048 ``FixedBaseExp``
    table runs to hundreds of KB), so size the cap to the heaviest
    scheme the store serves.

    The cache is thread-safe: one internal lock guards the table maps and
    the hit/miss counters, so the concurrent service frontend's verify
    workers can share a single cache.  The lock covers bookkeeping only —
    table *builds* and the signature verifications themselves run outside
    it (two threads racing an unbuilt key may both build the table; the
    result is identical and the loser's copy is simply dropped).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._tables: OrderedDict[tuple[str, bytes], Any] = OrderedDict()
        self._seen_once: OrderedDict[tuple[str, bytes], None] = OrderedDict()
        # Keys whose precompute returned None, tracked apart from real
        # tables: a flood of garbage keys must not evict warm tables.
        self._rejected: OrderedDict[tuple[str, bytes], None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Batch-path counters: calls/items through verify_batch, the
        # largest batch seen, and how many batched items verified
        # against a warm table (the batch-hit rate).
        self.batch_calls = 0
        self.batch_items = 0
        self.batch_max = 0
        self.batch_warm = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def table_for(self, scheme: SignatureScheme, verify_key: bytes) -> Any | None:
        """The cached table for ``verify_key``; builds on the second use.

        Returns ``None`` when the key has only been seen once, the scheme
        offers no precomputation, or the key is malformed (negative
        results are remembered too — in a side structure that does not
        consume table capacity — so a garbage key costs neither a rebuild
        attempt per request nor a genuine key's warm slot).
        """
        builder = getattr(scheme, "precompute", None)
        if builder is None:
            return None
        key = (scheme.name, verify_key)
        with self._lock:
            tables = self._tables
            if key in tables:
                self.hits += 1
                tables.move_to_end(key)
                return tables[key]
            if key in self._rejected:
                self.hits += 1
                self._rejected.move_to_end(key)
                return None
            self.misses += 1
            seen = self._seen_once
            if key not in seen:
                seen[key] = None
                if len(seen) > self.capacity:
                    seen.popitem(last=False)
                return None
            del seen[key]
        # Build outside the lock: precompute is the expensive step, and
        # two threads racing an unbuilt key derive identical tables from
        # the same public key — the slower writer just overwrites.
        table = builder(verify_key)
        with self._lock:
            if table is None:
                self._rejected[key] = None
                if len(self._rejected) > self.capacity:
                    self._rejected.popitem(last=False)
                return None
            self._tables[key] = table
            if len(self._tables) > self.capacity:
                self._tables.popitem(last=False)
                self.evictions += 1
        return table

    def verify(self, scheme: SignatureScheme, verify_key: bytes,
               message: bytes, signature: bytes) -> bool:
        """``scheme.verify`` against the cached (or newly built) table."""
        table = self.table_for(scheme, verify_key)
        if table is None:
            return scheme.verify(verify_key, message, signature)
        return scheme.verify(verify_key, message, signature, table=table)

    def verify_batch(self, scheme: SignatureScheme,
                     items: Sequence[VerifyItem]) -> list[bool]:
        """Per-item verdicts for a batch, each against its cached table.

        The batched analogue of :meth:`verify`: every item's key runs
        through :meth:`table_for` (so warm tables are used, recurring
        keys get promoted, and the hit/miss counters advance exactly as
        they would for serial verifies), then the whole batch goes to
        ``scheme.verify_batch`` in one call — for the Schnorr back-end
        that is one randomized multi-scalar multiplication for the whole
        burst.  A scheme without a ``verify_batch`` surface degrades to
        a per-item loop, mirroring :meth:`verify`'s tolerance of
        table-less schemes.
        """
        if not items:
            return []
        tables = [self.table_for(scheme, key) for key, _, _ in items]
        with self._lock:
            self.batch_calls += 1
            self.batch_items += len(items)
            if len(items) > self.batch_max:
                self.batch_max = len(items)
            self.batch_warm += sum(1 for table in tables if table is not None)
        batch = getattr(scheme, "verify_batch", None)
        if batch is not None:
            return batch(items, tables=tables)
        return [
            scheme.verify(key, message, signature) if table is None
            else scheme.verify(key, message, signature, table=table)
            for (key, message, signature), table in zip(items, tables)
        ]

    def clear(self) -> None:
        """Drop every cached table and key marker (counters are kept)."""
        with self._lock:
            self._tables.clear()
            self._seen_once.clear()
            self._rejected.clear()

    def stats(self) -> dict[str, int]:
        """Counter snapshot: entries, capacity, hits, misses, evictions,
        plus the batch-path counters (calls, items, max size, warm-table
        items)."""
        with self._lock:
            return {
                "entries": len(self._tables),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "batch_calls": self.batch_calls,
                "batch_items": self.batch_items,
                "batch_max": self.batch_max,
                "batch_warm": self.batch_warm,
            }


_REGISTRY: dict[str, "SignatureScheme"] = {}


def register_scheme(scheme: SignatureScheme) -> SignatureScheme:
    """Register a scheme instance under its ``name`` for lookup."""
    _REGISTRY[scheme.name] = scheme
    return scheme


def get_scheme(name: str) -> SignatureScheme:
    """Look up a registered scheme; raises :class:`KeyError` with the known
    names when ``name`` is unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise KeyError(f"unknown signature scheme {name!r}; known: {known}") from None


def available_schemes() -> list[str]:
    """Names of all registered signature schemes."""
    return sorted(_REGISTRY)
