"""Number-theoretic primitives backing the from-scratch signature schemes.

The paper's identification protocol signs challenges with DSA (Table II).
Because this reproduction runs offline with no third-party crypto
dependencies, the modular arithmetic toolbox — primality testing, prime
generation, modular inverse, square roots — is implemented here on top of
Python's arbitrary-precision integers.

Everything is deterministic when given a :class:`~repro.crypto.prng.HmacDrbg`
source, which keeps tests reproducible.
"""

from __future__ import annotations

from repro.crypto import backend
from repro.crypto.prng import HmacDrbg

#: Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
)

#: Deterministic Miller-Rabin witnesses proven sufficient for n < 3.3e24.
_DETERMINISTIC_WITNESSES: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def modinv(a: int, modulus: int) -> int:
    """Return the inverse of ``a`` modulo ``modulus``.

    Raises :class:`ValueError` when the inverse does not exist.  Routed
    through the active arithmetic backend (``pow(a, -1, m)`` on the stdlib
    backend, ``gmpy2.invert`` on the native one); the wrapper exists to
    give a uniform error message and a single audit point.  The retained
    extended-Euclid implementation is :func:`modinv_reference`, which the
    parity tests check every backend against.
    """
    return backend.active().modinv(a, modulus)


def modinv_reference(a: int, modulus: int) -> int:
    """Extended-Euclid modular inverse — the auditable reference.

    This is the original from-scratch implementation, kept verbatim as the
    ground truth :func:`modinv` (and every arithmetic backend) is
    parity-tested against in ``tests/crypto/test_backend.py``.  Hot paths
    use :func:`modinv`.
    """
    if modulus <= 0:
        raise ValueError(f"{a} has no inverse modulo {modulus}")
    a %= modulus
    old_r, r = a, modulus
    old_s, s = 1, 0
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    if old_r != 1:
        raise ValueError(f"{a} has no inverse modulo {modulus}")
    return old_s % modulus


def modexp(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent % modulus`` through the active backend.

    A drop-in for builtin three-argument ``pow`` on hot paths (cold DSA
    verification, point decompression) so they pick up the native backend
    when one is selected.
    """
    return backend.active().modexp(base, exponent, modulus)


def batch_modinv(values, modulus: int) -> list[int]:
    """Invert every element with one shared inversion (Montgomery's trick).

    Re-exported from the active backend; see
    :meth:`repro.crypto.backend.PythonBackend.batch_modinv`.
    """
    return backend.active().batch_modinv(values, modulus)


def sliding_window_pow(base: int, exponent: int, modulus: int,
                       window: int = 4) -> int:
    """Sliding-window modular exponentiation ``base**exponent % modulus``.

    Precomputes the odd powers ``base^1, base^3, ..., base^(2^window - 1)``
    and consumes the exponent in maximal odd windows, so the multiplication
    count drops from ``~bits/2`` (square-and-multiply) to
    ``~bits/(window+1)``.  For a one-shot exponentiation CPython's builtin
    ``pow`` (same algorithm, in C) is faster — this exists as the auditable
    reference for :class:`FixedBaseExp` and for repeated-base callers that
    want the table shape without fixing the base at construction time.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if exponent < 0:
        raise ValueError("negative exponents are not supported")
    if modulus == 1:
        return 0
    base %= modulus
    if exponent == 0:
        return 1
    # Lift one operand per chain so the whole loop runs on the active
    # backend's integer type; the result is lowered once at the end.
    bk = backend.active()
    modulus = bk.wrap(modulus)
    base = bk.wrap(base)
    # odd[i] = base ** (2*i + 1)
    base_sq = base * base % modulus
    odd = [base]
    for _ in range((1 << (window - 1)) - 1):
        odd.append(odd[-1] * base_sq % modulus)
    result = bk.wrap(1)
    bits = exponent.bit_length()
    i = bits - 1
    while i >= 0:
        if not (exponent >> i) & 1:
            result = result * result % modulus
            i -= 1
            continue
        # Take the widest window ending in a set bit.
        j = max(0, i - window + 1)
        while not (exponent >> j) & 1:
            j += 1
        chunk = (exponent >> j) & ((1 << (i - j + 1)) - 1)
        for _ in range(i - j + 1):
            result = result * result % modulus
        result = result * odd[chunk >> 1] % modulus
        i = j - 1
    return int(result)


class FixedBaseExp:
    """Fixed-base modular exponentiation via a precomputed digit table.

    For a base that is exponentiated many times (a DSA group generator, or
    a stored per-user public key during verification), precompute
    ``table[j][d-1] = base ** (d << (window*j)) % modulus`` for every
    ``window``-bit digit position ``j``.  An exponentiation then needs no
    squarings at all — just one modular multiplication per non-zero digit
    of the exponent (~``bits/window`` products), which beats builtin
    ``pow``'s full square-and-multiply chain despite the Python-level loop.
    """

    __slots__ = ("base", "modulus", "window", "_mask", "_mod", "_table")

    def __init__(self, base: int, modulus: int, exponent_bits: int,
                 window: int = 4) -> None:
        if modulus <= 1:
            raise ValueError("modulus must be > 1")
        if exponent_bits < 1:
            raise ValueError("exponent_bits must be >= 1")
        if not (1 <= window <= 16):
            raise ValueError("window must be in [1, 16]")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self._mask = (1 << window) - 1
        # Table entries are kept in the active backend's integer type so
        # the per-digit multiply chain in :meth:`pow` never converts;
        # ``base``/``modulus`` stay plain ints (callers compare them).
        bk = backend.active()
        self._mod = bk.wrap(modulus)
        windows = (exponent_bits + window - 1) // window
        table: list[list] = []
        digit_base = bk.wrap(self.base)
        for _ in range(windows):
            entry = digit_base
            row = []
            for _ in range(self._mask):
                row.append(entry)
                entry = entry * digit_base % self._mod
            table.append(row)
            digit_base = entry  # base ** (2^window) ** (j+1)
        self._table = table

    def pow(self, exponent: int) -> int:
        """``base ** exponent % modulus`` for ``0 <= exponent < 2^bits``."""
        if exponent < 0:
            raise ValueError("negative exponents are not supported")
        if exponent >> (self.window * len(self._table)):
            raise ValueError("exponent exceeds the precomputed table range")
        result = 1
        table = self._table
        mask = self._mask
        modulus = self._mod
        j = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * table[j][digit - 1] % modulus
            exponent >>= self.window
            j += 1
        return int(result)


def _miller_rabin_round(n: int, d: int, r: int, witness: int) -> bool:
    """One Miller-Rabin round; ``n - 1 = d * 2**r`` with ``d`` odd.

    Returns ``True`` when ``n`` passes (is a probable prime for this
    witness).
    """
    x = pow(witness, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, drbg: HmacDrbg | None = None) -> bool:
    """Miller-Rabin primality test.

    For ``n`` below ``3.3e24`` a fixed witness set makes the answer
    deterministic.  Above that, ``rounds`` random witnesses are drawn from
    ``drbg`` (or a fresh DRBG seeded from ``n``), giving a false-positive
    probability below ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < 3_317_044_064_679_887_385_961_981:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        if drbg is None:
            drbg = HmacDrbg(n.to_bytes((n.bit_length() + 7) // 8, "big"),
                            personalization=b"miller-rabin")
        witnesses = [drbg.random_int_range(2, n - 2) for _ in range(rounds)]

    return all(_miller_rabin_round(n, d, r, w) for w in witnesses)


def generate_prime(bits: int, drbg: HmacDrbg) -> int:
    """Generate a probable prime with exactly ``bits`` bits.

    Candidates are drawn uniformly with the top and bottom bits forced to 1
    (top for the size, bottom for oddness), trial-divided, then subjected to
    Miller-Rabin.
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    while True:
        candidate = drbg.random_int(1 << bits)
        candidate |= (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, drbg=drbg):
            return candidate


def generate_prime_with_factor(bits: int, q: int, drbg: HmacDrbg,
                               max_attempts: int = 100_000) -> int:
    """Generate a ``bits``-bit probable prime ``p`` with ``q | p - 1``.

    This is the DSA parameter shape: ``p = q*m + 1``.  Candidates for ``m``
    are drawn so that ``p`` has exactly ``bits`` bits, then ``p`` is
    primality-tested.
    """
    if q.bit_length() >= bits:
        raise ValueError("q must be smaller than the target size of p")
    m_bits = bits - q.bit_length()
    attempts = 0
    while attempts < max_attempts:
        attempts += 1
        m = drbg.random_int(1 << (m_bits + 1))
        m |= 1 << m_bits  # keep p near the top of the range
        if m % 2:  # p - 1 = q*m must be even; q is odd, so m must be even
            m += 1
        p = q * m + 1
        if p.bit_length() != bits:
            continue
        if is_probable_prime(p, drbg=drbg):
            return p
    raise RuntimeError(f"no prime p with q | p-1 found in {max_attempts} attempts")


def find_group_generator(p: int, q: int, drbg: HmacDrbg) -> int:
    """Find a generator of the order-``q`` subgroup of ``Z_p^*``.

    With ``p = q*m + 1``, the element ``g = h**((p-1)/q) mod p`` generates
    the subgroup whenever ``g != 1``.
    """
    exponent = (p - 1) // q
    while True:
        h = drbg.random_int_range(2, p - 2)
        g = pow(h, exponent, p)
        if g != 1:
            return g


def tonelli_shanks(n: int, p: int) -> int:
    """Return a square root of ``n`` modulo an odd prime ``p``.

    Raises :class:`ValueError` when ``n`` is a quadratic non-residue.  Used
    for decompressing elliptic-curve points.
    """
    n %= p
    if n == 0:
        return 0
    bk = backend.active()
    if bk.modexp(n, (p - 1) // 2, p) != 1:
        raise ValueError(f"{n} is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        return bk.modexp(n, (p + 1) // 4, p)

    # Factor p - 1 = q * 2**s with q odd.
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1

    # Find a non-residue z.
    z = 2
    while bk.modexp(z, (p - 1) // 2, p) != p - 1:
        z += 1

    pm = bk.wrap(p)
    m = s
    c = bk.wrap(bk.modexp(z, q, p))
    t = bk.wrap(bk.modexp(n, q, p))
    r = bk.wrap(bk.modexp(n, (q + 1) // 2, p))
    while t != 1:
        # Find least i with t**(2**i) == 1.
        i = 0
        probe = t
        while probe != 1:
            probe = probe * probe % pm
            i += 1
        b = bk.modexp(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % pm
        t = t * c % pm
        r = r * b % pm
    return int(r)


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol ``(a/p)`` for an odd prime ``p``."""
    result = pow(a % p, (p - 1) // 2, p)
    return -1 if result == p - 1 else result
