"""Number-theoretic primitives backing the from-scratch signature schemes.

The paper's identification protocol signs challenges with DSA (Table II).
Because this reproduction runs offline with no third-party crypto
dependencies, the modular arithmetic toolbox — primality testing, prime
generation, modular inverse, square roots — is implemented here on top of
Python's arbitrary-precision integers.

Everything is deterministic when given a :class:`~repro.crypto.prng.HmacDrbg`
source, which keeps tests reproducible.
"""

from __future__ import annotations

from repro.crypto.prng import HmacDrbg

#: Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
)

#: Deterministic Miller-Rabin witnesses proven sufficient for n < 3.3e24.
_DETERMINISTIC_WITNESSES: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def modinv(a: int, modulus: int) -> int:
    """Return the inverse of ``a`` modulo ``modulus``.

    Raises :class:`ValueError` when the inverse does not exist.  Python 3.8+
    exposes this through ``pow(a, -1, m)``; the wrapper exists to give a
    uniform error message and a single audit point.
    """
    try:
        return pow(a, -1, modulus)
    except ValueError as exc:  # not invertible
        raise ValueError(f"{a} has no inverse modulo {modulus}") from exc


def _miller_rabin_round(n: int, d: int, r: int, witness: int) -> bool:
    """One Miller-Rabin round; ``n - 1 = d * 2**r`` with ``d`` odd.

    Returns ``True`` when ``n`` passes (is a probable prime for this
    witness).
    """
    x = pow(witness, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, drbg: HmacDrbg | None = None) -> bool:
    """Miller-Rabin primality test.

    For ``n`` below ``3.3e24`` a fixed witness set makes the answer
    deterministic.  Above that, ``rounds`` random witnesses are drawn from
    ``drbg`` (or a fresh DRBG seeded from ``n``), giving a false-positive
    probability below ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < 3_317_044_064_679_887_385_961_981:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        if drbg is None:
            drbg = HmacDrbg(n.to_bytes((n.bit_length() + 7) // 8, "big"),
                            personalization=b"miller-rabin")
        witnesses = [drbg.random_int_range(2, n - 2) for _ in range(rounds)]

    return all(_miller_rabin_round(n, d, r, w) for w in witnesses)


def generate_prime(bits: int, drbg: HmacDrbg) -> int:
    """Generate a probable prime with exactly ``bits`` bits.

    Candidates are drawn uniformly with the top and bottom bits forced to 1
    (top for the size, bottom for oddness), trial-divided, then subjected to
    Miller-Rabin.
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    while True:
        candidate = drbg.random_int(1 << bits)
        candidate |= (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, drbg=drbg):
            return candidate


def generate_prime_with_factor(bits: int, q: int, drbg: HmacDrbg,
                               max_attempts: int = 100_000) -> int:
    """Generate a ``bits``-bit probable prime ``p`` with ``q | p - 1``.

    This is the DSA parameter shape: ``p = q*m + 1``.  Candidates for ``m``
    are drawn so that ``p`` has exactly ``bits`` bits, then ``p`` is
    primality-tested.
    """
    if q.bit_length() >= bits:
        raise ValueError("q must be smaller than the target size of p")
    m_bits = bits - q.bit_length()
    attempts = 0
    while attempts < max_attempts:
        attempts += 1
        m = drbg.random_int(1 << (m_bits + 1))
        m |= 1 << m_bits  # keep p near the top of the range
        if m % 2:  # p - 1 = q*m must be even; q is odd, so m must be even
            m += 1
        p = q * m + 1
        if p.bit_length() != bits:
            continue
        if is_probable_prime(p, drbg=drbg):
            return p
    raise RuntimeError(f"no prime p with q | p-1 found in {max_attempts} attempts")


def find_group_generator(p: int, q: int, drbg: HmacDrbg) -> int:
    """Find a generator of the order-``q`` subgroup of ``Z_p^*``.

    With ``p = q*m + 1``, the element ``g = h**((p-1)/q) mod p`` generates
    the subgroup whenever ``g != 1``.
    """
    exponent = (p - 1) // q
    while True:
        h = drbg.random_int_range(2, p - 2)
        g = pow(h, exponent, p)
        if g != 1:
            return g


def tonelli_shanks(n: int, p: int) -> int:
    """Return a square root of ``n`` modulo an odd prime ``p``.

    Raises :class:`ValueError` when ``n`` is a quadratic non-residue.  Used
    for decompressing elliptic-curve points.
    """
    n %= p
    if n == 0:
        return 0
    if pow(n, (p - 1) // 2, p) != 1:
        raise ValueError(f"{n} is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        return pow(n, (p + 1) // 4, p)

    # Factor p - 1 = q * 2**s with q odd.
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1

    # Find a non-residue z.
    z = 2
    while pow(z, (p - 1) // 2, p) != p - 1:
        z += 1

    m = s
    c = pow(z, q, p)
    t = pow(n, q, p)
    r = pow(n, (q + 1) // 2, p)
    while t != 1:
        # Find least i with t**(2**i) == 1.
        i = 0
        probe = t
        while probe != 1:
            probe = probe * probe % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol ``(a/p)`` for an odd prime ``p``."""
    result = pow(a % p, (p - 1) // 2, p)
    return -1 if result == p - 1 else result
