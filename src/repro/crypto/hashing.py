"""Hashing utilities shared across the library.

The paper instantiates two hash-based primitives:

* a collision-resistant hash ``H : {0,1}* -> {0,1}^l`` used by the robust
  secure sketch (Section IV-C, following Boyen et al. [10]);
* SHA-256 as the "random extractor" in Table II.

Everything here is a thin, well-typed wrapper over :mod:`hashlib` /
:mod:`hmac` from the standard library.  Canonical byte encodings for integer
vectors live here too, so that a sketch hashed on the device equals the
sketch hashed on the server byte-for-byte.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, Sequence

import numpy as np

#: Number of bytes used to serialise one signed vector coordinate.  Eight
#: bytes comfortably covers the paper's representation range of
#: ``[-100000, 100000]`` and any practical number line.
_COORD_BYTES = 8

DIGEST_SIZE = hashlib.sha256().digest_size


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """Return ``HMAC-SHA256(key, data)``."""
    return hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without leaking the mismatch position.

    Used wherever a hash tag is checked (robust sketch verification), so an
    attacker probing tampered helper data cannot learn a prefix of the
    correct tag from timing.
    """
    return hmac.compare_digest(a, b)


def encode_int_vector(vector: Sequence[int] | np.ndarray) -> bytes:
    """Serialise a vector of signed integers to a canonical byte string.

    Each coordinate becomes an 8-byte big-endian two's-complement word.
    Using a fixed-width encoding (rather than e.g. ``str(list)``) makes the
    encoding injective and platform-independent, which the robust sketch's
    hash binding relies on.
    """
    arr = np.asarray(vector, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {arr.shape}")
    # Big-endian view of the int64 array is the canonical encoding.
    return arr.astype(">i8").tobytes()


def decode_int_vector(data: bytes) -> np.ndarray:
    """Inverse of :func:`encode_int_vector`."""
    if len(data) % _COORD_BYTES:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of {_COORD_BYTES}"
        )
    return np.frombuffer(data, dtype=">i8").astype(np.int64)


def hash_vectors(*vectors: Sequence[int] | np.ndarray, label: bytes = b"") -> bytes:
    """Hash one or more integer vectors into a single SHA-256 tag.

    A length prefix is inserted before every vector so the combined encoding
    is injective (``H(x || s)`` with ambiguous boundaries would let an
    attacker shift mass between ``x`` and ``s``).  The optional ``label``
    provides domain separation between different uses of the hash.
    """
    h = hashlib.sha256()
    h.update(len(label).to_bytes(4, "big"))
    h.update(label)
    for vec in vectors:
        encoded = encode_int_vector(vec)
        h.update(len(encoded).to_bytes(8, "big"))
        h.update(encoded)
    return h.digest()


def hash_to_int(data: bytes, bits: int) -> int:
    """Map ``data`` to an integer in ``[0, 2**bits)`` by iterated hashing.

    SHA-256 output blocks are concatenated (counter mode) until ``bits``
    bits are available; the result is truncated to exactly ``bits`` bits.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    out = expand(data, (bits + 7) // 8)
    value = int.from_bytes(out, "big")
    excess = len(out) * 8 - bits
    return value >> excess


def expand(seed: bytes, length: int) -> bytes:
    """Expand ``seed`` to ``length`` bytes with SHA-256 in counter mode.

    This is the classic ``H(seed || 0) || H(seed || 1) || ...`` expansion;
    it is used to derive long uniform strings (e.g. signing keys) from the
    fuzzy extractor's fixed-size output ``R``.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    blocks = []
    counter = 0
    produced = 0
    while produced < length:
        block = hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def hash_concat(parts: Iterable[bytes], label: bytes = b"") -> bytes:
    """Hash a sequence of byte strings with injective length framing."""
    h = hashlib.sha256()
    h.update(len(label).to_bytes(4, "big"))
    h.update(label)
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()
