"""Deterministic pseudo-random generation.

Two generators are provided:

* :class:`HmacDrbg` — an HMAC-SHA256 deterministic random bit generator in
  the style of NIST SP 800-90A.  It backs everything that must be
  *cryptographically* pseudorandom and reproducible from a seed: signing
  nonces, key derivation from the extractor output ``R``, and the coin
  flips in the sketch algorithm's special cases.
* :func:`rng_from_seed` — a convenience constructor for a seeded
  :class:`numpy.random.Generator`, used for *statistical* workloads
  (synthetic biometric populations, benchmarks) where speed matters and
  cryptographic strength does not.

Keeping the two worlds separate follows the library-wide rule: protocol
randomness is DRBG-backed and auditable; workload randomness is numpy.
"""

from __future__ import annotations

import hashlib
import hmac

import numpy as np


class HmacDrbg:
    """HMAC-SHA256 deterministic random bit generator.

    The construction follows NIST SP 800-90A's HMAC_DRBG (without the
    prediction-resistance machinery, which needs an entropy source and is
    irrelevant for deterministic reproduction):

    - state is a pair ``(K, V)`` of 32-byte strings;
    - ``generate`` produces output blocks ``V = HMAC(K, V)``;
    - ``update`` (on instantiation and reseed) mixes provided data into
      ``K`` and ``V`` through two HMAC passes.

    Instances are deterministic: the same seed always yields the same byte
    stream, which the test-suite and the deterministic signing nonces rely
    on.
    """

    _HASH_LEN = 32

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self._key = b"\x00" * self._HASH_LEN
        self._value = b"\x01" * self._HASH_LEN
        self._update(bytes(seed) + personalization)
        self._reseed_counter = 1

    def _hmac(self, data: bytes) -> bytes:
        return hmac.new(self._key, data, hashlib.sha256).digest()

    def _update(self, provided: bytes = b"") -> None:
        self._key = self._hmac(self._value + b"\x00" + provided)
        self._value = self._hmac(self._value)
        if provided:
            self._key = self._hmac(self._value + b"\x01" + provided)
            self._value = self._hmac(self._value)

    def reseed(self, data: bytes) -> None:
        """Mix additional entropy/material into the generator state."""
        self._update(data)
        self._reseed_counter = 1

    def generate(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes."""
        if length < 0:
            raise ValueError("length must be non-negative")
        blocks = []
        produced = 0
        while produced < length:
            self._value = self._hmac(self._value)
            blocks.append(self._value)
            produced += self._HASH_LEN
        self._update()
        self._reseed_counter += 1
        return b"".join(blocks)[:length]

    def random_int(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` by rejection sampling.

        Rejection (rather than modular reduction) avoids the modulo bias
        that would skew signing nonces — the classic DSA nonce-bias attack
        recovers keys from even a few biased bits.
        """
        if bound <= 0:
            raise ValueError("bound must be positive")
        n_bits = bound.bit_length()
        n_bytes = (n_bits + 7) // 8
        excess_bits = n_bytes * 8 - n_bits
        while True:
            candidate = int.from_bytes(self.generate(n_bytes), "big")
            candidate >>= excess_bits
            if candidate < bound:
                return candidate

    def random_int_range(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range ``[low, high]``."""
        if low > high:
            raise ValueError("low must not exceed high")
        return low + self.random_int(high - low + 1)

    def coin(self) -> int:
        """Return a uniform bit (0 or 1) — the sketch algorithm's coin."""
        return self.generate(1)[0] & 1


def rng_from_seed(seed: int | None = None) -> np.random.Generator:
    """Create a seeded numpy Generator for statistical (non-crypto) use."""
    return np.random.default_rng(seed)


def derive_drbg(root: HmacDrbg, label: bytes) -> HmacDrbg:
    """Derive an independent child DRBG from ``root`` under ``label``.

    Children derived under different labels produce computationally
    independent streams; this gives protocol components (coin flips,
    nonces, challenges) their own streams from one master seed.
    """
    return HmacDrbg(root.generate(32), personalization=label)
