"""Pre-generated DSA domain parameters.

Generating DSA groups in pure Python costs ~0.1 s (512-bit) to ~7 s
(2048-bit), so the groups used by tests and benchmarks are generated once
and pinned here.  Each group was produced by
``repro.crypto.dsa.generate_group(p_bits, q_bits, seed)`` with the seed
recorded below, so the constants are reproducible::

    GROUP_512  = generate_group(512,  160, b"repro-dsa-512")
    GROUP_1024 = generate_group(1024, 160, b"repro-dsa-1024")
    GROUP_2048 = generate_group(2048, 256, b"repro-dsa-2048")

``tests/crypto/test_dsa.py`` re-validates the structural invariants
(primality of ``p`` and ``q``, ``q | p - 1``, order of ``g``) on every run.

Security note: the 512-bit group exists purely to keep unit tests fast; it
offers no real-world security.  The paper's implementation section does not
state a modulus size; 1024/160 matches DSA deployments contemporary with
the paper and is the default for protocol benchmarks.
"""

from __future__ import annotations

from repro.crypto.dsa import DsaGroup

#: Test-speed group (NOT secure; unit tests only).
GROUP_512 = DsaGroup(
    p=0xfa08f9f135f3a2d85062beedcb6d54b0d180a358421a27dac064c48a72ddca3f0af9a10eb9c41f3731e6c926bfb7d1ffa345c98848c6568e2be0152048dd6c1d,
    q=0xea22bb5e65b2595fb22c1cd6b76a8f246de53ac7,
    g=0xd4b51667aa716293fe203000b5206aa3a9c177fefba366986a9cbfa42809b939b5274d2694d1ce0de0264847a58c2d0c586c54da43b87ea8ead810e0b0ecfae0,
)

#: Paper-era DSA parameters (FIPS 186-2 sizes); protocol benchmark default.
GROUP_1024 = DsaGroup(
    p=0xdf2dcb6ae5b03ce2b1cf6dbf8045eab16194d09bd7a9ac4cd0b3c16d4178b1eb6a23b4eebd1345228e547eb3316ec48a44146a5d7e10330e45445e1b38edd7b1de1346586925375be5a5f9d768b0a39e504b27d08e7b35e4eadcf199d07c05254acfd172e3033312b1c478480eb872e201ac5f347c5171f219fb05a69c691e3d,
    q=0xc7df77f99482a8c9a3e8faa727089d90bc1a3c53,
    g=0xc555ea0e0661f2a8b0cf68841105aa6cfd2eeee7cb2b97aec617abc9443444a0f31c1fa9b6336a6fcb1881487a58720a1edd02f2223fa3340a450d387daaf3ea74eebeec3b7817bc17b3ac294a1d07e9f7a9a0bb3c862b7156becac5169ae9de572634236a2aacbbc7edf11e8e077b2e4deb761fa8342f269d2d2481925fbe77,
)

#: Modern-strength DSA parameters (FIPS 186-4 sizes).
GROUP_2048 = DsaGroup(
    p=0xc3fe46ec8f045c2ebfe5ace84c64542fc1c85e31acf73905eb5576502b40aef24698aecf27f01d4744a73cd879d9e9173c6a2e7433da9fa0ee4b71a8df396852e8b345328522bed50c4dd95afc96f14cc31679cfd443d997c22c308f71e2c731fac267d223960f58cf4fce83861f334cf93da9bf4cbeaf8eb5bbe5993f82bfde58583ead7d54a00bfff930878550741adc3abd91526f89a4d3c33868e0d5c1f232e6feb7f599cf50f36044feaaf2863f21525f010815711345ab9dfa47ed962b49e0f26e90f5cb981c39fe5a255ff8e632679b754f076de5b88c6e319b3391742eb888d6a951815bf0e15f3f19a128ff2f999d113413517a293fbdd42c591b75,
    q=0x8f380731634aa038e961733afbcf3d36098323e3747789d3041b8691ef873f29,
    g=0xfd4157c2de889cd4c2cf48c3d957399fcb89b1256d33e4d283b693eadbb5ba3e387490d6d9dd5845a005cf7bbc583f16d0ca488350ff035f014597cf1fe4d197f7899138475a308c846ef7c868abeda96298ab582cc02e59928362d36c16217c4b88a76813051c0c5716db2cf7d19d7b7dc025633405188ee3f2d077ed9bad92f9fcfaceb6d15a9bf989f6e65d584935044c475438344db2da5c196b566c747f3c6e2ce07aec8f80df007bd7a8e31312be73fe3c9cd468408dd952db32826c3132ed0ed138aef1034e8c2959ad42a1b4a7200c258840946818c05610fdd05020b4fb539c90a412934ec80a82efb95f2d42008f4aed84f2e2007534116e75aea,
)

#: Seeds used to generate the groups above (kept for reproducibility).
GENERATION_SEEDS = {
    512: b"repro-dsa-512",
    1024: b"repro-dsa-1024",
    2048: b"repro-dsa-2048",
}

GROUPS_BY_BITS = {512: GROUP_512, 1024: GROUP_1024, 2048: GROUP_2048}
