"""Short-Weierstrass elliptic-curve arithmetic.

Supports the ECDSA and EC-Schnorr signature back-ends, which this library
offers as alternatives to the paper's DSA (Table II).  Elliptic-curve
signatures have far smaller keys for the same security level, which matters
in the identification protocol: the verify key is stored per user and the
signature crosses the wire on every identification.

The implementation is textbook affine-coordinate arithmetic over a prime
field; points at infinity are represented by ``None`` inside the group-law
helpers and by :data:`Point.INFINITY` at the public surface.  This is a
*reproduction-grade* implementation — it is not constant-time and must not
be used to protect real secrets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.numbertheory import is_probable_prime, modinv, tonelli_shanks


@dataclass(frozen=True)
class Point:
    """An affine point ``(x, y)``; ``Point.infinity()`` is the identity."""

    x: int | None
    y: int | None

    @staticmethod
    def infinity() -> "Point":
        return Point(None, None)

    @property
    def is_infinity(self) -> bool:
        return self.x is None


@dataclass(frozen=True)
class Curve:
    """A short-Weierstrass curve ``y^2 = x^3 + a*x + b`` over ``GF(p)``.

    ``n`` is the (prime) order of the base point ``G = (gx, gy)``.
    """

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int

    def __post_init__(self) -> None:
        if not self.is_on_curve(Point(self.gx, self.gy)):
            raise ValueError(f"base point of {self.name} is not on the curve")

    # -- predicates --------------------------------------------------------

    def is_on_curve(self, point: Point) -> bool:
        """Check whether ``point`` satisfies the curve equation."""
        if point.is_infinity:
            return True
        x, y = point.x, point.y
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def validate(self) -> None:
        """Full structural validation (used by tests; costs two prime tests)."""
        if not is_probable_prime(self.p):
            raise ValueError("field modulus p is not prime")
        if not is_probable_prime(self.n):
            raise ValueError("group order n is not prime")
        if (4 * self.a ** 3 + 27 * self.b ** 2) % self.p == 0:
            raise ValueError("curve is singular")
        if not self.multiply(self.n, self.generator).is_infinity:
            raise ValueError("base point order is not n")

    # -- group law ---------------------------------------------------------

    @property
    def generator(self) -> Point:
        return Point(self.gx, self.gy)

    def add(self, lhs: Point, rhs: Point) -> Point:
        """Group addition in affine coordinates."""
        if lhs.is_infinity:
            return rhs
        if rhs.is_infinity:
            return lhs
        p = self.p
        if lhs.x == rhs.x:
            if (lhs.y + rhs.y) % p == 0:
                return Point.infinity()
            # Doubling.
            slope = (3 * lhs.x * lhs.x + self.a) * modinv(2 * lhs.y, p) % p
        else:
            slope = (rhs.y - lhs.y) * modinv(rhs.x - lhs.x, p) % p
        x3 = (slope * slope - lhs.x - rhs.x) % p
        y3 = (slope * (lhs.x - x3) - lhs.y) % p
        return Point(x3, y3)

    def negate(self, point: Point) -> Point:
        """The group inverse ``-P``."""
        if point.is_infinity:
            return point
        return Point(point.x, (-point.y) % self.p)

    def multiply(self, scalar: int, point: Point) -> Point:
        """Double-and-add scalar multiplication ``scalar * point``."""
        scalar %= self.n
        result = Point.infinity()
        addend = point
        while scalar:
            if scalar & 1:
                result = self.add(result, addend)
            addend = self.add(addend, addend)
            scalar >>= 1
        return result

    # -- encodings ---------------------------------------------------------

    @property
    def coordinate_bytes(self) -> int:
        return (self.p.bit_length() + 7) // 8

    def encode_point(self, point: Point) -> bytes:
        """SEC1 compressed encoding (``02``/``03`` prefix + x coordinate).

        The identity encodes as a single zero byte, as in SEC1.
        """
        if point.is_infinity:
            return b"\x00"
        prefix = b"\x03" if point.y & 1 else b"\x02"
        return prefix + point.x.to_bytes(self.coordinate_bytes, "big")

    def decode_point(self, data: bytes) -> Point:
        """Inverse of :func:`encode_point`; validates curve membership."""
        if data == b"\x00":
            return Point.infinity()
        if len(data) != 1 + self.coordinate_bytes or data[0] not in (2, 3):
            raise ValueError("malformed compressed point")
        x = int.from_bytes(data[1:], "big")
        if x >= self.p:
            raise ValueError("x coordinate out of field range")
        rhs = (x * x * x + self.a * x + self.b) % self.p
        y = tonelli_shanks(rhs, self.p)
        if (y & 1) != (data[0] & 1):
            y = self.p - y
        point = Point(x, y)
        if not self.is_on_curve(point):
            raise ValueError("decoded point not on curve")
        return point


#: NIST P-256 (secp256r1).  Constants verified against the curve equation
#: and the base-point order in ``tests/crypto/test_ec.py``.
P256 = Curve(
    name="P-256",
    p=0xffffffff00000001000000000000000000000000ffffffffffffffffffffffff,
    a=-3,
    b=0x5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b,
    gx=0x6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296,
    gy=0x4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5,
    n=0xffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551,
)