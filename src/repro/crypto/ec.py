"""Short-Weierstrass elliptic-curve arithmetic.

Supports the ECDSA and EC-Schnorr signature back-ends, which this library
offers as alternatives to the paper's DSA (Table II).  Elliptic-curve
signatures have far smaller keys for the same security level, which matters
in the identification protocol: the verify key is stored per user and the
signature crosses the wire on every identification.

Two implementations of the group law coexist:

* **Affine reference** — textbook affine-coordinate arithmetic (one modular
  inversion per addition), kept verbatim from the original reproduction as
  :meth:`Curve.add` / :meth:`Curve.multiply_affine`.  It is the auditable
  law the fast kernel is property-tested against.
* **Jacobian kernel** — projective ``(X, Y, Z)`` coordinates with
  ``x = X/Z^2, y = Y/Z^3``, so additions and doublings cost field
  multiplications only; a scalar multiplication performs exactly one
  inversion, at the final conversion back to affine.  Scalar recoding uses
  windowed NAF (non-adjacent form), and two precomputation surfaces feed
  the protocol hot paths:

  - a **fixed-base comb table** for the curve generator ``G`` (keygen and
    signing multiply ``G`` by a fresh scalar on every call — the comb
    replaces the doubling chain with ~64 table additions);
  - per-point **wNAF odd-multiple tables** (:class:`PointTable`), used by
    Shamir's double-scalar trick (:meth:`Curve.shamir_multiply`) so
    signature verification evaluates ``u1*G + u2*Q`` in one interleaved
    doubling pass against warm tables.

  :meth:`Curve.multi_multiply` generalises the same interleaving to an
  arbitrary number of terms (Straus' algorithm): one shared doubling
  chain, warm tables where available, on-the-fly window tables built
  with a single batched inversion otherwise.  Randomized Schnorr batch
  verification rides on it.

Points at infinity are represented by ``None`` coordinates at the public
surface (:data:`Point.infinity`) and by ``Z == 0`` inside the Jacobian
kernel.  This is a *reproduction-grade* implementation — it is not
constant-time and must not be used to protect real secrets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import backend
from repro.crypto.numbertheory import is_probable_prime, modinv, tonelli_shanks

#: Window width for on-the-fly wNAF multiplication of an arbitrary point.
_WNAF_WINDOW = 5
#: Window width for precomputed per-key tables (64 odd multiples).
_TABLE_WINDOW = 7
#: Window width (bits per digit) of the fixed-base comb table for ``G``.
_COMB_WINDOW = 4

_JAC_INFINITY = (1, 1, 0)


@dataclass(frozen=True)
class Point:
    """An affine point ``(x, y)``; ``Point.infinity()`` is the identity."""

    x: int | None
    y: int | None

    @staticmethod
    def infinity() -> "Point":
        return Point(None, None)

    @property
    def is_infinity(self) -> bool:
        return self.x is None


class PointTable:
    """Precomputed odd multiples ``P, 3P, 5P, ... (2^(w-1)-1)P`` of a point.

    Entries are stored in affine coordinates (batch-inverted at build time)
    so the Jacobian kernel can use cheap mixed additions.  Build one per
    long-lived verify key via :meth:`Curve.precompute_table` and pass it to
    :meth:`Curve.shamir_multiply` / :meth:`Curve.multiply` to verify
    against warm tables.

    ``verify_key`` optionally records the encoded key the table was built
    for; the signature schemes set it in ``precompute`` and reject a
    table/key mismatch in ``verify`` (a mispaired table must fail closed,
    not authenticate against the wrong key).
    """

    __slots__ = ("point", "window", "odd", "verify_key")

    def __init__(self, point: Point, window: int,
                 odd: list[tuple[int, int]],
                 verify_key: bytes | None = None) -> None:
        self.point = point
        self.window = window
        self.odd = odd
        self.verify_key = verify_key

    def __len__(self) -> int:
        return len(self.odd)


def _signed_entry(digit: int, odd: list[tuple[int, int]],
                  p: int) -> tuple[int, int]:
    """Affine table entry for a non-zero signed wNAF ``digit``.

    ``odd[i]`` holds ``(2i+1) * P``; a negative digit selects the same
    multiple with the y coordinate negated.
    """
    x2, y2 = odd[(digit if digit > 0 else -digit) >> 1]
    return (x2, y2) if digit > 0 else (x2, p - y2)


def _wnaf_digits(scalar: int, window: int) -> list[int]:
    """Width-``window`` NAF digits of ``scalar``, least significant first.

    Every non-zero digit is odd with ``|digit| < 2^(window-1)``, and any
    two non-zero digits are separated by at least ``window - 1`` zeros.
    """
    digits: list[int] = []
    full = 1 << window
    half = full >> 1
    mask = full - 1
    while scalar:
        if scalar & 1:
            digit = scalar & mask
            if digit >= half:
                digit -= full
            scalar -= digit
            digits.append(digit)
        else:
            digits.append(0)
        scalar >>= 1
    return digits


@dataclass(frozen=True)
class Curve:
    """A short-Weierstrass curve ``y^2 = x^3 + a*x + b`` over ``GF(p)``.

    ``n`` is the (prime) order of the base point ``G = (gx, gy)``.
    """

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int
    #: Lazy per-curve precomputation cache (comb and wNAF tables for ``G``).
    _tables: dict = field(default_factory=dict, init=False, repr=False,
                          compare=False)

    def __post_init__(self) -> None:
        if not self.is_on_curve(Point(self.gx, self.gy)):
            raise ValueError(f"base point of {self.name} is not on the curve")

    # -- predicates --------------------------------------------------------

    def is_on_curve(self, point: Point) -> bool:
        """Check whether ``point`` satisfies the curve equation."""
        if point.is_infinity:
            return True
        x, y = point.x, point.y
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def validate(self) -> None:
        """Full structural validation (used by tests; costs two prime tests)."""
        if not is_probable_prime(self.p):
            raise ValueError("field modulus p is not prime")
        if not is_probable_prime(self.n):
            raise ValueError("group order n is not prime")
        if (4 * self.a ** 3 + 27 * self.b ** 2) % self.p == 0:
            raise ValueError("curve is singular")
        if not self.multiply(self.n, self.generator).is_infinity:
            raise ValueError("base point order is not n")

    # -- affine reference group law ---------------------------------------

    @property
    def generator(self) -> Point:
        return Point(self.gx, self.gy)

    def add(self, lhs: Point, rhs: Point) -> Point:
        """Group addition in affine coordinates (reference law)."""
        if lhs.is_infinity:
            return rhs
        if rhs.is_infinity:
            return lhs
        p = self.p
        if lhs.x == rhs.x:
            if (lhs.y + rhs.y) % p == 0:
                return Point.infinity()
            # Doubling.
            slope = (3 * lhs.x * lhs.x + self.a) * modinv(2 * lhs.y, p) % p
        else:
            slope = (rhs.y - lhs.y) * modinv(rhs.x - lhs.x, p) % p
        x3 = (slope * slope - lhs.x - rhs.x) % p
        y3 = (slope * (lhs.x - x3) - lhs.y) % p
        return Point(x3, y3)

    def negate(self, point: Point) -> Point:
        """The group inverse ``-P``."""
        if point.is_infinity:
            return point
        return Point(point.x, (-point.y) % self.p)

    def multiply_affine(self, scalar: int, point: Point) -> Point:
        """Double-and-add scalar multiplication in affine coordinates.

        This is the original reproduction's ``multiply`` — one modular
        inversion per group operation.  Retained as the reference the
        Jacobian/wNAF kernel is benchmarked and property-tested against;
        hot paths use :meth:`multiply`.
        """
        scalar %= self.n
        result = Point.infinity()
        addend = point
        while scalar:
            if scalar & 1:
                result = self.add(result, addend)
            addend = self.add(addend, addend)
            scalar >>= 1
        return result

    # -- Jacobian kernel ---------------------------------------------------
    #
    # Formulas are the standard dbl-2007-bl / madd-2007-bl / add-2007-bl
    # from the Explicit-Formulas Database, with the a = -3 shortcut for the
    # doubling slope.  Points are (X, Y, Z) tuples with Z == 0 for the
    # identity.  The helpers reduce modulo the backend-lifted field prime
    # (:meth:`_field`), which is enough to run every multiplication chain
    # on the active backend's integer type (int * mpz promotes); the
    # conversions back to affine lower the coordinates to plain ints, so
    # ``Point`` and the encodings stay backend-independent.

    def _field(self):
        """The field prime lifted into the active arithmetic backend.

        Cached per backend identity so a runtime backend switch (tests,
        the bench shootout) transparently re-lifts; table caches hold
        plain ints and stay valid across switches.
        """
        cached = self._tables.get("backend")
        bk = backend.active()
        if cached is None or cached[0] is not bk:
            cached = (bk, bk.wrap(self.p))
            self._tables["backend"] = cached
        return cached[1]

    def _jac_double(self, P1: tuple[int, int, int]) -> tuple[int, int, int]:
        X1, Y1, Z1 = P1
        if Z1 == 0 or Y1 == 0:
            return _JAC_INFINITY
        p = self._field()
        XX = X1 * X1 % p
        YY = Y1 * Y1 % p
        YYYY = YY * YY % p
        ZZ = Z1 * Z1 % p
        S = 2 * ((X1 + YY) * (X1 + YY) - XX - YYYY) % p
        if self.a % p == p - 3:
            M = 3 * (X1 - ZZ) * (X1 + ZZ) % p
        else:
            M = (3 * XX + self.a * ZZ * ZZ) % p
        X3 = (M * M - 2 * S) % p
        Y3 = (M * (S - X3) - 8 * YYYY) % p
        Z3 = ((Y1 + Z1) * (Y1 + Z1) - YY - ZZ) % p
        return X3, Y3, Z3

    def _jac_add(self, P1: tuple[int, int, int],
                 P2: tuple[int, int, int]) -> tuple[int, int, int]:
        X1, Y1, Z1 = P1
        X2, Y2, Z2 = P2
        if Z1 == 0:
            return P2
        if Z2 == 0:
            return P1
        p = self._field()
        Z1Z1 = Z1 * Z1 % p
        Z2Z2 = Z2 * Z2 % p
        U1 = X1 * Z2Z2 % p
        U2 = X2 * Z1Z1 % p
        S1 = Y1 * Z2 * Z2Z2 % p
        S2 = Y2 * Z1 * Z1Z1 % p
        H = (U2 - U1) % p
        r = (S2 - S1) % p
        if H == 0:
            if r == 0:
                return self._jac_double(P1)
            return _JAC_INFINITY
        I = 4 * H * H % p
        J = H * I % p
        r2 = 2 * r % p
        V = U1 * I % p
        X3 = (r2 * r2 - J - 2 * V) % p
        Y3 = (r2 * (V - X3) - 2 * S1 * J) % p
        Z3 = ((Z1 + Z2) * (Z1 + Z2) - Z1Z1 - Z2Z2) * H % p
        return X3, Y3, Z3

    def _jac_add_affine(self, P1: tuple[int, int, int],
                        x2: int, y2: int) -> tuple[int, int, int]:
        """Mixed addition: Jacobian ``P1`` plus affine ``(x2, y2)``."""
        X1, Y1, Z1 = P1
        if Z1 == 0:
            return x2, y2, 1
        p = self._field()
        Z1Z1 = Z1 * Z1 % p
        U2 = x2 * Z1Z1 % p
        S2 = y2 * Z1 * Z1Z1 % p
        H = (U2 - X1) % p
        r = (S2 - Y1) % p
        if H == 0:
            if r == 0:
                return self._jac_double(P1)
            return _JAC_INFINITY
        HH = H * H % p
        I = 4 * HH % p
        J = H * I % p
        r2 = 2 * r % p
        V = X1 * I % p
        X3 = (r2 * r2 - J - 2 * V) % p
        Y3 = (r2 * (V - X3) - 2 * Y1 * J) % p
        Z3 = ((Z1 + H) * (Z1 + H) - Z1Z1 - HH) % p
        return X3, Y3, Z3

    def _jac_to_point(self, P1: tuple[int, int, int]) -> Point:
        """Convert back to affine — the scalar mult's single inversion."""
        X1, Y1, Z1 = P1
        if Z1 == 0:
            return Point.infinity()
        p = self._field()
        z_inv = modinv(int(Z1), self.p)
        zz_inv = z_inv * z_inv % p
        return Point(int(X1 * zz_inv % p), int(Y1 * zz_inv * z_inv % p))

    def _batch_to_affine(
        self, points: list[tuple[int, int, int]],
    ) -> list[tuple[int, int]]:
        """Convert Jacobian points to affine with one shared inversion.

        The Montgomery trick itself lives in the backend's
        ``batch_modinv`` (invert the product of all Z's, peel off the
        individual inverses with two multiplications each); this wrapper
        applies the inverses to the coordinates.  ``points`` must not
        contain the identity.
        """
        p = self._field()
        z_invs = backend.active().batch_modinv(
            [Z for _, _, Z in points], self.p)
        affine: list[tuple[int, int]] = [(0, 0)] * len(points)
        for i, ((X, Y, _), z_inv) in enumerate(zip(points, z_invs)):
            zz_inv = z_inv * z_inv % p
            affine[i] = (int(X * zz_inv % p), int(Y * zz_inv * z_inv % p))
        return affine

    # -- precomputation ----------------------------------------------------

    def precompute_table(self, point: Point,
                         window: int = _TABLE_WINDOW) -> PointTable:
        """Build the wNAF odd-multiple table for a long-lived point.

        Verification against a stored per-user key calls this once and
        reuses the result (see ``SignatureScheme.precompute`` and the
        protocol layer's key-table caches).
        """
        if point.is_infinity:
            raise ValueError("cannot precompute a table for the identity")
        jac = (point.x, point.y, 1)
        twice = self._jac_double(jac)
        odd_jac = [jac]
        for _ in range((1 << (window - 2)) - 1):
            odd_jac.append(self._jac_add(odd_jac[-1], twice))
        return PointTable(point, window, self._batch_to_affine(odd_jac))

    def precompute_verify_key(self, verify_key: bytes) -> PointTable | None:
        """:meth:`precompute_table` for a SEC1-encoded verify key.

        The shared body of the EC schemes' ``precompute``: decodes the
        key, rejects malformed encodings and the identity with ``None``
        (mirroring ``verify``'s tolerance), and tags the table with the
        exact key bytes so a mispaired table fails closed at verify time.
        """
        try:
            q = self.decode_point(verify_key)
        except ValueError:
            return None
        if q.is_infinity:
            return None
        table = self.precompute_table(q)
        table.verify_key = verify_key
        return table

    def _generator_table(self) -> PointTable:
        """Cached wNAF table for ``G`` (the Shamir ``u1`` side)."""
        table = self._tables.get("g-wnaf")
        if table is None:
            table = self.precompute_table(self.generator, _TABLE_WINDOW)
            self._tables["g-wnaf"] = table
        return table

    def _comb_table(self) -> list[list[tuple[int, int]]]:
        """Cached fixed-base comb for ``G``.

        ``comb[j][d-1] = (d << (w*j)) * G`` in affine coordinates, for
        every ``w``-bit window position ``j`` and digit ``d in 1..2^w-1``.
        A fixed-base multiplication then needs no doublings at all — one
        mixed addition per non-zero scalar digit (~``256/w`` on average).
        """
        comb = self._tables.get("g-comb")
        if comb is None:
            w = _COMB_WINDOW
            windows = (self.n.bit_length() + w - 1) // w
            flat: list[tuple[int, int, int]] = []
            base = (self.gx, self.gy, 1)
            for _ in range(windows):
                entry = base
                for _ in range((1 << w) - 1):
                    flat.append(entry)
                    entry = self._jac_add(entry, base)
                base = entry  # (2^w) * previous base
            affine = self._batch_to_affine(flat)
            per = (1 << w) - 1
            comb = [affine[j * per:(j + 1) * per] for j in range(windows)]
            self._tables["g-comb"] = comb
        return comb

    # -- scalar multiplication --------------------------------------------

    def multiply_base(self, scalar: int) -> Point:
        """Fixed-base multiplication ``scalar * G`` via the comb table."""
        scalar %= self.n
        if scalar == 0:
            return Point.infinity()
        comb = self._comb_table()
        w = _COMB_WINDOW
        mask = (1 << w) - 1
        acc = _JAC_INFINITY
        j = 0
        while scalar:
            digit = scalar & mask
            if digit:
                x2, y2 = comb[j][digit - 1]
                acc = self._jac_add_affine(acc, x2, y2)
            scalar >>= w
            j += 1
        return self._jac_to_point(acc)

    def _multiply_wnaf(self, scalar: int, point: Point,
                       table: PointTable | None = None) -> Point:
        """wNAF scalar multiplication of an arbitrary point."""
        if table is None:
            table = self.precompute_table(point, _WNAF_WINDOW)
        digits = _wnaf_digits(scalar, table.window)
        odd = table.odd
        p = self.p
        acc = _JAC_INFINITY
        for digit in reversed(digits):
            acc = self._jac_double(acc)
            if digit:
                acc = self._jac_add_affine(acc, *_signed_entry(digit, odd, p))
        return self._jac_to_point(acc)

    def multiply(self, scalar: int, point: Point,
                 table: PointTable | None = None) -> Point:
        """Scalar multiplication ``scalar * point`` (Jacobian fast path).

        The generator is routed through the fixed-base comb (keygen and
        signing always multiply ``G``); other points run windowed-NAF with
        an on-the-fly odd-multiple table, or a caller-provided
        :class:`PointTable` built by :meth:`precompute_table`.
        Agrees with :meth:`multiply_affine` on every input (property-tested
        in ``tests/crypto/test_ec_fast.py``).
        """
        scalar %= self.n
        if scalar == 0 or point.is_infinity:
            return Point.infinity()
        if table is None:
            if point.x == self.gx and point.y == self.gy:
                return self.multiply_base(scalar)
        elif table.point != point:
            raise ValueError("table was precomputed for a different point")
        return self._multiply_wnaf(scalar, point, table)

    def multi_multiply(self, terms, tables=None) -> Point:
        """Interleaved multi-scalar multiplication ``sum_i k_i * P_i``.

        The Straus trick generalised to ``m`` terms: every scalar is
        recoded to wNAF and all terms share **one** doubling chain, so a
        batch of ``m`` multiplications costs ~256 doublings total (not
        per term) plus one table addition per non-zero digit of any
        scalar.  This is the kernel behind randomized Schnorr batch
        verification, where ``2k + 1`` terms collapse ``k`` signature
        checks into one pass.

        ``terms`` is a sequence of ``(scalar, point)`` pairs; ``tables``
        (optional, parallel) supplies a warm :class:`PointTable` per
        term.  Terms without a table get an on-the-fly width-5 window
        built in Jacobian coordinates; all such builds share a *single*
        batch inversion (Montgomery's trick), so the whole call performs
        two inversions total — one for the deferred table conversions,
        one for the final result — regardless of batch size.  The
        generator is served from its cached table automatically.

        Scalars may be **negative**: ``-k`` flips the signs of ``k``'s
        wNAF digits instead of reducing ``n - k`` to full width, so a
        short negative weight (the batch-verification shape ``-z_i *
        R_i`` with 128-bit ``z_i``) keeps its short digit string.
        """
        n = self.n
        p = self.p
        if tables is None:
            tables = (None,) * len(terms)
        elif len(tables) != len(terms):
            raise ValueError("tables must parallel terms")
        window_odd = (1 << (_WNAF_WINDOW - 2))
        resolved: list[list] = []  # [scalar, negative, window, odd]
        deferred: list[tuple[int, int]] = []  # (resolved slot, flat offset)
        flat: list[tuple[int, int, int]] = []
        for (scalar, point), table in zip(terms, tables):
            negative = scalar < 0
            k = (-scalar if negative else scalar) % n
            if k == 0 or point.is_infinity:
                continue
            if table is not None:
                if table.point != point:
                    raise ValueError(
                        "table was precomputed for a different point")
                window, odd = table.window, table.odd
            elif point.x == self.gx and point.y == self.gy:
                g_table = self._generator_table()
                window, odd = g_table.window, g_table.odd
            else:
                # Build the odd multiples in Jacobian coordinates now,
                # convert to affine later in one shared inversion.
                jac = (point.x, point.y, 1)
                twice = self._jac_double(jac)
                deferred.append((len(resolved), len(flat)))
                flat.append(jac)
                for _ in range(window_odd - 1):
                    flat.append(self._jac_add(flat[-1], twice))
                window, odd = _WNAF_WINDOW, None
            resolved.append([k, negative, window, odd])
        if not resolved:
            return Point.infinity()
        if flat:
            affine = self._batch_to_affine(flat)
            for slot, offset in deferred:
                resolved[slot][3] = affine[offset:offset + window_odd]
        # Recode every scalar and build the addition schedule in one
        # pass: digit position -> the affine entries to mix-add there,
        # with table lookups and digit signs already resolved.  Zero
        # runs are skipped arithmetically (``k & -k`` isolates the
        # lowest set bit) rather than one Python iteration per bit —
        # with ``2k + 1`` scalars per signature batch the recoding
        # would otherwise rival the group arithmetic itself.
        schedule: dict[int, list[tuple[int, int]]] = {}
        setdefault = schedule.setdefault
        top = 0
        for k, negative, window, odd in resolved:
            full = 1 << window
            half = full >> 1
            mask = full - 1
            position = 0
            while k:
                if k & 1:
                    digit = k & mask
                    if digit >= half:
                        digit -= full
                    k = (k - digit) >> window
                    x2, y2 = odd[(digit if digit > 0 else -digit) >> 1]
                    if (digit < 0) ^ negative:  # a negative term flips signs
                        y2 = p - y2
                    setdefault(position, []).append((x2, y2))
                    if position > top:
                        top = position
                    position += window
                else:
                    run = (k & -k).bit_length() - 1
                    k >>= run
                    position += run
        jac_double = self._jac_double
        jac_add_affine = self._jac_add_affine
        get = schedule.get
        acc = _JAC_INFINITY
        for i in range(top, -1, -1):
            acc = jac_double(acc)
            for x2, y2 in get(i, ()):
                acc = jac_add_affine(acc, x2, y2)
        return self._jac_to_point(acc)

    def shamir_multiply(self, u1: int, u2: int, point: Point | None = None,
                        table: PointTable | None = None) -> Point:
        """Shamir's trick: ``u1*G + u2*Q`` in one interleaved pass.

        The doubling chain is shared between both scalars, so the combined
        multiplication costs one chain of ~256 doublings plus one table
        addition per non-zero wNAF digit of either scalar — roughly the
        price of a single scalar multiplication.  ``Q`` is given either as
        a point (a throwaway window table is built) or as a warm
        :class:`PointTable` from :meth:`precompute_table`.
        """
        u1 %= self.n
        u2 %= self.n
        if table is None:
            if point is None:
                raise ValueError("shamir_multiply needs a point or a table")
            if point.is_infinity:
                raise ValueError("Q must not be the identity")
            table = self.precompute_table(point, _WNAF_WINDOW)
        elif point is not None and table.point != point:
            raise ValueError("table was precomputed for a different point")
        if u2 == 0:
            return self.multiply_base(u1)
        if u1 == 0:
            return self._multiply_wnaf(u2, table.point, table)
        g_table = self._generator_table()
        d1 = _wnaf_digits(u1, g_table.window)
        d2 = _wnaf_digits(u2, table.window)
        length = max(len(d1), len(d2))
        d1 += [0] * (length - len(d1))
        d2 += [0] * (length - len(d2))
        g_odd = g_table.odd
        q_odd = table.odd
        p = self.p
        acc = _JAC_INFINITY
        for i in range(length - 1, -1, -1):
            acc = self._jac_double(acc)
            digit = d1[i]
            if digit:
                acc = self._jac_add_affine(
                    acc, *_signed_entry(digit, g_odd, p))
            digit = d2[i]
            if digit:
                acc = self._jac_add_affine(
                    acc, *_signed_entry(digit, q_odd, p))
        return self._jac_to_point(acc)

    # -- encodings ---------------------------------------------------------

    @property
    def coordinate_bytes(self) -> int:
        return (self.p.bit_length() + 7) // 8

    def encode_point(self, point: Point) -> bytes:
        """SEC1 compressed encoding (``02``/``03`` prefix + x coordinate).

        The identity encodes as a single zero byte, as in SEC1.
        """
        if point.is_infinity:
            return b"\x00"
        prefix = b"\x03" if point.y & 1 else b"\x02"
        return prefix + point.x.to_bytes(self.coordinate_bytes, "big")

    def decode_point(self, data: bytes) -> Point:
        """Inverse of :func:`encode_point`; validates curve membership."""
        if data == b"\x00":
            return Point.infinity()
        if len(data) != 1 + self.coordinate_bytes or data[0] not in (2, 3):
            raise ValueError("malformed compressed point")
        x = int.from_bytes(data[1:], "big")
        if x >= self.p:
            raise ValueError("x coordinate out of field range")
        p = self.p
        rhs = (x * x * x + self.a * x + self.b) % p
        if p & 3 == 3:
            # One modexp instead of tonelli_shanks' Legendre check plus
            # root: candidate y = rhs^((p+1)/4), validated by squaring.
            # Decompression runs on every signature verification (the
            # commitment R rides the wire compressed), so this halves
            # the decode cost on the protocol hot path.
            y = backend.active().modexp(rhs, (p + 1) >> 2, p)
            if y * y % p != rhs:
                raise ValueError("x is not on the curve")
        else:
            y = tonelli_shanks(rhs, p)
        if (y & 1) != (data[0] & 1):
            y = self.p - y
        point = Point(x, y)
        if not self.is_on_curve(point):
            raise ValueError("decoded point not on curve")
        return point


#: NIST P-256 (secp256r1).  Constants verified against the curve equation
#: and the base-point order in ``tests/crypto/test_ec.py``.
P256 = Curve(
    name="P-256",
    p=0xffffffff00000001000000000000000000000000ffffffffffffffffffffffff,
    a=-3,
    b=0x5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b,
    gx=0x6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296,
    gy=0x4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5,
    n=0xffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551,
)
