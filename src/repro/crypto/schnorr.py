"""EC-Schnorr signatures (key-prefixed variant).

The third signature back-end.  Schnorr signatures have a simpler security
argument than (EC)DSA and sign slightly faster (no modular inversion);
the benchmark suite uses this to show the identification protocol's cost
profile is dominated by the signature back-end, not the sketch machinery.

The scheme is the standard Fiat-Shamir transform of the Schnorr
identification protocol:

* commitment ``R = k*G``;
* challenge  ``e = H(R || Q || m)`` (key-prefixed, BIP-340 style, which
  blocks related-key attacks);
* response   ``s = k + e*d mod n``;
* signature  ``(R, s)``; verify checks ``s*G == R + e*Q``.
"""

from __future__ import annotations

from repro.crypto.ec import Curve, P256, PointTable
from repro.crypto.hashing import hash_concat
from repro.crypto.prng import HmacDrbg
from repro.crypto.signatures import KeyPair, SignatureScheme
from repro.exceptions import SignatureError


class EcSchnorr(SignatureScheme):
    """Key-prefixed EC-Schnorr over a prime-order curve."""

    def __init__(self, curve: Curve = P256, name: str | None = None) -> None:
        self.curve = curve
        self.name = name or f"schnorr-{curve.name.lower()}"
        self._n_len = (curve.n.bit_length() + 7) // 8

    def _challenge(self, commitment: bytes, verify_key: bytes, message: bytes) -> int:
        digest = hash_concat([commitment, verify_key, message], label=b"schnorr-e")
        return int.from_bytes(digest, "big") % self.curve.n

    def keygen_from_seed(self, seed: bytes) -> KeyPair:
        """Derive ``d`` (private) and ``Q = d*G`` (public) from ``seed``."""
        drbg = HmacDrbg(seed, personalization=b"schnorr-keygen")
        d = drbg.random_int_range(1, self.curve.n - 1)
        q = self.curve.multiply(d, self.curve.generator)
        return KeyPair(
            signing_key=d.to_bytes(self._n_len, "big"),
            verify_key=self.curve.encode_point(q),
        )

    def sign(self, signing_key: bytes, message: bytes) -> bytes:
        """Produce a key-prefixed Schnorr signature ``(R, s)``."""
        curve = self.curve
        if len(signing_key) != self._n_len:
            raise SignatureError(
                f"signing key must be {self._n_len} bytes, got {len(signing_key)}"
            )
        d = int.from_bytes(signing_key, "big")
        if not (1 <= d < curve.n):
            raise SignatureError("signing key out of range")
        verify_key = curve.encode_point(curve.multiply(d, curve.generator))
        # Deterministic nonce bound to (key, message).
        drbg = HmacDrbg(signing_key + message, personalization=b"schnorr-nonce")
        while True:
            k = drbg.random_int(curve.n)
            if k == 0:
                continue
            commitment = curve.encode_point(curve.multiply(k, curve.generator))
            e = self._challenge(commitment, verify_key, message)
            s = (k + e * d) % curve.n
            if s == 0:
                continue
            return commitment + s.to_bytes(self._n_len, "big")

    def precompute(self, verify_key: bytes) -> PointTable | None:
        """Build the wNAF window table for a long-lived verify key.

        Returns ``None`` for a malformed key (mirroring :meth:`verify`'s
        tolerance); see :meth:`verify`'s ``table`` parameter.
        """
        return self.curve.precompute_verify_key(verify_key)

    def verify(self, verify_key: bytes, message: bytes, signature: bytes,
               table: PointTable | None = None) -> bool:
        """Check ``s*G == R + e*Q``; ``False`` on any malformation.

        The check is rearranged to ``s*G + (n-e)*Q == R`` so both scalar
        multiplications run as one Shamir double-scalar pass; a ``table``
        from :meth:`precompute` serves ``Q`` from warm precomputation.  A
        table built for a *different* key fails closed.
        """
        curve = self.curve
        point_len = 1 + curve.coordinate_bytes
        if len(signature) != point_len + self._n_len:
            return False
        commitment_bytes = signature[:point_len]
        s = int.from_bytes(signature[point_len:], "big")
        if not (0 < s < curve.n):
            return False
        if table is not None and table.verify_key != verify_key:
            return False
        try:
            commitment = curve.decode_point(commitment_bytes)
            if table is None:
                q = curve.decode_point(verify_key)
            else:
                q = table.point
        except ValueError:
            return False
        if q.is_infinity:
            return False
        e = self._challenge(commitment_bytes, verify_key, message)
        return curve.shamir_multiply(s, curve.n - e, q, table) == commitment

    def verify_reference(self, verify_key: bytes, message: bytes,
                         signature: bytes) -> bool:
        """The original affine-arithmetic verify, retained verbatim.

        Checks ``s*G == R + e*Q`` with two independent affine
        double-and-add multiplications (one inversion per group op);
        the cold baseline for benchmarks and parity tests.
        """
        curve = self.curve
        point_len = 1 + curve.coordinate_bytes
        if len(signature) != point_len + self._n_len:
            return False
        commitment_bytes = signature[:point_len]
        s = int.from_bytes(signature[point_len:], "big")
        if not (0 < s < curve.n):
            return False
        try:
            commitment = curve.decode_point(commitment_bytes)
            q = curve.decode_point(verify_key)
        except ValueError:
            return False
        if q.is_infinity:
            return False
        e = self._challenge(commitment_bytes, verify_key, message)
        lhs = curve.multiply_affine(s, curve.generator)
        rhs = curve.add(commitment, curve.multiply_affine(e, q))
        return lhs == rhs
