"""EC-Schnorr signatures (key-prefixed variant).

The third signature back-end.  Schnorr signatures have a simpler security
argument than (EC)DSA and sign slightly faster (no modular inversion);
the benchmark suite uses this to show the identification protocol's cost
profile is dominated by the signature back-end, not the sketch machinery.

The scheme is the standard Fiat-Shamir transform of the Schnorr
identification protocol:

* commitment ``R = k*G``;
* challenge  ``e = H(R || Q || m)`` (key-prefixed, BIP-340 style, which
  blocks related-key attacks);
* response   ``s = k + e*d mod n``;
* signature  ``(R, s)``; verify checks ``s*G == R + e*Q``.

Schnorr's linear verification equation admits **randomized batch
verification**: ``k`` checks ``s_i*G == R_i + e_i*Q_i`` collapse into

.. math:: (\\sum_i z_i s_i)\\,G - \\sum_i z_i R_i - \\sum_i z_i e_i Q_i = O

for fresh random 128-bit weights ``z_i`` — one multi-scalar
multiplication (:meth:`~repro.crypto.ec.Curve.multi_multiply`) instead
of ``k`` Shamir passes.  The weights are what make the aggregate sound:
without them an adversary could submit two *invalid* signatures whose
errors cancel in the sum (``s_1 + δ`` and ``s_2 - δ``); with independent
unpredictable ``z_i`` any invalid member breaks the aggregate except
with probability ~``2^-128``.  A failed aggregate falls back to
bisection, so the bad indices are isolated and honest batchmates are
never rejected (see :meth:`EcSchnorr.verify_batch`).
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.crypto.ec import Curve, P256, Point, PointTable
from repro.crypto.hashing import hash_concat
from repro.crypto.prng import HmacDrbg
from repro.crypto.signatures import KeyPair, SignatureScheme, VerifyItem
from repro.exceptions import SignatureError


def _batch_weight() -> int:
    """A fresh nonzero 128-bit batch-verification weight.

    Drawn from OS entropy *per batch member per check* — the soundness
    argument needs weights the submitter cannot predict, so these must
    not come from the library's deterministic DRBGs.  (Module-level so
    tests can pin weights to demonstrate the cancellation attack the
    randomization exists to stop.)
    """
    return int.from_bytes(os.urandom(16), "big") | 1


class EcSchnorr(SignatureScheme):
    """Key-prefixed EC-Schnorr over a prime-order curve."""

    def __init__(self, curve: Curve = P256, name: str | None = None) -> None:
        self.curve = curve
        self.name = name or f"schnorr-{curve.name.lower()}"
        self._n_len = (curve.n.bit_length() + 7) // 8

    def _challenge(self, commitment: bytes, verify_key: bytes, message: bytes) -> int:
        digest = hash_concat([commitment, verify_key, message], label=b"schnorr-e")
        return int.from_bytes(digest, "big") % self.curve.n

    def keygen_from_seed(self, seed: bytes) -> KeyPair:
        """Derive ``d`` (private) and ``Q = d*G`` (public) from ``seed``."""
        drbg = HmacDrbg(seed, personalization=b"schnorr-keygen")
        d = drbg.random_int_range(1, self.curve.n - 1)
        q = self.curve.multiply(d, self.curve.generator)
        return KeyPair(
            signing_key=d.to_bytes(self._n_len, "big"),
            verify_key=self.curve.encode_point(q),
        )

    def sign(self, signing_key: bytes, message: bytes) -> bytes:
        """Produce a key-prefixed Schnorr signature ``(R, s)``."""
        curve = self.curve
        if len(signing_key) != self._n_len:
            raise SignatureError(
                f"signing key must be {self._n_len} bytes, got {len(signing_key)}"
            )
        d = int.from_bytes(signing_key, "big")
        if not (1 <= d < curve.n):
            raise SignatureError("signing key out of range")
        verify_key = curve.encode_point(curve.multiply(d, curve.generator))
        # Deterministic nonce bound to (key, message).
        drbg = HmacDrbg(signing_key + message, personalization=b"schnorr-nonce")
        while True:
            k = drbg.random_int(curve.n)
            if k == 0:
                continue
            commitment = curve.encode_point(curve.multiply(k, curve.generator))
            e = self._challenge(commitment, verify_key, message)
            s = (k + e * d) % curve.n
            if s == 0:
                continue
            return commitment + s.to_bytes(self._n_len, "big")

    def precompute(self, verify_key: bytes) -> PointTable | None:
        """Build the wNAF window table for a long-lived verify key.

        Returns ``None`` for a malformed key (mirroring :meth:`verify`'s
        tolerance); see :meth:`verify`'s ``table`` parameter.
        """
        return self.curve.precompute_verify_key(verify_key)

    def verify(self, verify_key: bytes, message: bytes, signature: bytes,
               table: PointTable | None = None) -> bool:
        """Check ``s*G == R + e*Q``; ``False`` on any malformation.

        The check is rearranged to ``s*G + (n-e)*Q == R`` so both scalar
        multiplications run as one Shamir double-scalar pass; a ``table``
        from :meth:`precompute` serves ``Q`` from warm precomputation.  A
        table built for a *different* key fails closed.
        """
        curve = self.curve
        point_len = 1 + curve.coordinate_bytes
        if len(signature) != point_len + self._n_len:
            return False
        commitment_bytes = signature[:point_len]
        s = int.from_bytes(signature[point_len:], "big")
        if not (0 < s < curve.n):
            return False
        if table is not None and table.verify_key != verify_key:
            return False
        try:
            commitment = curve.decode_point(commitment_bytes)
            if table is None:
                q = curve.decode_point(verify_key)
            else:
                q = table.point
        except ValueError:
            return False
        if q.is_infinity:
            return False
        e = self._challenge(commitment_bytes, verify_key, message)
        return curve.shamir_multiply(s, curve.n - e, q, table) == commitment

    # -- randomized batch verification -----------------------------------

    def verify_batch(self, items: Sequence[VerifyItem],
                     tables: Sequence[PointTable | None] | None = None,
                     ) -> list[bool]:
        """Per-item verdicts via one randomized multi-scalar check.

        Structurally invalid members (bad length, ``s`` out of range,
        malformed points, mispaired tables) are rejected up front without
        touching the curve; the rest are aggregated under fresh random
        128-bit weights into a single
        :meth:`~repro.crypto.ec.Curve.multi_multiply` evaluation
        (``2k + 1`` terms for ``k`` members).  If the aggregate fails,
        the batch is **bisected** — each half re-checked with fresh
        weights — until the invalid indices are isolated, so one forged
        signature costs ~``log k`` extra group checks and never rejects
        an honest batchmate.  Exactly per-item-equivalent to
        :meth:`verify` (up to the ~``2^-128`` weight-collision bound).
        """
        curve = self.curve
        point_len = 1 + curve.coordinate_bytes
        if tables is None:
            tables = (None,) * len(items)
        elif len(tables) != len(items):
            raise ValueError("tables must parallel items")
        results = [False] * len(items)
        entries: list[tuple[int, Point, int, int, Point,
                            PointTable | None]] = []
        for idx, ((verify_key, message, signature), table) in enumerate(
                zip(items, tables)):
            if len(signature) != point_len + self._n_len:
                continue
            commitment_bytes = signature[:point_len]
            s = int.from_bytes(signature[point_len:], "big")
            if not (0 < s < curve.n):
                continue
            if table is not None and table.verify_key != verify_key:
                continue
            try:
                commitment = curve.decode_point(commitment_bytes)
                q = curve.decode_point(verify_key) if table is None \
                    else table.point
            except ValueError:
                continue
            if q.is_infinity:
                continue
            e = self._challenge(commitment_bytes, verify_key, message)
            entries.append((idx, commitment, s, e, q, table))
        if entries:
            self._settle(entries, results)
        return results

    def _aggregate_holds(self, entries) -> bool:
        """One weighted multi-scalar check over ``entries``.

        Evaluates ``(sum z_i s_i) G - sum z_i R_i - sum (z_i e_i) Q_i``
        and accepts iff it is the identity.  The ``R_i`` terms ride the
        short negative weights directly (128-bit digit strings); the
        ``Q_i`` scalars are full-width either way and use the warm
        per-key tables when present.
        """
        curve = self.curve
        n = curve.n
        weighted_s = 0
        terms: list[tuple[int, Point]] = []
        term_tables: list[PointTable | None] = []
        for _, commitment, s, e, q, table in entries:
            z = _batch_weight()
            weighted_s = (weighted_s + z * s) % n
            terms.append((-z, commitment))
            term_tables.append(None)
            terms.append((-(z * e % n), q))
            term_tables.append(table)
        terms.append((weighted_s, curve.generator))
        term_tables.append(None)
        return curve.multi_multiply(terms, term_tables).is_infinity

    def _settle(self, entries, results: list[bool]) -> None:
        """Recursive bisection: mark verdicts for ``entries`` in place."""
        if len(entries) == 1:
            idx, commitment, s, e, q, table = entries[0]
            results[idx] = self.curve.shamir_multiply(
                s, self.curve.n - e, q, table) == commitment
            return
        if self._aggregate_holds(entries):
            for entry in entries:
                results[entry[0]] = True
            return
        mid = len(entries) // 2
        self._settle(entries[:mid], results)
        self._settle(entries[mid:], results)

    def verify_reference(self, verify_key: bytes, message: bytes,
                         signature: bytes) -> bool:
        """The original affine-arithmetic verify, retained verbatim.

        Checks ``s*G == R + e*Q`` with two independent affine
        double-and-add multiplications (one inversion per group op);
        the cold baseline for benchmarks and parity tests.
        """
        curve = self.curve
        point_len = 1 + curve.coordinate_bytes
        if len(signature) != point_len + self._n_len:
            return False
        commitment_bytes = signature[:point_len]
        s = int.from_bytes(signature[point_len:], "big")
        if not (0 < s < curve.n):
            return False
        try:
            commitment = curve.decode_point(commitment_bytes)
            q = curve.decode_point(verify_key)
        except ValueError:
            return False
        if q.is_infinity:
            return False
        e = self._challenge(commitment_bytes, verify_key, message)
        lhs = curve.multiply_affine(s, curve.generator)
        rhs = curve.add(commitment, curve.multiply_affine(e, q))
        return lhs == rhs
