"""The Digital Signature Algorithm (DSA), implemented from scratch.

Table II of the paper lists DSA as the signature scheme used by the
identification protocol.  This module provides:

* :class:`DsaGroup` — the public parameters ``(p, q, g)`` with ``q | p - 1``
  and ``g`` generating the order-``q`` subgroup of ``Z_p^*``;
* :func:`generate_group` — FIPS-186-style parameter generation using
  probable primes (Miller-Rabin), deterministic from a DRBG seed;
* :class:`Dsa` — keygen / sign / verify implementing the
  :class:`~repro.crypto.signatures.SignatureScheme` interface.

Nonces are derived deterministically from the key and message (in the
spirit of RFC 6979): a repeated or biased nonce leaks the private key, and
a reproduction harness must not depend on OS entropy anyway.

Pre-generated groups (512-, 1024- and 2048-bit ``p``) live in
:mod:`repro.crypto.dsa_groups`; generating a 2048-bit group takes seconds in
pure Python, which would be wasteful at import time of every test run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import numbertheory as nt
from repro.crypto.hashing import sha256
from repro.crypto.prng import HmacDrbg
from repro.crypto.signatures import KeyPair, SignatureScheme
from repro.exceptions import SignatureError


@dataclass(frozen=True)
class DsaGroup:
    """DSA domain parameters ``(p, q, g)``.

    ``p`` is the field prime, ``q`` the prime order of the subgroup
    (``q | p - 1``), and ``g`` a generator of that subgroup.
    """

    p: int
    q: int
    g: int

    def validate(self) -> None:
        """Check the structural invariants; raises :class:`ValueError`.

        Intended for tests and for callers loading parameters from
        untrusted sources — an attacker-supplied weak group breaks DSA.
        """
        if not nt.is_probable_prime(self.p):
            raise ValueError("p is not prime")
        if not nt.is_probable_prime(self.q):
            raise ValueError("q is not prime")
        if (self.p - 1) % self.q != 0:
            raise ValueError("q does not divide p - 1")
        if not (1 < self.g < self.p):
            raise ValueError("g out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise ValueError("g does not have order q")
        if self.g == 1:
            raise ValueError("g is the identity")

    @property
    def p_bits(self) -> int:
        return self.p.bit_length()

    @property
    def q_bits(self) -> int:
        return self.q.bit_length()


def generate_group(p_bits: int, q_bits: int, seed: bytes) -> DsaGroup:
    """Generate DSA domain parameters deterministically from ``seed``.

    First draws the subgroup order ``q`` (a ``q_bits`` probable prime),
    then searches for ``p = q*m + 1`` of exactly ``p_bits`` bits, then
    derives a subgroup generator.
    """
    if q_bits >= p_bits:
        raise ValueError("q_bits must be smaller than p_bits")
    drbg = HmacDrbg(seed, personalization=b"dsa-paramgen")
    q = nt.generate_prime(q_bits, drbg)
    p = nt.generate_prime_with_factor(p_bits, q, drbg)
    g = nt.find_group_generator(p, q, drbg)
    return DsaGroup(p=p, q=q, g=g)


def _int_to_fixed_bytes(value: int, length: int) -> bytes:
    return value.to_bytes(length, "big")


class Dsa(SignatureScheme):
    """DSA over a fixed :class:`DsaGroup`.

    Encodings:

    * signing key — the private exponent ``x`` as ``q``-sized big-endian
      bytes;
    * verify key  — the public element ``y = g^x mod p`` as ``p``-sized
      big-endian bytes;
    * signature   — ``r || s``, each as ``q``-sized big-endian bytes.
    """

    #: Digit width of the fixed-base exponentiation tables (``g`` and
    #: precomputed per-key ``y``); 5 bits ≈ 5x over builtin ``pow`` for a
    #: 1024-bit modulus at a few-ms one-time build cost.
    EXP_WINDOW = 5

    def __init__(self, group: DsaGroup, name: str | None = None) -> None:
        self.group = group
        self.name = name or f"dsa-{group.p_bits}"
        self._q_len = (group.q.bit_length() + 7) // 8
        self._p_len = (group.p.bit_length() + 7) // 8
        self._g_exp: nt.FixedBaseExp | None = None  # built on first use

    def _generator_exp(self) -> nt.FixedBaseExp:
        """Cached fixed-base table for ``g`` (keygen, signing, ``u1``)."""
        if self._g_exp is None:
            self._g_exp = nt.FixedBaseExp(
                self.group.g, self.group.p, self.group.q.bit_length(),
                window=self.EXP_WINDOW,
            )
        return self._g_exp

    # -- helpers ---------------------------------------------------------

    def _hash_to_zq(self, message: bytes) -> int:
        """Hash a message into ``Z_q`` (leftmost-bits convention of FIPS 186)."""
        digest = sha256(message)
        value = int.from_bytes(digest, "big")
        shift = max(0, 8 * len(digest) - self.group.q.bit_length())
        return (value >> shift) % self.group.q

    def _nonce(self, x: int, h: int) -> int:
        """Deterministic per-message nonce ``k`` in ``[1, q-1]``.

        Derived from the private key and message hash through an HMAC-DRBG,
        mirroring RFC 6979's goal: unique per (key, message), unpredictable
        without the key, and bias-free (rejection sampling).
        """
        seed = (_int_to_fixed_bytes(x, self._q_len)
                + _int_to_fixed_bytes(h, self._q_len))
        drbg = HmacDrbg(seed, personalization=b"dsa-nonce")
        while True:
            k = drbg.random_int(self.group.q)
            if k != 0:
                return k

    # -- SignatureScheme interface ---------------------------------------

    def keygen_from_seed(self, seed: bytes) -> KeyPair:
        """Derive ``x`` (private) and ``y = g^x`` (public) from ``seed``."""
        drbg = HmacDrbg(seed, personalization=b"dsa-keygen")
        x = drbg.random_int_range(1, self.group.q - 1)
        y = self._generator_exp().pow(x)
        return KeyPair(
            signing_key=_int_to_fixed_bytes(x, self._q_len),
            verify_key=_int_to_fixed_bytes(y, self._p_len),
        )

    def sign(self, signing_key: bytes, message: bytes) -> bytes:
        """Produce a DSA signature ``(r, s)`` on ``message``."""
        if len(signing_key) != self._q_len:
            raise SignatureError(
                f"signing key must be {self._q_len} bytes, got {len(signing_key)}"
            )
        group = self.group
        x = int.from_bytes(signing_key, "big")
        if not (1 <= x < group.q):
            raise SignatureError("signing key out of range")
        h = self._hash_to_zq(message)
        # The nonce loop re-derives on the (cryptographically negligible)
        # event r == 0 or s == 0, as FIPS 186 requires.
        counter = 0
        g_exp = self._generator_exp()
        while True:
            k = self._nonce(x, (h + counter) % group.q)
            r = g_exp.pow(k) % group.q
            if r == 0:
                counter += 1
                continue
            k_inv = nt.modinv(k, group.q)
            s = k_inv * (h + x * r) % group.q
            if s == 0:
                counter += 1
                continue
            return (_int_to_fixed_bytes(r, self._q_len)
                    + _int_to_fixed_bytes(s, self._q_len))

    def precompute(self, verify_key: bytes) -> nt.FixedBaseExp | None:
        """Build the fixed-base exponentiation table for a verify key.

        Key validation (range and subgroup membership) happens here, once,
        so table-backed verifies skip the per-call ``y^q mod p`` check.
        Returns ``None`` for a malformed key (mirroring :meth:`verify`'s
        tolerance).
        """
        group = self.group
        if len(verify_key) != self._p_len:
            return None
        y = int.from_bytes(verify_key, "big")
        if not (1 < y < group.p) or nt.modexp(y, group.q, group.p) != 1:
            return None
        return nt.FixedBaseExp(y, group.p, group.q.bit_length(),
                               window=self.EXP_WINDOW)

    def verify(self, verify_key: bytes, message: bytes, signature: bytes,
               table: nt.FixedBaseExp | None = None) -> bool:
        """Check a DSA signature; returns ``False`` on any malformation.

        ``u1`` is raised over the cached generator table; ``u2`` over the
        per-key ``table`` when one is supplied (see :meth:`precompute`),
        falling back to builtin ``pow`` cold.  A table built for a
        *different* key fails closed.
        """
        group = self.group
        if len(signature) != 2 * self._q_len or len(verify_key) != self._p_len:
            return False
        r = int.from_bytes(signature[: self._q_len], "big")
        s = int.from_bytes(signature[self._q_len:], "big")
        if not (0 < r < group.q and 0 < s < group.q):
            return False
        y = int.from_bytes(verify_key, "big")
        if table is None:
            if not (1 < y < group.p) or nt.modexp(y, group.q, group.p) != 1:
                return False
        elif table.base != y:
            return False
        h = self._hash_to_zq(message)
        w = nt.modinv(s, group.q)
        u1 = h * w % group.q
        u2 = r * w % group.q
        y_u2 = table.pow(u2) if table is not None else nt.modexp(y, u2, group.p)
        v = (self._generator_exp().pow(u1) * y_u2) % group.p % group.q
        return v == r

    def verify_reference(self, verify_key: bytes, message: bytes,
                         signature: bytes) -> bool:
        """The original verify, retained verbatim: two builtin ``pow`` calls.

        The cold baseline the fixed-base-table path is benchmarked and
        parity-tested against.
        """
        group = self.group
        if len(signature) != 2 * self._q_len or len(verify_key) != self._p_len:
            return False
        y = int.from_bytes(verify_key, "big")
        r = int.from_bytes(signature[: self._q_len], "big")
        s = int.from_bytes(signature[self._q_len:], "big")
        if not (0 < r < group.q and 0 < s < group.q):
            return False
        if not (1 < y < group.p) or pow(y, group.q, group.p) != 1:
            return False
        h = self._hash_to_zq(message)
        w = nt.modinv(s, group.q)
        u1 = h * w % group.q
        u2 = r * w % group.q
        v = (pow(group.g, u1, group.p) * pow(y, u2, group.p)) % group.p % group.q
        return v == r
