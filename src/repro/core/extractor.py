"""The succinct fuzzy extractor (paper Section IV-C).

Generic construction from the robust secure sketch plus a strong extractor:

* ``Gen(x)``: draw a seed ``r``; compute the robust sketch ``(s, h)``;
  output ``R = Ext(x; r)`` and helper data ``P = (s, h, r)``.
* ``Rep(y, P)``: recover ``x' = Rec(y, (s, h))``; output ``R = Ext(x'; r)``.

``R`` is the string the identification protocol turns into a signing key —
the paper's whole point is that ``R`` (and therefore the private key) is
*never stored*; only ``P`` is, and ``P`` leaks at most ``n log2(ka)`` bits
of the template (Theorem 3).

The helper data here also records the extractor seed ``r``.  The paper's
robust transform hashes ``(x, s)`` only; the optional ``bind_seed`` flag
additionally binds ``r`` into the tag, closing the (paper-acknowledged,
Boyen-et-al.-style) gap where an active adversary swaps the seed to make
the device derive a different key.  The default follows the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.numberline import IntArray
from repro.core.params import SystemParams
from repro.core.robust import RobustSketchValue
from repro.core.sketch import ChebyshevSketch
from repro.crypto.extractors import StrongExtractor, default_extractor
from repro.crypto.hashing import constant_time_equal, encode_int_vector, hash_concat
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, TamperDetectedError

_TAG_LABEL = b"repro-fuzzy-extractor-v1"


@dataclass(frozen=True)
class HelperData:
    """The public helper data ``P = (s, h, r)``.

    ``movements`` and ``tag`` form the robust sketch; ``seed`` is the
    strong-extractor seed ``r``.  Everything here is public by design —
    security rests on Theorem 3 (residual min-entropy) and Definition 6
    (extractor output close to uniform given ``P``).
    """

    movements: np.ndarray
    tag: bytes
    seed: bytes

    def sketch_value(self) -> RobustSketchValue:
        """The robust-sketch component ``(s, h)`` of this helper data."""
        return RobustSketchValue(movements=self.movements, tag=self.tag)

    def storage_bytes(self) -> int:
        """Wire size of the helper data."""
        return 8 * len(self.movements) + len(self.tag) + len(self.seed)

    # -- serialisation (used by the protocol layer) -------------------------------

    def to_bytes(self) -> bytes:
        """Canonical wire encoding: lengths-prefixed (movements, tag, seed)."""
        body = encode_int_vector(self.movements)
        return b"".join([
            len(body).to_bytes(8, "big"), body,
            len(self.tag).to_bytes(2, "big"), self.tag,
            len(self.seed).to_bytes(2, "big"), self.seed,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "HelperData":
        """Inverse of :meth:`to_bytes`; raises ``ParameterError`` on junk."""
        try:
            offset = 0
            body_len = int.from_bytes(data[offset: offset + 8], "big")
            offset += 8
            body = data[offset: offset + body_len]
            if len(body) != body_len:
                raise ValueError("truncated movements")
            offset += body_len
            tag_len = int.from_bytes(data[offset: offset + 2], "big")
            offset += 2
            tag = data[offset: offset + tag_len]
            if len(tag) != tag_len:
                raise ValueError("truncated tag")
            offset += tag_len
            seed_len = int.from_bytes(data[offset: offset + 2], "big")
            offset += 2
            seed = data[offset: offset + seed_len]
            if len(seed) != seed_len or offset + seed_len != len(data):
                raise ValueError("truncated or oversized encoding")
        except (IndexError, ValueError) as exc:
            raise ParameterError(f"malformed helper data: {exc}") from exc
        from repro.crypto.hashing import decode_int_vector

        return cls(movements=decode_int_vector(body), tag=tag, seed=seed)


class SuccinctFuzzyExtractor:
    """The paper's ``(Gen, Rep)`` pair.

    Parameters
    ----------
    params:
        Number-line geometry and threshold.
    extractor:
        A strong extractor; defaults to the paper's SHA-256 instantiation.
    bind_seed:
        When ``True``, the robustness tag also covers the extractor seed
        ``r`` (an extension over the paper; see module docstring).
    """

    def __init__(self, params: SystemParams,
                 extractor: StrongExtractor | None = None,
                 bind_seed: bool = False) -> None:
        self.params = params
        self.sketcher = ChebyshevSketch(params)
        self.extractor = extractor if extractor is not None else default_extractor()
        self.bind_seed = bind_seed

    # -- internals ------------------------------------------------------------------

    def _tag(self, x_canonical: IntArray, movements: IntArray, seed: bytes) -> bytes:
        parts = [encode_int_vector(x_canonical), encode_int_vector(movements)]
        if self.bind_seed:
            parts.append(seed)
        return hash_concat(parts, label=_TAG_LABEL)

    # -- Gen ---------------------------------------------------------------------------

    def generate(self, x: IntArray, drbg: HmacDrbg | None = None) -> tuple[bytes, HelperData]:
        """``Gen(x) -> (R, P)``.

        ``drbg`` drives both the extractor-seed draw and the sketch's
        boundary coins, making enrollment reproducible for tests; omitted,
        fresh OS-independent entropy is taken from numpy.
        """
        if drbg is None:
            drbg = HmacDrbg(np.random.default_rng().bytes(32),
                            personalization=b"fe-gen")
        x_canonical = self.sketcher.line.validate_vector(x)
        seed = drbg.generate(self.extractor.seed_bytes)
        movements = self.sketcher.sketch_canonical(x_canonical, drbg)
        tag = self._tag(x_canonical, movements, seed)
        secret = self.extractor.extract(encode_int_vector(x_canonical), seed)
        return secret, HelperData(movements=movements, tag=tag, seed=seed)

    # -- Rep ---------------------------------------------------------------------------

    def reproduce(self, y: IntArray, helper: HelperData) -> bytes:
        """``Rep(y, P) -> R``; raises ``RecoveryError`` / ``TamperDetectedError``."""
        recovered = self.sketcher.recover(y, helper.movements)
        expected = self._tag(recovered, helper.movements, helper.seed)
        if not constant_time_equal(expected, helper.tag):
            raise TamperDetectedError(
                "helper-data tag mismatch during Rep: sketch, tag or seed "
                "was modified"
            )
        return self.extractor.extract(encode_int_vector(recovered), helper.seed)
