"""The paper's primary contribution: the succinct fuzzy extractor.

Layering (bottom-up):

* :mod:`repro.core.params` — ``SysSetup`` parameters and Theorem 3 entropy
  accounting;
* :mod:`repro.core.numberline` — the ring geometry of ``La``;
* :mod:`repro.core.sketch` — the Chebyshev secure sketch ``(SS, Rec)``;
* :mod:`repro.core.robust` — the Boyen et al. robustness transform;
* :mod:`repro.core.extractor` — the fuzzy extractor ``(Gen, Rep)``;
* :mod:`repro.core.matching` — conditions (1)-(4) for sketch comparison;
* :mod:`repro.core.index` — the server-side search structures.
"""

from repro.core.extractor import HelperData, SuccinctFuzzyExtractor
from repro.core.index import (
    NaiveLoopIndex,
    PrefixBucketIndex,
    VectorizedScanIndex,
    batch_match_rows,
)
from repro.core.matching import (
    match_matrix,
    ring_distance_ka,
    sketches_match,
    sketches_match_literal,
)
from repro.core.numberline import NumberLine
from repro.core.params import SystemParams
from repro.core.robust import RobustChebyshevSketch, RobustSketchValue
from repro.core.sketch import ChebyshevSketch

__all__ = [
    "HelperData",
    "SuccinctFuzzyExtractor",
    "NaiveLoopIndex",
    "PrefixBucketIndex",
    "VectorizedScanIndex",
    "batch_match_rows",
    "match_matrix",
    "ring_distance_ka",
    "sketches_match",
    "sketches_match_literal",
    "NumberLine",
    "SystemParams",
    "RobustChebyshevSketch",
    "RobustSketchValue",
    "ChebyshevSketch",
]
