"""The Chebyshev-distance secure sketch (paper Section IV-B).

``SS(x)`` moves every coordinate to the identifier of its interval and
publishes the movements ``s = (s_1, ..., s_n)``; ``Rec(y, s)`` adds the
movements to the fresh reading, snaps to the nearest identifier, and
subtracts the movements again.  Theorem 1: recovery returns exactly ``x``
iff the Chebyshev distance between ``x`` and ``y`` is at most ``t``.

Special cases from the paper, both handled through ring arithmetic:

* *Special case 1* — a coordinate on an interval boundary belongs to no
  interval; a fair coin decides whether it moves to the left or right
  identifier (movement ``∓ka/2``).
* *Special case 2* — the extreme points of the line wrap around: the line
  is a ring.  Canonical ring reduction (see :mod:`repro.core.numberline`)
  makes this automatic, including the paper's erratum where ``Rec``
  subtracts ``ka`` instead of the full circumference ``kav``.

The coin flips are drawn from an :class:`~repro.crypto.prng.HmacDrbg` so
enrollment is reproducible from a seed; with the paper's parameters a
boundary coordinate occurs with probability ``1/ka = 1/400`` per
coordinate, so the coin path is rare but visible in property tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.numberline import IntArray, NumberLine
from repro.core.params import SystemParams
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError


class ChebyshevSketch:
    """The ``(SS, Rec)`` pair over a number line ``La``.

    Parameters
    ----------
    params:
        The system parameters (geometry + threshold).  The dimension check
        is taken from ``params.n`` unless a different-length vector is
        explicitly allowed via ``dimension``.
    """

    def __init__(self, params: SystemParams) -> None:
        self.params = params
        self.line = NumberLine(params)

    # -- SS ----------------------------------------------------------------------

    def sketch(self, x: IntArray, drbg: HmacDrbg | None = None) -> IntArray:
        """``SS(x) -> s``: per-coordinate movements to interval identifiers.

        ``drbg`` supplies the boundary coin flips; omitted, a fresh DRBG is
        seeded from numpy's non-deterministic entropy, so two sketches of
        the same template may differ on boundary coordinates (which is
        exactly the paper's behaviour — the coin is fair and fresh).
        """
        return self.sketch_canonical(self.line.validate_vector(x), drbg)

    def sketch_canonical(self, x: IntArray,
                         drbg: HmacDrbg | None = None) -> IntArray:
        """``SS`` for an already-canonicalised template vector.

        The pre-validated entry point for callers that have just run
        :meth:`NumberLine.validate_vector` themselves —
        :meth:`SuccinctFuzzyExtractor.generate` canonicalises once and
        shares the result between the sketch and the robustness tag, so
        the Gen hot path validates each template exactly once.  ``x``
        must be a canonical ring-representative int64 vector of dimension
        ``params.n``; anything else is undefined behaviour (use
        :meth:`sketch`).
        """
        if drbg is None:
            drbg = HmacDrbg(np.random.default_rng().bytes(32),
                            personalization=b"sketch-coins")

        identifiers = np.empty_like(x)
        boundary = self.line.is_boundary(x)
        interior = ~boundary
        identifiers[interior] = self.line.identifier_of(x[interior])

        boundary_idx = np.nonzero(boundary)[0]
        if boundary_idx.size:
            coin_bytes = np.frombuffer(
                drbg.generate(boundary_idx.size), dtype=np.uint8
            )
            coins = (coin_bytes & 1).astype(np.int64)
            # coin = 0 -> left identifier (x - ka/2); coin = 1 -> right.
            offsets = np.where(coins == 0,
                               -self.line.half_interval,
                               self.line.half_interval)
            identifiers[boundary_idx] = self.line.reduce(x[boundary_idx] + offsets)

        return self.line.movement_to(x, identifiers)

    # -- Rec ---------------------------------------------------------------------

    def recover(self, y: IntArray, s: IntArray) -> IntArray:
        """``Rec(y, s) -> z``: recover the enrolled template from a close reading.

        Raises :class:`RecoveryError` (the paper's ``⊥``) when some shifted
        coordinate lands further than ``t`` from its interval identifier —
        which, by Theorem 1, happens exactly when ``dis(x, y) > t`` for the
        original ``x`` (or when ``s`` is not a valid sketch).
        """
        y = self.line.validate_vector(y)
        s = self.validate_sketch(s)

        shifted = self.line.reduce(y + s)

        # A shifted point on a boundary is in no interval; genuine inputs
        # can never produce one because t < ka/2 strictly.
        if bool(np.any(self.line.is_boundary(shifted))):
            raise RecoveryError(
                "shifted coordinate fell on an interval boundary "
                "(reading too far from the enrolled template)"
            )

        identifiers = self.line.identifier_of(shifted)
        deviation = self.line.ring_distance(identifiers, shifted)
        worst = int(np.max(deviation))
        if worst > self.params.t:
            raise RecoveryError(
                f"reading deviates {worst} > t={self.params.t} "
                "from the nearest interval identifier"
            )
        return self.line.reduce(identifiers - s)

    # -- validation -----------------------------------------------------------------

    def validate_sketch(self, s: IntArray) -> IntArray:
        """Check that ``s`` is a structurally valid sketch vector.

        Movements must be integers with ``|s_i| <= ka/2``.  (A tampered
        sketch *within* this envelope is caught by the robust wrapper's
        hash, not here.)
        """
        arr = np.asarray(s)
        if arr.ndim != 1 or arr.shape[0] != self.params.n:
            raise ParameterError(
                f"sketch must be 1-D of length {self.params.n}, "
                f"got shape {arr.shape}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise ParameterError(f"sketch must be integer-typed, got {arr.dtype}")
        arr = arr.astype(np.int64)
        if int(np.max(np.abs(arr))) > self.line.half_interval:
            raise ParameterError(
                f"sketch movement exceeds ka/2 = {self.line.half_interval}"
            )
        return arr

    def sketch_storage_bits(self) -> float:
        """Bits needed to store one sketch (Theorem 3's storage bound)."""
        return self.params.storage_bits
