"""System parameters for the succinct fuzzy extractor.

Bundles the number-line geometry ``(a, k, v)``, the Chebyshev threshold
``t``, and the template dimension ``n``, mirroring the paper's ``Setup``
algorithms and Table II.  The entropy-accounting properties implement the
closed forms proved in Theorem 3:

* source min-entropy       ``m  = n * log2(k*a*v)``
* residual min-entropy     ``m~ = n * log2(v)``      (given the sketch)
* entropy loss             ``m - m~ = n * log2(k*a)``
* sketch storage           ``n * log2(k*a + 1)`` bits

With the paper's Table II values (``a=100, k=4, v=500, t=100, n=5000``)
these give ``m~ ≈ 44 829`` bits and storage ``≈ 43 237`` bits, matching the
"≈ 44,829" and "≈ 45,000" rows of the table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ParameterError


@dataclass(frozen=True)
class SystemParams:
    """Public parameters ``params`` produced by ``SysSetup``.

    Attributes
    ----------
    a:
        The unit of the number line (Definition 4); a positive integer.
    k:
        Units per interval; the paper requires ``k`` even (identifiers must
        be lattice points) and recommends ``k >= 4`` so the false-close
        probability decays (Section VII).
    v:
        Number of intervals on the line; the line covers
        ``[-k*a*v/2, k*a*v/2]`` and is treated as a ring.
    t:
        Maximum acceptable Chebyshev distance; must satisfy ``t < k*a/2``.
    n:
        Dimension of biometric template vectors.
    """

    a: int = 100
    k: int = 4
    v: int = 500
    t: int = 100
    n: int = 5000

    def __post_init__(self) -> None:
        if self.a < 1:
            raise ParameterError(f"unit a must be a positive integer, got {self.a}")
        if self.k < 2 or self.k % 2:
            raise ParameterError(
                f"k must be an even integer >= 2, got {self.k}"
            )
        if self.v < 2:
            raise ParameterError(f"v must be >= 2, got {self.v}")
        if not 0 < self.t < self.interval_width // 2:
            raise ParameterError(
                f"threshold t must satisfy 0 < t < k*a/2 = "
                f"{self.interval_width // 2}, got {self.t}"
            )
        if self.n < 1:
            raise ParameterError(f"dimension n must be >= 1, got {self.n}")

    # -- geometry ------------------------------------------------------------

    @property
    def interval_width(self) -> int:
        """``k * a`` — the width of one interval."""
        return self.k * self.a

    @property
    def circumference(self) -> int:
        """``k * a * v`` — total number of ring points."""
        return self.k * self.a * self.v

    @property
    def half_range(self) -> int:
        """``k*a*v / 2`` — the representation range is ``[-half, half]``."""
        return self.circumference // 2

    # -- Theorem 3 entropy accounting -----------------------------------------

    @property
    def min_entropy_bits(self) -> float:
        """Source min-entropy ``m = n log2(kav)`` (uniform templates)."""
        return self.n * math.log2(self.circumference)

    @property
    def residual_entropy_bits(self) -> float:
        """Average min-entropy ``m~ = n log2(v)`` remaining given the sketch."""
        return self.n * math.log2(self.v)

    @property
    def entropy_loss_bits(self) -> float:
        """Entropy loss ``n log2(ka)`` of publishing the sketch."""
        return self.n * math.log2(self.interval_width)

    @property
    def storage_bits(self) -> float:
        """Sketch storage ``n log2(ka + 1)`` bits (s_i has ka+1 values)."""
        return self.n * math.log2(self.interval_width + 1)

    @property
    def false_close_bound_log2(self) -> float:
        """``log2`` of the bound ``((2t+1)/ka)^n`` — safe at any ``n``.

        The bound itself underflows float64 around ``n≈1000`` at paper
        parameters; security statements are therefore made in bits.
        """
        return self.n * math.log2((2 * self.t + 1) / self.interval_width)

    @property
    def false_close_bound(self) -> float:
        """Upper bound ``((2t+1)/ka)^n`` on the false-close probability.

        This is the paper's Theorem 2 discussion bound: the probability
        that two *independent uniform* templates produce coordinate-wise
        matching sketches.  Underflows to ``0.0`` for large ``n``; use
        :attr:`false_close_bound_log2` for security accounting.
        """
        return 2.0 ** self.false_close_bound_log2

    def false_close_probability_log2(self) -> float:
        """``log2`` of the exact false-close probability.

        ``Pr[E] = ((2t+1)^n (v^n - 1)) / (kav)^n``; the ``v^n - 1`` factor
        is evaluated as ``n log2(v) + log2(1 - v^-n)`` with the correction
        dropped once it is below float resolution.
        """
        log2_v_n = self.n * math.log2(self.v)
        correction = 0.0
        # log2(1 - v^-n): only meaningful while v^-n is representable.
        if log2_v_n < 50:
            correction = math.log2(1.0 - 2.0 ** (-log2_v_n))
        return (
            self.n * math.log2(2 * self.t + 1)
            + log2_v_n
            + correction
            - self.n * math.log2(self.circumference)
        )

    def false_close_probability(self) -> float:
        """Exact false-close probability (0.0 when below float range)."""
        return 2.0 ** self.false_close_probability_log2()

    # -- reporting -------------------------------------------------------------

    def security_report(self) -> dict[str, float]:
        """The Table II security rows for these parameters."""
        return {
            "min_entropy_bits": self.min_entropy_bits,
            "residual_entropy_bits": self.residual_entropy_bits,
            "entropy_loss_bits": self.entropy_loss_bits,
            "storage_bits": self.storage_bits,
            "false_close_bound": self.false_close_bound,
        }

    def with_dimension(self, n: int) -> "SystemParams":
        """A copy of these parameters with a different template dimension."""
        return SystemParams(a=self.a, k=self.k, v=self.v, t=self.t, n=n)

    # -- serialisation (SysSetup publishes params; devices parse them) ---------

    def to_dict(self) -> dict[str, int]:
        """Plain-dict form for config files and the SysSetup broadcast."""
        return {"a": self.a, "k": self.k, "v": self.v, "t": self.t,
                "n": self.n}

    @classmethod
    def from_dict(cls, data: dict) -> "SystemParams":
        """Inverse of :meth:`to_dict`; validates via the constructor."""
        unknown = set(data) - {"a", "k", "v", "t", "n"}
        if unknown:
            raise ParameterError(f"unknown parameter keys: {sorted(unknown)}")
        missing = {"a", "k", "v", "t", "n"} - set(data)
        if missing:
            raise ParameterError(f"missing parameter keys: {sorted(missing)}")
        return cls(a=int(data["a"]), k=int(data["k"]), v=int(data["v"]),
                   t=int(data["t"]), n=int(data["n"]))

    def to_json(self) -> str:
        """JSON form of :meth:`to_dict` (stable key order)."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SystemParams":
        import json

        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"malformed parameter JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ParameterError("parameter JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def paper_defaults(cls, n: int = 5000) -> "SystemParams":
        """The exact Table II configuration (``a=100, k=4, v=500, t=100``)."""
        return cls(a=100, k=4, v=500, t=100, n=n)

    @classmethod
    def small_test(cls, n: int = 16) -> "SystemParams":
        """A small configuration for fast unit tests (``ka=8, v=8``)."""
        return cls(a=2, k=4, v=8, t=1, n=n)
