"""Server-side sketch search structures (the paper's "pre-computations").

The identification protocol (Fig. 3) replaces per-record public-key work
with a comparison of *public sketches*.  The paper remarks that the
conditions "can be avoided by performing some pre-computations, i.e, the
server only needs to check whether s'_i is in the specific range", and
reports near-constant identification time because the remaining cost — one
``Rep`` plus one signature round — does not grow with the database.

Two search structures are provided:

* :class:`VectorizedScanIndex` — the production default.  Enrolled
  sketches are packed into an ``(N, n)`` int32 matrix; a probe is checked
  column-chunk by column-chunk, dropping non-matching rows after every
  chunk.  For independent templates a random record survives one
  coordinate with probability ``≈ (2t+1)/ka`` (0.5 at paper parameters),
  so the expected number of *matrix elements* touched is ``N * O(1)`` —
  a few nanoseconds per record, 4-6 orders of magnitude below the
  signature that follows.  This is the honest implementation of the
  paper's "constant": the scan is asymptotically linear but its constant
  is negligible at any realistic database size (quantified in
  ``benchmarks/test_bench_index_ablation.py``).

* :class:`PrefixBucketIndex` — a sub-linear candidate index.  Each of the
  first ``depth`` coordinates is quantised into ring buckets of width
  ``t``; a probe enumerates the (at most 3 per coordinate) buckets a
  match could live in and intersects the posting lists.  With selectivity
  ``f = (2t+1)/ka`` per coordinate the candidate set shrinks like
  ``N * f^depth``, so this wins when ``t/ka`` is small — at the paper's
  ``t/ka = 1/4`` it needs a deep prefix, which the ablation bench
  explores.

Both return *candidate row ids whose full sketch satisfies the
conditions*; ties (multiple matches) are returned in enrollment order and
resolved by the protocol layer's challenge-response.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.core.matching import ring_distance_ka
from repro.core.numberline import IntArray
from repro.core.params import SystemParams
from repro.exceptions import ParameterError


class VectorizedScanIndex:
    """Chunked early-abort scan over an ``(N, n)`` sketch matrix.

    Arithmetic stays in int32 without modular reduction: stored movements
    and probes both live in ``[-ka/2, ka/2]`` (validated on insertion and
    search), so ``|s - s'| <= ka`` and the ring distance is simply
    ``min(d, ka - d)``.  The default chunk of 8 coordinates prunes the
    candidate set by ``((2t+1)/ka)^8`` (~256x at paper parameters) before
    the second chunk runs, so the scan touches ~``N * chunk`` matrix cells
    total.
    """

    def __init__(self, params: SystemParams, chunk: int = 8,
                 capacity: int = 1024) -> None:
        if chunk < 1:
            raise ParameterError("chunk must be >= 1")
        self.params = params
        self.chunk = chunk
        self._matrix = np.empty((capacity, params.n), dtype=np.int32)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _check_movements(self, vector: IntArray, what: str) -> np.ndarray:
        arr = np.asarray(vector, dtype=np.int64)
        if arr.shape != (self.params.n,):
            raise ParameterError(
                f"{what} must have shape ({self.params.n},), got {arr.shape}"
            )
        half = self.params.interval_width // 2
        if arr.size and int(np.max(np.abs(arr))) > half:
            raise ParameterError(
                f"{what} movements must lie in [-{half}, {half}]"
            )
        return arr.astype(np.int32)

    def add(self, sketch: IntArray) -> int:
        """Insert a sketch; returns its row id (enrollment order)."""
        sketch = self._check_movements(sketch, "sketch")
        if self._count == self._matrix.shape[0]:
            grown = np.empty(
                (2 * self._matrix.shape[0], self.params.n), dtype=np.int32
            )
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
        self._matrix[self._count] = sketch
        self._count += 1
        return self._count - 1

    #: Once the candidate set shrinks below this, the remaining
    #: coordinates are verified in a single operation — iterating tiny
    #: chunks would pay numpy dispatch overhead per chunk.
    _FINISH_THRESHOLD = 64

    def search(self, probe: IntArray) -> list[int]:
        """Row ids of all enrolled sketches matching ``probe``."""
        probe = self._check_movements(probe, "probe")
        if self._count == 0:
            return []
        ka = np.int32(self.params.interval_width)
        t = np.int32(self.params.t)
        matrix = self._matrix[: self._count]
        survivors: np.ndarray | None = None  # None = every row alive

        start = 0
        while start < self.params.n:
            few_survivors = (
                survivors is not None
                and survivors.size <= self._FINISH_THRESHOLD
            )
            stop = (self.params.n if few_survivors
                    else min(start + self.chunk, self.params.n))
            if survivors is None:
                block = matrix[:, start:stop]
            else:
                block = matrix[survivors, start:stop]
            diff = np.abs(block - probe[start:stop])
            ring = np.minimum(diff, ka - diff)
            alive = np.all(ring <= t, axis=1)
            if survivors is None:
                survivors = np.nonzero(alive)[0]
            else:
                survivors = survivors[alive]
            if survivors.size == 0:
                return []
            start = stop
        assert survivors is not None
        return survivors.tolist()


class PrefixBucketIndex:
    """Inverted ring-bucket index over a prefix of sketch coordinates.

    Coordinate values in ``[-ka/2, ka/2]`` are shifted to ``[0, ka)`` on
    the ring and bucketed with width ``max(t, 1)``.  Two values within
    ring distance ``t`` fall in the same or an adjacent bucket, so a probe
    only needs to inspect 3 buckets per indexed coordinate (fewer when the
    ring has fewer than 3 buckets).
    """

    def __init__(self, params: SystemParams, depth: int = 4) -> None:
        if depth < 1 or depth > params.n:
            raise ParameterError(f"depth must be in [1, {params.n}]")
        self.params = params
        self.depth = depth
        self._bucket_width = max(params.t, 1)
        self._n_buckets = -(-params.interval_width // self._bucket_width)  # ceil
        # posting[d] maps bucket id -> list of row ids.
        self._postings: list[dict[int, list[int]]] = [dict() for _ in range(depth)]
        self._sketches: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._sketches)

    def _bucket(self, value: int) -> int:
        shifted = int(value) % self.params.interval_width  # ring position in [0, ka)
        return shifted // self._bucket_width

    def add(self, sketch: IntArray) -> int:
        """Insert a sketch; returns its row id (enrollment order)."""
        sketch = np.asarray(sketch, dtype=np.int64)
        if sketch.shape != (self.params.n,):
            raise ParameterError(
                f"sketch must have shape ({self.params.n},), got {sketch.shape}"
            )
        row_id = len(self._sketches)
        self._sketches.append(sketch.astype(np.int32))
        for d in range(self.depth):
            bucket = self._bucket(int(sketch[d]))
            self._postings[d].setdefault(bucket, []).append(row_id)
        return row_id

    def _candidate_buckets(self, value: int) -> list[int]:
        centre = self._bucket(value)
        if self._n_buckets <= 3:
            return list(range(self._n_buckets))
        return sorted({
            (centre - 1) % self._n_buckets,
            centre,
            (centre + 1) % self._n_buckets,
        })

    def search(self, probe: IntArray) -> list[int]:
        """Candidate retrieval + full verification; returns matching row ids."""
        probe = np.asarray(probe, dtype=np.int64)
        if probe.shape != (self.params.n,):
            raise ParameterError(
                f"probe must have shape ({self.params.n},), got {probe.shape}"
            )
        if not self._sketches:
            return []

        candidates: set[int] | None = None
        for d in range(self.depth):
            posting = self._postings[d]
            level: set[int] = set()
            for bucket in self._candidate_buckets(int(probe[d])):
                level.update(posting.get(bucket, ()))
            candidates = level if candidates is None else (candidates & level)
            if not candidates:
                return []

        ka = self.params.interval_width
        t = self.params.t
        matches = []
        for row_id in sorted(candidates):
            sketch = self._sketches[row_id].astype(np.int64)
            if bool(np.all(ring_distance_ka(sketch, probe, ka) <= t)):
                matches.append(row_id)
        return matches


class NaiveLoopIndex:
    """Per-record pure-Python loop — the ablation's worst case.

    Checks the paper's conditions record by record with no vectorisation.
    Exists only so the ablation bench can show what the numpy scan buys.
    """

    def __init__(self, params: SystemParams) -> None:
        self.params = params
        self._sketches: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._sketches)

    def add(self, sketch: IntArray) -> int:
        """Insert a sketch; returns its row id (enrollment order)."""
        sketch = np.asarray(sketch, dtype=np.int64)
        if sketch.shape != (self.params.n,):
            raise ParameterError(
                f"sketch must have shape ({self.params.n},), got {sketch.shape}"
            )
        self._sketches.append(sketch)
        return len(self._sketches) - 1

    def search(self, probe: IntArray) -> list[int]:
        """Row ids of all enrolled sketches matching ``probe``."""
        probe = np.asarray(probe, dtype=np.int64)
        if probe.shape != (self.params.n,):
            raise ParameterError(
                f"probe must have shape ({self.params.n},), got {probe.shape}"
            )
        probe_list = [int(p) for p in probe]
        ka = self.params.interval_width
        t = self.params.t
        matches = []
        for row_id, sketch in enumerate(self._sketches):
            ok = True
            for si, pi in zip(sketch.tolist(), probe_list):
                diff = abs(si - pi)
                ring = min(diff % ka, (ka - diff) % ka)
                if ring > t:
                    ok = False
                    break
            if ok:
                matches.append(row_id)
        return matches
