"""Server-side sketch search structures (the paper's "pre-computations").

The identification protocol (Fig. 3) replaces per-record public-key work
with a comparison of *public sketches*.  The paper remarks that the
conditions "can be avoided by performing some pre-computations, i.e, the
server only needs to check whether s'_i is in the specific range", and
reports near-constant identification time because the remaining cost — one
``Rep`` plus one signature round — does not grow with the database.

Two search structures are provided:

* :class:`VectorizedScanIndex` — the production default.  Enrolled
  sketches are packed into an ``(N, n)`` int32 matrix; a probe is checked
  column-chunk by column-chunk, dropping non-matching rows after every
  chunk.  For independent templates a random record survives one
  coordinate with probability ``≈ (2t+1)/ka`` (0.5 at paper parameters),
  so the expected number of *matrix elements* touched is ``N * O(1)`` —
  a few nanoseconds per record, 4-6 orders of magnitude below the
  signature that follows.  This is the honest implementation of the
  paper's "constant": the scan is asymptotically linear but its constant
  is negligible at any realistic database size (quantified in
  ``benchmarks/test_bench_index_ablation.py``).

* :class:`PrefixBucketIndex` — a sub-linear candidate index.  Each of the
  first ``depth`` coordinates is quantised into ring buckets of width
  ``t``; a probe enumerates the (at most 3 per coordinate) buckets a
  match could live in and intersects the posting lists.  With selectivity
  ``f = (2t+1)/ka`` per coordinate the candidate set shrinks like
  ``N * f^depth``, so this wins when ``t/ka`` is small — at the paper's
  ``t/ka = 1/4`` it needs a deep prefix, which the ablation bench
  explores.

Both return *candidate row ids whose full sketch satisfies the
conditions*; ties (multiple matches) are returned in enrollment order and
resolved by the protocol layer's challenge-response.

This module also hosts the **batch kernels** the scale-out engine
(:mod:`repro.engine`) is built on:

* :func:`batch_match_rows` — evaluate a ``(B, n)`` probe matrix against an
  ``(N, n)`` sketch matrix in one pass.  Probes are processed in groups of
  up to 64; for every coordinate a small lookup table maps each of the
  ``ka`` ring positions to a 64-bit mask of the probes it satisfies, so
  one gather + one AND per matrix cell tests a cell against *all* probes
  in the group at once.  Surviving rows are compacted after every
  coordinate chunk (the same early-abort pruning the scan uses), and the
  short tail is verified per probe.  This amortises the scan across the
  batch: ~``B``-fold less element work than looping :meth:`search`.

* ``add_many`` on every index — bulk insertion as a single validated
  ``asarray`` + one matrix write, used by the store loaders so a restart
  does not pay a Python call per enrolled user.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.core.matching import ring_distance_ka
from repro.core.numberline import IntArray
from repro.core.params import SystemParams
from repro.exceptions import ParameterError

#: Absolute cap on the ring circumference for the bitmask-LUT path; above
#: it the per-coordinate tables alone are unreasonably large.
_LUT_RING_LIMIT = 1 << 20

#: The LUT path also only pays when table construction — ``O(ka)`` work
#: per coordinate — is small next to the ``O(rows)`` scan work it saves
#: per coordinate; rings wider than this multiple of the row count fall
#: back to per-probe scans (identical results, no LUT build).
_LUT_ROWS_FACTOR = 8


def _as_movement_vector(params: SystemParams, vector: IntArray,
                        what: str) -> np.ndarray:
    """Validate one movement vector -> contiguous ``(n,)`` int32 array."""
    arr = np.asarray(vector, dtype=np.int64)
    if arr.shape != (params.n,):
        raise ParameterError(
            f"{what} must have shape ({params.n},), got {arr.shape}"
        )
    half = params.interval_width // 2
    if arr.size and int(np.max(np.abs(arr))) > half:
        raise ParameterError(
            f"{what} movements must lie in [-{half}, {half}]"
        )
    return arr.astype(np.int32)


def _as_sketch_matrix(params: SystemParams, matrix: IntArray,
                      what: str) -> np.ndarray:
    """Shape-check a stack of sketch vectors -> ``(B, n)`` int64 array.

    An empty input (``B == 0``) is legal and yields a ``(0, n)`` matrix.
    No range check: the bucket and naive indexes accept any integers
    (their arithmetic reduces modulo ``ka``), matching their ``add``.
    """
    arr = np.asarray(matrix, dtype=np.int64)
    if arr.ndim == 1 and arr.size == 0:
        arr = arr.reshape(0, params.n)
    if arr.ndim != 2 or arr.shape[1] != params.n:
        raise ParameterError(
            f"{what} must have shape (B, {params.n}), got {arr.shape}"
        )
    return arr


def _as_movement_matrix(params: SystemParams, matrix: IntArray,
                        what: str) -> np.ndarray:
    """Validate a stack of movement vectors -> ``(B, n)`` int32 array.

    Shape rules of :func:`_as_sketch_matrix` plus the scan indexes'
    ``[-ka/2, ka/2]`` range invariant.
    """
    arr = _as_sketch_matrix(params, matrix, what)
    half = params.interval_width // 2
    if arr.size and int(np.max(np.abs(arr))) > half:
        raise ParameterError(
            f"{what} movements must lie in [-{half}, {half}]"
        )
    return arr.astype(np.int32)


def _scan_survivors(matrix: np.ndarray, probe: np.ndarray, ka: int, t: int,
                    chunk: int, finish_threshold: int = 64,
                    survivors: np.ndarray | None = None,
                    start: int = 0) -> np.ndarray:
    """Chunked early-abort scan; returns surviving row indices (sorted).

    ``matrix`` is ``(N, n)`` int32 with movements in ``[-ka/2, ka/2]``
    (memmap-backed matrices are fine); ``survivors``/``start`` allow
    resuming a partially pruned scan, which the batch kernel uses for its
    per-probe tail verification.
    """
    n = matrix.shape[1]
    ka32 = np.int32(ka)
    t32 = np.int32(t)
    while start < n:
        few = survivors is not None and survivors.size <= finish_threshold
        stop = n if few else min(start + chunk, n)
        if survivors is None:
            block = matrix[:, start:stop]
        else:
            block = matrix[survivors, start:stop]
        diff = np.abs(block - probe[start:stop].astype(np.int32))
        ring = np.minimum(diff, ka32 - diff)
        alive = np.all(ring <= t32, axis=1)
        if survivors is None:
            survivors = np.nonzero(alive)[0]
        else:
            survivors = survivors[alive]
        if survivors.size == 0:
            return survivors
        start = stop
    if survivors is None:  # zero-width scan over every row
        survivors = np.arange(matrix.shape[0], dtype=np.intp)
    return survivors


def _group_masks(group: np.ndarray, columns: range, ka: int,
                 t: int) -> list[np.ndarray]:
    """Per-coordinate bitmask LUTs for one probe group.

    For coordinate ``c`` the returned ``(ka,)`` uint64 array maps every
    ring position to the set of probes (bit ``b`` = probe ``b`` of the
    group) whose condition it satisfies.
    """
    positions = np.arange(ka, dtype=np.int64)
    bits = np.uint64(1) << np.arange(group.shape[0], dtype=np.uint64)
    luts = []
    for c in columns:
        centre = group[:, c].astype(np.int64) % ka          # (Bg,)
        diff = np.abs(positions[:, None] - centre[None, :])  # (ka, Bg)
        ok = np.minimum(diff, ka - diff) <= t
        luts.append((ok * bits[None, :]).sum(axis=1, dtype=np.uint64))
    return luts


def batch_match_rows(matrix: np.ndarray, probes: np.ndarray, ka: int, t: int,
                     chunk: int = 8,
                     pair_threshold: int = 2048) -> list[np.ndarray]:
    """Row ids matching each probe: the engine's vectorised batch kernel.

    ``matrix`` is ``(N, n)`` int32 and ``probes`` ``(B, n)``, both with
    movements in ``[-ka/2, ka/2]`` (callers validate); returns ``B``
    sorted int arrays of row indices whose full sketch is within ring
    distance ``t`` of the probe on every coordinate.  Equivalent to —
    and property-tested against — ``B`` independent ``search`` calls.

    Probes are processed in uint64 bitmask groups (see module docstring);
    once the compacted candidate set drops below ``pair_threshold`` rows
    the kernel switches to per-probe tail verification, which also serves
    as the fallback when ``ka`` exceeds the LUT budget (LUT build is
    ``O(ka)`` per coordinate, so very wide rings over few rows would pay
    more building tables than scanning).
    """
    n_rows = matrix.shape[0]
    n_cols = matrix.shape[1]
    results: list[np.ndarray] = []
    use_lut = ka <= _LUT_RING_LIMIT and ka <= _LUT_ROWS_FACTOR * n_rows
    for g0 in range(0, probes.shape[0], 64):
        group = probes[g0:g0 + 64]
        width = group.shape[0]
        rows = np.arange(n_rows, dtype=np.int64)
        full = (np.uint64(1) << np.uint64(width)) - np.uint64(1) \
            if width < 64 else ~np.uint64(0)
        acc = np.full(n_rows, full, dtype=np.uint64)
        start = 0
        while use_lut and start < n_cols and rows.size > pair_threshold:
            stop = min(start + chunk, n_cols)
            luts = _group_masks(group, range(start, stop), ka, t)
            for c, lut in zip(range(start, stop), luts):
                acc &= lut[matrix[rows, c] % ka]
            keep = acc != 0
            rows = rows[keep]
            acc = acc[keep]
            start = stop
        for b in range(width):
            if start == 0:
                # LUT pass never ran (small N or wide ring): scan from
                # scratch with survivors=None so the first chunks slice
                # views instead of fancy-indexing an all-rows array.
                alive = _scan_survivors(
                    matrix, group[b].astype(np.int32), ka, t, chunk,
                )
            else:
                alive = rows[(acc >> np.uint64(b)) & np.uint64(1) == 1]
                if start < n_cols:
                    alive = _scan_survivors(
                        matrix, group[b].astype(np.int32), ka, t, chunk,
                        survivors=alive, start=start,
                    )
            results.append(np.sort(alive))
    return results


class VectorizedScanIndex:
    """Chunked early-abort scan over an ``(N, n)`` sketch matrix.

    Arithmetic stays in int32 without modular reduction: stored movements
    and probes both live in ``[-ka/2, ka/2]`` (validated on insertion and
    search), so ``|s - s'| <= ka`` and the ring distance is simply
    ``min(d, ka - d)``.  The default chunk of 8 coordinates prunes the
    candidate set by ``((2t+1)/ka)^8`` (~256x at paper parameters) before
    the second chunk runs, so the scan touches ~``N * chunk`` matrix cells
    total.
    """

    def __init__(self, params: SystemParams, chunk: int = 8,
                 capacity: int = 1024) -> None:
        if chunk < 1:
            raise ParameterError("chunk must be >= 1")
        self.params = params
        self.chunk = chunk
        self._matrix = np.empty((capacity, params.n), dtype=np.int32)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _check_movements(self, vector: IntArray, what: str) -> np.ndarray:
        return _as_movement_vector(self.params, vector, what)

    def _reserve(self, extra: int) -> None:
        """Grow the backing matrix so ``extra`` more rows fit."""
        needed = self._count + extra
        capacity = max(self._matrix.shape[0], 1)
        if needed <= self._matrix.shape[0]:
            return
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, self.params.n), dtype=np.int32)
        grown[: self._count] = self._matrix[: self._count]
        self._matrix = grown

    def add(self, sketch: IntArray) -> int:
        """Insert a sketch; returns its row id (enrollment order)."""
        sketch = self._check_movements(sketch, "sketch")
        self._reserve(1)
        self._matrix[self._count] = sketch
        self._count += 1
        return self._count - 1

    def add_many(self, sketches: IntArray) -> list[int]:
        """Bulk-insert a ``(B, n)`` stack of sketches; returns their row ids.

        One validated ``asarray`` and one matrix write — no per-row Python
        overhead; equivalent to ``[self.add(s) for s in sketches]``.
        """
        block = _as_movement_matrix(self.params, sketches, "sketches")
        self._reserve(block.shape[0])
        self._matrix[self._count: self._count + block.shape[0]] = block
        first = self._count
        self._count += block.shape[0]
        return list(range(first, self._count))

    #: Once the candidate set shrinks below this, the remaining
    #: coordinates are verified in a single operation — iterating tiny
    #: chunks would pay numpy dispatch overhead per chunk.
    _FINISH_THRESHOLD = 64

    def search(self, probe: IntArray) -> list[int]:
        """Row ids of all enrolled sketches matching ``probe``."""
        probe = self._check_movements(probe, "probe")
        if self._count == 0:
            return []
        survivors = _scan_survivors(
            self._matrix[: self._count], probe,
            self.params.interval_width, self.params.t,
            self.chunk, self._FINISH_THRESHOLD,
        )
        return survivors.tolist()

    def search_batch(self, probes: IntArray) -> list[list[int]]:
        """Row ids matching each row of a ``(B, n)`` probe matrix.

        One vectorised pass (:func:`batch_match_rows`) instead of ``B``
        :meth:`search` calls; the returned lists are identical to the
        per-probe results.
        """
        probes = _as_movement_matrix(self.params, probes, "probes")
        if self._count == 0:
            return [[] for _ in range(probes.shape[0])]
        rows = batch_match_rows(
            self._matrix[: self._count], probes,
            self.params.interval_width, self.params.t, self.chunk,
        )
        return [r.tolist() for r in rows]


class PrefixBucketIndex:
    """Inverted ring-bucket index over a prefix of sketch coordinates.

    Coordinate values in ``[-ka/2, ka/2]`` are shifted to ``[0, ka)`` on
    the ring and bucketed with width ``max(t, 1)``.  Two values within
    ring distance ``t`` fall in the same or an adjacent bucket, so a probe
    only needs to inspect 3 buckets per indexed coordinate (fewer when the
    ring has fewer than 3 buckets).
    """

    def __init__(self, params: SystemParams, depth: int = 4) -> None:
        if depth < 1 or depth > params.n:
            raise ParameterError(f"depth must be in [1, {params.n}]")
        self.params = params
        self.depth = depth
        self._bucket_width = max(params.t, 1)
        self._n_buckets = -(-params.interval_width // self._bucket_width)  # ceil
        # posting[d] maps bucket id -> list of row ids.
        self._postings: list[dict[int, list[int]]] = [dict() for _ in range(depth)]
        self._sketches: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._sketches)

    def _bucket(self, value: int) -> int:
        shifted = int(value) % self.params.interval_width  # ring position in [0, ka)
        return shifted // self._bucket_width

    def add(self, sketch: IntArray) -> int:
        """Insert a sketch; returns its row id (enrollment order)."""
        sketch = np.asarray(sketch, dtype=np.int64)
        if sketch.shape != (self.params.n,):
            raise ParameterError(
                f"sketch must have shape ({self.params.n},), got {sketch.shape}"
            )
        row_id = len(self._sketches)
        self._sketches.append(sketch.astype(np.int32))
        for d in range(self.depth):
            bucket = self._bucket(int(sketch[d]))
            self._postings[d].setdefault(bucket, []).append(row_id)
        return row_id

    def add_many(self, sketches: IntArray) -> list[int]:
        """Bulk-insert a ``(B, n)`` stack of sketches; returns their row ids.

        Validates the whole block with one ``asarray``, then posts the
        indexed prefix coordinates column-wise.
        """
        block = _as_sketch_matrix(self.params, sketches, "sketches")
        first = len(self._sketches)
        stored = block.astype(np.int32)
        self._sketches.extend(stored)
        for d in range(self.depth):
            buckets = (block[:, d] % self.params.interval_width) \
                // self._bucket_width
            posting = self._postings[d]
            for offset, bucket in enumerate(buckets.tolist()):
                posting.setdefault(bucket, []).append(first + offset)
        return list(range(first, len(self._sketches)))

    def _candidate_buckets(self, value: int) -> list[int]:
        centre = self._bucket(value)
        if self._n_buckets <= 3:
            return list(range(self._n_buckets))
        return sorted({
            (centre - 1) % self._n_buckets,
            centre,
            (centre + 1) % self._n_buckets,
        })

    def search(self, probe: IntArray) -> list[int]:
        """Candidate retrieval + full verification; returns matching row ids."""
        probe = np.asarray(probe, dtype=np.int64)
        if probe.shape != (self.params.n,):
            raise ParameterError(
                f"probe must have shape ({self.params.n},), got {probe.shape}"
            )
        if not self._sketches:
            return []

        candidates: set[int] | None = None
        for d in range(self.depth):
            posting = self._postings[d]
            level: set[int] = set()
            for bucket in self._candidate_buckets(int(probe[d])):
                level.update(posting.get(bucket, ()))
            candidates = level if candidates is None else (candidates & level)
            if not candidates:
                return []

        ka = self.params.interval_width
        t = self.params.t
        matches = []
        for row_id in sorted(candidates):
            sketch = self._sketches[row_id].astype(np.int64)
            if bool(np.all(ring_distance_ka(sketch, probe, ka) <= t)):
                matches.append(row_id)
        return matches


class NaiveLoopIndex:
    """Per-record pure-Python loop — the ablation's worst case.

    Checks the paper's conditions record by record with no vectorisation.
    Exists only so the ablation bench can show what the numpy scan buys.
    """

    def __init__(self, params: SystemParams) -> None:
        self.params = params
        self._sketches: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._sketches)

    def add(self, sketch: IntArray) -> int:
        """Insert a sketch; returns its row id (enrollment order)."""
        sketch = np.asarray(sketch, dtype=np.int64)
        if sketch.shape != (self.params.n,):
            raise ParameterError(
                f"sketch must have shape ({self.params.n},), got {sketch.shape}"
            )
        self._sketches.append(sketch)
        return len(self._sketches) - 1

    def add_many(self, sketches: IntArray) -> list[int]:
        """Bulk-insert a ``(B, n)`` stack of sketches; returns their row ids."""
        block = _as_sketch_matrix(self.params, sketches, "sketches")
        first = len(self._sketches)
        self._sketches.extend(block)
        return list(range(first, len(self._sketches)))

    def search(self, probe: IntArray) -> list[int]:
        """Row ids of all enrolled sketches matching ``probe``."""
        probe = np.asarray(probe, dtype=np.int64)
        if probe.shape != (self.params.n,):
            raise ParameterError(
                f"probe must have shape ({self.params.n},), got {probe.shape}"
            )
        probe_list = [int(p) for p in probe]
        ka = self.params.interval_width
        t = self.params.t
        matches = []
        for row_id, sketch in enumerate(self._sketches):
            ok = True
            for si, pi in zip(sketch.tolist(), probe_list):
                diff = abs(si - pi)
                ring = min(diff % ka, (ka - diff) % ka)
                if ring > t:
                    ok = False
                    break
            if ok:
                matches.append(row_id)
        return matches
