"""The number line ``La`` (paper Definition 4) and its ring arithmetic.

The line has ``v`` intervals of ``k*a`` integer points each, covering
``[-k*a*v/2, k*a*v/2]`` with the two endpoints identified ("La can be
considered as a ring", Section IV-B special case 2).  Interval boundaries
sit at multiples of ``k*a``; each interval's *identifier* is its midpoint,
which lies ``k*a/2`` above a boundary.

All operations are vectorised over numpy int64 arrays.  Canonical ring
representatives live in the half-open range ``[-kav/2, kav/2)`` — the
paper notes ``-kav/2`` "is considered the same as the point ``kav/2``",
and a half-open canonical range makes every ring element unique.

Erratum handled here: the paper's ``Rec`` wraps an overflowing point by
subtracting ``ka``; the ring identification requires subtracting the full
circumference ``kav`` (see DESIGN.md §2).  :meth:`NumberLine.reduce`
implements the correct reduction.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SystemParams
from repro.exceptions import EncodingError

IntArray = np.ndarray


class NumberLine:
    """Geometry of ``La``: reduction, intervals, identifiers, distances."""

    def __init__(self, params: SystemParams) -> None:
        self.params = params
        self.interval_width = params.interval_width   # ka
        self.circumference = params.circumference     # kav
        self.half_range = params.half_range           # kav / 2
        self.half_interval = self.interval_width // 2  # ka / 2

    # -- canonical representation ------------------------------------------------

    def reduce(self, points: IntArray | int) -> IntArray:
        """Map integers to canonical ring representatives in ``[-kav/2, kav/2)``.

        The shift/mod/unshift chain runs on one freshly allocated buffer
        (``np.add`` makes the copy; the mod and subtraction reuse it) —
        this is the innermost ring operation, called on every sketch,
        recover, and distance computation.
        """
        arr = np.asarray(points, dtype=np.int64)
        out = np.add(arr, self.half_range)
        out %= self.circumference
        out -= self.half_range
        return out

    def validate_vector(self, vector: IntArray, dimension: int | None = None) -> IntArray:
        """Check and canonicalise an encoded biometric vector.

        Accepts any integers within ``[-kav/2, kav/2]`` (both endpoint
        spellings of the shared ring point are allowed) and returns the
        canonical representative array.  Raises :class:`EncodingError` for
        out-of-range values or a wrong dimension.
        """
        arr = np.asarray(vector)
        if arr.ndim != 1:
            raise EncodingError(f"expected a 1-D vector, got shape {arr.shape}")
        expected = dimension if dimension is not None else self.params.n
        if arr.shape[0] != expected:
            raise EncodingError(
                f"expected dimension {expected}, got {arr.shape[0]}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise EncodingError(
                f"vector must be integer-typed, got dtype {arr.dtype}"
            )
        arr = arr.astype(np.int64)
        if arr.min() < -self.half_range or arr.max() > self.half_range:
            raise EncodingError(
                f"vector contains points outside [-{self.half_range}, "
                f"{self.half_range}]"
            )
        return self.reduce(arr)

    # -- intervals and identifiers --------------------------------------------------

    def is_boundary(self, points: IntArray | int) -> IntArray:
        """True where a point sits on an interval boundary (in no interval).

        Boundaries are the multiples of ``ka`` (paper special case 1's
        "point which does not [lie] in any interval").
        """
        arr = self.reduce(points)
        return arr % self.interval_width == 0

    def identifier_of(self, points: IntArray | int) -> IntArray:
        """Identifier (midpoint) of the interval containing each point.

        For boundary points the result is meaningless — callers must
        handle them via :meth:`is_boundary` first (the sketch algorithm
        resolves them with a coin flip).
        """
        arr = self.reduce(points)
        base = np.floor_divide(arr, self.interval_width) * self.interval_width
        return self.reduce(base + self.half_interval)

    def identifiers(self) -> IntArray:
        """All ``v`` interval identifiers in canonical representation.

        Boundaries sit at the ring multiples of ``ka`` regardless of the
        parity of ``v`` (for odd ``v`` the extreme ring point ``±kav/2`` is
        an identifier, not a boundary).
        """
        boundaries = np.arange(self.params.v, dtype=np.int64) * self.interval_width
        return self.reduce(boundaries + self.half_interval)

    # -- distances --------------------------------------------------------------------

    def ring_distance(self, x: IntArray | int, y: IntArray | int) -> IntArray:
        """Element-wise ring (wrap-around) distance on ``La``."""
        diff = np.abs(self.reduce(np.asarray(x, dtype=np.int64)
                                  - np.asarray(y, dtype=np.int64)))
        return np.minimum(diff, self.circumference - diff)

    def chebyshev_distance(self, x: IntArray, y: IntArray) -> int:
        """Chebyshev (L-infinity) distance between two vectors on the ring.

        The paper's Definition 3 uses plain ``max |x_i - y_i|``; on the
        ring the coordinate distance is the wrap-around distance.  For
        vectors that stay away from the ends of the line the two notions
        coincide.
        """
        return int(np.max(self.ring_distance(x, y)))

    def movement_to(self, points: IntArray, identifiers: IntArray) -> IntArray:
        """Ring movement ``s`` with ``points + s ≡ identifiers`` and minimal ``|s|``.

        The result is reduced to ``(-kav/2, kav/2)`` magnitude; for sketch
        construction the movement magnitude never exceeds ``ka/2``.
        """
        return self.reduce(
            np.asarray(identifiers, dtype=np.int64)
            - np.asarray(points, dtype=np.int64)
        )

    # -- sampling ---------------------------------------------------------------------

    def uniform_vector(self, rng: np.random.Generator, n: int | None = None) -> IntArray:
        """A uniform template vector on the ring (canonical representation)."""
        size = n if n is not None else self.params.n
        return rng.integers(
            -self.half_range, self.half_range, size=size, dtype=np.int64
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.params
        return (
            f"NumberLine(a={p.a}, k={p.k}, v={p.v}, "
            f"range=[-{self.half_range}, {self.half_range}])"
        )
