"""Robust secure sketch — the Boyen et al. generic transform (Section IV-C).

A plain secure sketch gives no guarantee when an active adversary modifies
the public helper data.  The robust transform appends a hash binding the
input to the sketch:

* ``SS(x) -> (s', h)`` with ``h = H(x, s')``;
* ``Rec(y, (s', h))`` recovers ``x' = Rec'(y, s')`` and accepts only when
  ``H(x', s') == h``.

The hash is modelled as a random oracle in Boyen et al.'s proof; here it is
SHA-256 with injective framing and domain separation
(:func:`repro.crypto.hashing.hash_vectors`).

Tampering is surfaced as :class:`~repro.exceptions.TamperDetectedError`, a
subclass of the ordinary noise-rejection :class:`RecoveryError`, so callers
can distinguish an active attack from an over-noisy reading when they care
and treat both as ``⊥`` when they do not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.numberline import IntArray
from repro.core.params import SystemParams
from repro.core.sketch import ChebyshevSketch
from repro.crypto.hashing import constant_time_equal, hash_vectors
from repro.crypto.prng import HmacDrbg
from repro.exceptions import ParameterError, TamperDetectedError

_HASH_LABEL = b"repro-robust-sketch-v1"


@dataclass(frozen=True)
class RobustSketchValue:
    """The published pair ``(s, h)``: movement vector plus binding tag."""

    movements: np.ndarray
    tag: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.tag, bytes) or len(self.tag) != 32:
            raise ParameterError("tag must be a 32-byte SHA-256 digest")

    def storage_bytes(self) -> int:
        """Wire size: 8 bytes per movement plus the 32-byte tag."""
        return 8 * len(self.movements) + len(self.tag)


class RobustChebyshevSketch:
    """Hash-bound wrapper around :class:`ChebyshevSketch`."""

    def __init__(self, params: SystemParams) -> None:
        self.params = params
        self.inner = ChebyshevSketch(params)

    def sketch(self, x: IntArray, drbg: HmacDrbg | None = None) -> RobustSketchValue:
        """``SS(x) -> (s, h)`` with ``h = H(x, s)``."""
        x_canonical = self.inner.line.validate_vector(x)
        movements = self.inner.sketch(x_canonical, drbg)
        tag = hash_vectors(x_canonical, movements, label=_HASH_LABEL)
        return RobustSketchValue(movements=movements, tag=tag)

    def recover(self, y: IntArray, value: RobustSketchValue) -> IntArray:
        """``Rec(y, (s, h))``; raises on noise (``RecoveryError``) or
        tampering (``TamperDetectedError``)."""
        recovered = self.inner.recover(y, value.movements)
        expected = hash_vectors(recovered, value.movements, label=_HASH_LABEL)
        if not constant_time_equal(expected, value.tag):
            raise TamperDetectedError(
                "helper-data tag mismatch: sketch or tag was modified"
            )
        return recovered
