"""Sketch matching — the paper's conditions (1)-(4) (Section V, Theorem 2).

The identification protocol's server-side search compares the *fresh*
sketch ``s'`` against every *enrolled* sketch ``s`` coordinate-wise.  The
paper states four conditions (with ``ka`` the interval width):

==========================  =====================================
``s_i > 0,  s'_i > 0``      ``|s_i - s'_i| ∈ [0, t]``          (1)
``s_i <= 0, s'_i <= 0``     ``|s_i - s'_i| ∈ [0, t]``          (2)
``s_i > 0,  s'_i <= 0``     ``|s_i - s'_i - ka| ∉ (t, ka-t)``  (3)
``s_i <= 0, s'_i > 0``      ``|s_i - s'_i + ka| ∉ (t, ka-t)``  (4)
==========================  =====================================

**Equivalence.**  Sketch movements live in ``[-ka/2, ka/2]`` and are only
meaningful modulo ``ka`` (moving a point one whole interval changes its
identifier, not its offset inside the interval).  All four conditions say
exactly::

    ring_distance_ka(s_i, s'_i) <= t

on the ring of circumference ``ka``: (1)/(2) are the no-wrap case
(``|s - s'| <= ka/2 + ka/2`` but with equal signs ``|s - s'| <= ka/2``, so
the ring distance *is* ``|s - s'|``); for (3), ``u = s - s' ∈ (0, ka]`` and
``|u - ka| ∉ (t, ka-t)`` unfolds to ``u <= t`` (direct) or
``ka - u <= t`` (wrapped); (4) is the mirror image.  Both forms are
implemented and property-tested against each other; the ring form is what
the vectorised scan uses.

Theorem 2 (completeness): readings within Chebyshev distance ``t`` always
satisfy the conditions.  Soundness is statistical: two *unrelated*
templates pass with probability ``Pr[E] = ((2t+1)^n (v^n - 1)) / (kav)^n``
(< ``((2t+1)/ka)^n``), negligible in the dimension ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.core.numberline import IntArray
from repro.core.params import SystemParams

__all__ = [
    "ring_distance_ka",
    "sketches_match",
    "sketches_match_literal",
    "match_matrix",
]


def ring_distance_ka(s: IntArray, s_prime: IntArray, interval_width: int) -> IntArray:
    """Per-coordinate ring distance between sketch vectors (circumference ``ka``).

    One modulo suffices: with ``r = |s - s'| mod ka`` in ``[0, ka)``, the
    wrapped distance is ``min(r, ka - r)`` (``r == 0`` gives 0 either way,
    so the second reduction the literal form needs is redundant).  The
    augmented assignment reduces the fresh ``|diff|`` buffer in place for
    array inputs while still accepting scalars / 0-d arrays.
    """
    diff = np.abs(np.asarray(s, dtype=np.int64)
                  - np.asarray(s_prime, dtype=np.int64))
    diff %= interval_width
    return np.minimum(diff, interval_width - diff)


def sketches_match(s: IntArray, s_prime: IntArray, params: SystemParams) -> bool:
    """Ring-distance form: every coordinate within ``t`` on the ``ka`` ring."""
    distances = ring_distance_ka(s, s_prime, params.interval_width)
    return bool(np.all(distances <= params.t))


def sketches_match_literal(s: IntArray, s_prime: IntArray,
                           params: SystemParams) -> bool:
    """The paper's four conditions, transcribed verbatim (reference / tests).

    Slower than :func:`sketches_match`; exists to prove the equivalence
    claim and to keep the reproduction auditable against the paper text.
    """
    s = np.asarray(s, dtype=np.int64)
    s_prime = np.asarray(s_prime, dtype=np.int64)
    ka = params.interval_width
    t = params.t

    for si, spi in zip(s.tolist(), s_prime.tolist()):
        if si > 0 and spi > 0:              # condition (1)
            ok = abs(si - spi) <= t
        elif si <= 0 and spi <= 0:          # condition (2)
            ok = abs(si - spi) <= t
        elif si > 0 and spi <= 0:           # condition (3)
            value = abs(si - spi - ka)
            ok = not (t < value < ka - t)
        else:                               # condition (4): si <= 0 < spi
            value = abs(si - spi + ka)
            ok = not (t < value < ka - t)
        if not ok:
            return False
    return True


def match_matrix(enrolled: np.ndarray, probe: IntArray,
                 params: SystemParams) -> np.ndarray:
    """Vectorised conditions check of one probe against many sketches.

    ``enrolled`` is an ``(N, n)`` matrix of sketch vectors; returns a
    boolean array of length ``N``.  This is the reference one-shot
    implementation; :class:`repro.core.index.VectorizedScanIndex` adds
    chunked early-abort on top for the protocol hot path.
    """
    enrolled = np.asarray(enrolled, dtype=np.int64)
    if enrolled.ndim != 2:
        raise ValueError(f"enrolled must be 2-D (N, n), got {enrolled.shape}")
    ka = params.interval_width
    diff = enrolled - np.asarray(probe, dtype=np.int64)[None, :]
    np.abs(diff, out=diff)
    np.mod(diff, ka, out=diff)
    ring = np.minimum(diff, ka - diff)
    return np.all(ring <= params.t, axis=1)
