"""The code-offset secure sketch (Juels-Wattenberg fuzzy commitment).

The canonical Hamming-metric construction the paper's related work starts
from (Section VIII, [16]): to sketch a bit string ``w``, pick a uniformly
random codeword ``c`` of an ``[n, k, 2t+1]`` error-correcting code and
publish ``s = w XOR c``.  Recovery from a noisy ``w'`` computes
``c' = w' XOR s`` (= ``c XOR e`` with ``e`` the error pattern), decodes to
``c``, and returns ``w = c XOR s``.

Entropy loss is at most ``n - k`` bits (the syndrome length), the direct
analogue of the proposed scheme's ``n log2(ka)`` loss.

This is the baseline the identification benchmarks run ``O(N)`` times per
query — the cost profile the paper's contribution removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.bch import BchCode
from repro.crypto.hashing import constant_time_equal, hash_concat
from repro.crypto.prng import HmacDrbg
from repro.exceptions import (
    DecodingError,
    ParameterError,
    RecoveryError,
    TamperDetectedError,
)

_TAG_LABEL = b"repro-code-offset-v1"


@dataclass(frozen=True)
class CodeOffsetSketchValue:
    """Published offset ``s = w XOR c`` plus (optional) robustness tag."""

    offset: np.ndarray
    tag: bytes | None = None


class CodeOffsetSketch:
    """``(SS, Rec)`` over the Hamming metric, backed by a BCH code.

    ``robust=True`` appends the Boyen-style tag ``H(w, s)`` — the same
    transform the proposed scheme uses — so tamper-detection comparisons
    between the two metrics are apples-to-apples.
    """

    def __init__(self, code: BchCode, robust: bool = True) -> None:
        self.code = code
        self.robust = robust

    @property
    def n(self) -> int:
        """Template length in bits."""
        return self.code.n

    @property
    def t(self) -> int:
        """Correctable Hamming errors."""
        return self.code.t

    def _check_bits(self, bits: np.ndarray, what: str) -> np.ndarray:
        arr = np.asarray(bits)
        if arr.ndim != 1 or arr.shape[0] != self.code.n:
            raise ParameterError(
                f"{what} must be 1-D of {self.code.n} bits, got {arr.shape}"
            )
        if not np.all((arr == 0) | (arr == 1)):
            raise ParameterError(f"{what} must contain only 0/1 values")
        return arr.astype(np.uint8)

    def _tag(self, w: np.ndarray, offset: np.ndarray) -> bytes:
        return hash_concat([w.tobytes(), offset.tobytes()], label=_TAG_LABEL)

    def sketch(self, w: np.ndarray, drbg: HmacDrbg | None = None) -> CodeOffsetSketchValue:
        """``SS(w) = w XOR c`` for a fresh random codeword ``c``."""
        w = self._check_bits(w, "template")
        if drbg is None:
            drbg = HmacDrbg(np.random.default_rng().bytes(32),
                            personalization=b"code-offset")
        # Draw the random codeword from the DRBG for reproducibility.
        message_bits = np.frombuffer(
            drbg.generate(self.code.k), dtype=np.uint8
        ) & 1
        codeword = self.code.encode(message_bits.astype(np.uint8))
        offset = w ^ codeword
        tag = self._tag(w, offset) if self.robust else None
        return CodeOffsetSketchValue(offset=offset, tag=tag)

    def recover(self, w_prime: np.ndarray, value: CodeOffsetSketchValue) -> np.ndarray:
        """``Rec(w', s)``; corrects up to ``t`` bit flips between ``w`` and ``w'``."""
        w_prime = self._check_bits(w_prime, "reading")
        offset = self._check_bits(value.offset, "offset")
        shifted = w_prime ^ offset
        try:
            codeword, _ = self.code.decode(shifted)
        except DecodingError as exc:
            raise RecoveryError(f"code-offset decoding failed: {exc}") from exc
        recovered = codeword ^ offset
        if self.robust:
            if value.tag is None:
                raise TamperDetectedError("robust sketch is missing its tag")
            if not constant_time_equal(self._tag(recovered, offset), value.tag):
                raise TamperDetectedError("code-offset tag mismatch")
        return recovered

    def entropy_loss_bits(self) -> int:
        """Upper bound on entropy loss: the redundancy ``n - k``."""
        return self.code.n - self.code.k
