"""Baseline fuzzy extractors from the paper's related work.

* Code-offset / fuzzy commitment (Juels-Wattenberg) over the Hamming
  metric, BCH-backed — the "existing fuzzy extractor" in the
  identification benchmarks.
* Fuzzy vault (Juels-Sudan) over the set-difference metric, RS-backed.
"""

from repro.baselines.block_code_offset import (
    ConcatenatedCodeOffsetExtractor,
    ConcatenatedHelperData,
)
from repro.baselines.code_offset import CodeOffsetSketch, CodeOffsetSketchValue
from repro.baselines.fuzzy_vault import FuzzyVault, Vault
from repro.baselines.hamming_extractor import HammingFuzzyExtractor, HammingHelperData

__all__ = [
    "ConcatenatedCodeOffsetExtractor",
    "ConcatenatedHelperData",
    "CodeOffsetSketch",
    "CodeOffsetSketchValue",
    "FuzzyVault",
    "Vault",
    "HammingFuzzyExtractor",
    "HammingHelperData",
]
