"""Concatenated-code fuzzy extractor for long binary templates.

A real iris code is ~2048 bits with genuine comparisons flipping 10-15% of
them — beyond any single practical BCH code's radius.  Deployed iris
cryptosystems (Hao-Anderson-Daugman style) therefore use a *concatenated*
code:

* an **inner** binary BCH code protects each fixed-size block against
  bit flips;
* an **outer** Reed-Solomon code over GF(2^8) spans the blocks, so a
  bounded number of blocks may fail inner decoding entirely (burst noise,
  eyelid occlusion) and still be corrected as symbol errors.

Construction (``Gen``):

1. draw a random outer RS message (the key material, ``k_outer`` bytes)
   and RS-encode it to ``n_blocks`` symbols;
2. per block, embed the block's symbol in the first 8 bits of a random
   inner BCH message, encode, and publish ``offset = block XOR codeword``;
3. output ``R = Ext(outer message; seed)`` plus a commitment tag so
   ``Rep`` can verify outer decoding.

``Rep`` decodes each block's inner code, re-assembles the (possibly
corrupted) outer word, RS-decodes, checks the commitment, and re-extracts
``R``.  Up to ``t_inner`` bit flips per block and up to
``(n_blocks - k_outer) / 2`` wholly-failed blocks are tolerated.

This gives the identification benchmarks a *realistic* Hamming baseline:
full 2048-bit iris codes at Daugman-like noise, not toy 255-bit slices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding.bch import BchCode
from repro.coding.reed_solomon import RsCode
from repro.crypto.extractors import StrongExtractor, default_extractor
from repro.crypto.hashing import constant_time_equal, hash_concat
from repro.crypto.prng import HmacDrbg
from repro.exceptions import DecodingError, ParameterError, RecoveryError

_COMMIT_LABEL = b"repro-concat-code-offset-v1"
_SYMBOL_BITS = 8


@dataclass(frozen=True)
class ConcatenatedHelperData:
    """Public helper data: per-block offsets, commitment, extractor seed."""

    offsets: np.ndarray           # (n_blocks, inner_n) uint8
    commitment: bytes             # H(outer message)
    seed: bytes

    def storage_bits(self) -> int:
        """Wire size of the helper data in bits."""
        return (int(self.offsets.size)
                + 8 * len(self.commitment)
                + 8 * len(self.seed))


class ConcatenatedCodeOffsetExtractor:
    """Fuzzy extractor over long binary templates via BCH ∘ RS.

    Parameters
    ----------
    inner:
        Per-block binary BCH code; needs ``inner.k >= 8`` to carry one
        outer symbol per block.
    n_blocks:
        Number of blocks; the template length is ``inner.n * n_blocks``.
    outer_k:
        Outer RS dimension (key symbols).  The outer code corrects
        ``(n_blocks - outer_k) // 2`` failed blocks.
    """

    def __init__(self, inner: BchCode, n_blocks: int, outer_k: int,
                 extractor: StrongExtractor | None = None) -> None:
        if inner.k < _SYMBOL_BITS:
            raise ParameterError(
                f"inner code must carry >= {_SYMBOL_BITS} message bits, "
                f"got k={inner.k}"
            )
        if n_blocks < 2 or n_blocks > 255:
            raise ParameterError("n_blocks must be in [2, 255]")
        if not 0 < outer_k < n_blocks:
            raise ParameterError("need 0 < outer_k < n_blocks")
        self.inner = inner
        self.n_blocks = n_blocks
        self.outer = RsCode(8, outer_k, shorten=255 - n_blocks)
        self.extractor = extractor if extractor is not None else default_extractor()

    @property
    def template_bits(self) -> int:
        return self.inner.n * self.n_blocks

    @property
    def inner_error_capacity(self) -> int:
        """Correctable bit flips per block."""
        return self.inner.t

    @property
    def block_failure_capacity(self) -> int:
        """Blocks that may fail inner decoding entirely."""
        return self.outer.t

    @property
    def secret_entropy_bits(self) -> int:
        """Entropy of the outer message (the key material)."""
        return self.outer.k * _SYMBOL_BITS

    # -- helpers ------------------------------------------------------------------

    def _check_template(self, w: np.ndarray) -> np.ndarray:
        arr = np.asarray(w)
        if arr.ndim != 1 or arr.shape[0] != self.template_bits:
            raise ParameterError(
                f"template must be 1-D of {self.template_bits} bits, "
                f"got {arr.shape}"
            )
        if not np.all((arr == 0) | (arr == 1)):
            raise ParameterError("template must contain only 0/1 values")
        return arr.astype(np.uint8)

    @staticmethod
    def _symbol_to_bits(symbol: int) -> np.ndarray:
        return np.array([(symbol >> (7 - b)) & 1 for b in range(8)],
                        dtype=np.uint8)

    @staticmethod
    def _bits_to_symbol(bits: np.ndarray) -> int:
        value = 0
        for b in bits[:8]:
            value = (value << 1) | int(b)
        return value

    def _commit(self, message: np.ndarray) -> bytes:
        return hash_concat([message.astype(np.uint8).tobytes()],
                           label=_COMMIT_LABEL)

    # -- Gen --------------------------------------------------------------------------

    def generate(self, w: np.ndarray, drbg: HmacDrbg | None = None,
                 ) -> tuple[bytes, ConcatenatedHelperData]:
        """``Gen(w) -> (R, P)``."""
        w = self._check_template(w)
        if drbg is None:
            drbg = HmacDrbg(np.random.default_rng().bytes(32),
                            personalization=b"concat-code-offset")
        seed = drbg.generate(self.extractor.seed_bytes)

        outer_message = np.frombuffer(
            drbg.generate(self.outer.k), dtype=np.uint8
        ).astype(np.int64)
        outer_codeword = self.outer.encode(outer_message)

        offsets = np.empty((self.n_blocks, self.inner.n), dtype=np.uint8)
        for index in range(self.n_blocks):
            block = w[index * self.inner.n: (index + 1) * self.inner.n]
            inner_message = np.frombuffer(
                drbg.generate(self.inner.k), dtype=np.uint8
            ) & 1
            inner_message = inner_message.astype(np.uint8)
            inner_message[:_SYMBOL_BITS] = self._symbol_to_bits(
                int(outer_codeword[index])
            )
            codeword = self.inner.encode(inner_message)
            offsets[index] = block ^ codeword

        secret = self.extractor.extract(
            outer_message.astype(np.uint8).tobytes(), seed
        )
        return secret, ConcatenatedHelperData(
            offsets=offsets,
            commitment=self._commit(outer_message),
            seed=seed,
        )

    # -- Rep --------------------------------------------------------------------------

    def reproduce(self, w_prime: np.ndarray,
                  helper: ConcatenatedHelperData) -> bytes:
        """``Rep(w', P) -> R``; raises :class:`RecoveryError` beyond capacity."""
        w_prime = self._check_template(w_prime)
        if helper.offsets.shape != (self.n_blocks, self.inner.n):
            raise ParameterError("helper offsets have the wrong shape")

        received = np.zeros(self.n_blocks, dtype=np.int64)
        for index in range(self.n_blocks):
            block = w_prime[index * self.inner.n: (index + 1) * self.inner.n]
            shifted = block ^ helper.offsets[index]
            try:
                codeword, _ = self.inner.decode(shifted)
            except DecodingError:
                # Failed block: leave symbol 0; the outer code treats the
                # (almost certainly wrong) symbol as an error.
                continue
            message = self.inner.extract_message(codeword)
            received[index] = self._bits_to_symbol(message)

        try:
            outer_codeword, _ = self.outer.decode(received)
        except DecodingError as exc:
            raise RecoveryError(
                f"outer RS decoding failed: {exc}"
            ) from exc
        outer_message = self.outer.extract_message(outer_codeword)
        if not constant_time_equal(self._commit(outer_message),
                                   helper.commitment):
            raise RecoveryError(
                "outer decoding produced a message failing the commitment "
                "(too many failed blocks or tampered helper data)"
            )
        return self.extractor.extract(
            outer_message.astype(np.uint8).tobytes(), helper.seed
        )
