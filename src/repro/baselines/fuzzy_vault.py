"""The fuzzy vault (Juels-Sudan) over the set-difference metric.

Second baseline from the paper's related work (Section VIII, [17]).  A
secret polynomial ``p`` of degree ``< k`` over GF(2^m) is evaluated on the
user's feature set ``A`` (distinct field elements); the genuine points
``(x, p(x))`` are hidden among ``chaff`` points ``(x*, y*)`` with
``y* != p(x*)``.  A query set ``B`` unlocks the vault when ``|A ∩ B|`` is
large enough: the candidate points selected by ``B`` contain enough
genuine evaluations for Reed-Solomon-style decoding (Berlekamp-Welch) to
recover ``p`` despite the chaff mismatches.

A hash commitment to the polynomial is stored alongside so unlocking can
*verify* recovery — without it, a failed unlock would silently return a
wrong polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coding import polynomial as poly
from repro.coding.gf2m import GF2m, get_field
from repro.coding.reed_solomon import berlekamp_welch
from repro.crypto.hashing import constant_time_equal, hash_concat
from repro.crypto.prng import HmacDrbg
from repro.exceptions import DecodingError, ParameterError, RecoveryError

_COMMIT_LABEL = b"repro-fuzzy-vault-v1"


@dataclass(frozen=True)
class Vault:
    """The public vault: shuffled points plus the polynomial commitment."""

    xs: np.ndarray
    ys: np.ndarray
    degree_bound: int          # k: polynomial has degree < k
    commitment: bytes

    def __len__(self) -> int:
        return len(self.xs)


class FuzzyVault:
    """Lock/unlock a secret polynomial under a feature *set*.

    Parameters
    ----------
    m:
        Field extension degree; features must be distinct ints in
        ``[0, 2^m)``.
    k:
        Secret length in field symbols (= polynomial coefficient count).
    n_chaff:
        Number of chaff points to add when locking.
    """

    def __init__(self, m: int, k: int, n_chaff: int) -> None:
        if k < 1:
            raise ParameterError("k must be >= 1")
        if n_chaff < 0:
            raise ParameterError("n_chaff must be >= 0")
        self.field: GF2m = get_field(m)
        self.k = k
        self.n_chaff = n_chaff

    # -- helpers ---------------------------------------------------------------

    def _check_features(self, features: np.ndarray, what: str) -> list[int]:
        arr = np.asarray(features, dtype=np.int64)
        if arr.ndim != 1:
            raise ParameterError(f"{what} must be 1-D, got shape {arr.shape}")
        values = [int(x) for x in arr]
        if len(set(values)) != len(values):
            raise ParameterError(f"{what} must be a set (distinct elements)")
        if any(not 0 <= x < self.field.order for x in values):
            raise ParameterError(f"{what} contains out-of-field elements")
        return values

    def _commit(self, coefficients: list[int]) -> bytes:
        encoded = b"".join(c.to_bytes(4, "big") for c in coefficients)
        return hash_concat([encoded], label=_COMMIT_LABEL)

    # -- lock --------------------------------------------------------------------

    def lock(self, features: np.ndarray, secret: list[int],
             drbg: HmacDrbg | None = None) -> Vault:
        """Hide ``secret`` (k field symbols) under the feature set."""
        feature_list = self._check_features(features, "features")
        if len(secret) != self.k:
            raise ParameterError(
                f"secret must be {self.k} field symbols, got {len(secret)}"
            )
        if any(not 0 <= c < self.field.order for c in secret):
            raise ParameterError("secret symbols out of field range")
        if len(feature_list) < self.k:
            raise ParameterError(
                f"need at least k={self.k} features to lock, got {len(feature_list)}"
            )
        if drbg is None:
            drbg = HmacDrbg(np.random.default_rng().bytes(32),
                            personalization=b"fuzzy-vault")

        coefficients = list(secret)  # low-order-first polynomial
        genuine = [(x, poly.evaluate(self.field, coefficients, x))
                   for x in feature_list]

        used_x = set(feature_list)
        chaff: list[tuple[int, int]] = []
        if len(used_x) + self.n_chaff > self.field.order:
            raise ParameterError(
                "field too small for requested chaff count; increase m"
            )
        while len(chaff) < self.n_chaff:
            x = drbg.random_int(self.field.order)
            if x in used_x:
                continue
            y_true = poly.evaluate(self.field, coefficients, x)
            y = drbg.random_int(self.field.order)
            if y == y_true:
                continue  # chaff must not lie on the polynomial
            used_x.add(x)
            chaff.append((x, y))

        points = genuine + chaff
        order = np.argsort(
            np.frombuffer(drbg.generate(4 * len(points)), dtype=np.uint32)
        )
        xs = np.array([points[i][0] for i in order], dtype=np.int64)
        ys = np.array([points[i][1] for i in order], dtype=np.int64)
        return Vault(xs=xs, ys=ys, degree_bound=self.k,
                     commitment=self._commit(coefficients))

    # -- unlock -------------------------------------------------------------------

    def unlock(self, features: np.ndarray, vault: Vault) -> list[int]:
        """Recover the secret from a close feature set.

        Selects vault points whose x-coordinate appears in the query set
        and runs Berlekamp-Welch; chaff collisions act as errors.  Raises
        :class:`RecoveryError` when the overlap is insufficient or the
        recovered polynomial fails the commitment check.
        """
        query = set(self._check_features(features, "query features"))
        selected = [
            (int(x), int(y)) for x, y in zip(vault.xs, vault.ys) if int(x) in query
        ]
        if len(selected) < vault.degree_bound:
            raise RecoveryError(
                f"only {len(selected)} candidate points; "
                f"need at least {vault.degree_bound}"
            )
        xs = [x for x, _ in selected]
        ys = [y for _, y in selected]
        try:
            coefficients = berlekamp_welch(
                self.field, xs, ys, k=vault.degree_bound
            )
        except DecodingError as exc:
            raise RecoveryError(f"vault decoding failed: {exc}") from exc
        # Degree < k always holds from the decoder; pad to exactly k symbols.
        coefficients = coefficients + [0] * (vault.degree_bound - len(coefficients))
        if not constant_time_equal(self._commit(coefficients), vault.commitment):
            raise RecoveryError("recovered polynomial fails commitment check")
        return coefficients

    def secret_from_bytes(self, data: bytes) -> list[int]:
        """Split bytes into ``k`` field symbols (for locking derived keys)."""
        symbol_bytes = max(1, (self.field.m + 7) // 8)
        needed = self.k * symbol_bytes
        padded = data[:needed].ljust(needed, b"\x00")
        symbols = []
        for i in range(self.k):
            chunk = padded[i * symbol_bytes: (i + 1) * symbol_bytes]
            symbols.append(int.from_bytes(chunk, "big") % self.field.order)
        return symbols
