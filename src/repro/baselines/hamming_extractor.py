"""A complete Hamming-metric fuzzy extractor (the "existing scheme").

Composes the code-offset sketch with a strong extractor via the same
generic construction the paper uses for its own scheme, yielding the
``(Gen, Rep)`` interface of Definition 2 over binary templates.

This is the stand-in for "existing fuzzy extractor schemes" in the
identification benchmarks: in the normal approach (paper Fig. 2), the
server must run this extractor's ``Rep`` once per enrolled user because
helper data reveals nothing to search by — which is precisely the ``O(N)``
the proposed scheme eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.code_offset import CodeOffsetSketch, CodeOffsetSketchValue
from repro.coding.bch import BchCode
from repro.crypto.extractors import StrongExtractor, default_extractor
from repro.crypto.prng import HmacDrbg


@dataclass(frozen=True)
class HammingHelperData:
    """Helper data ``P = (offset, tag, seed)`` for the Hamming extractor."""

    offset: np.ndarray
    tag: bytes | None
    seed: bytes

    def storage_bits(self) -> int:
        """Wire size in bits (one bit per offset position + tag + seed)."""
        tag_bits = 8 * len(self.tag) if self.tag else 0
        return len(self.offset) + tag_bits + 8 * len(self.seed)


class HammingFuzzyExtractor:
    """``(Gen, Rep)`` over binary strings with BCH error correction."""

    def __init__(self, code: BchCode,
                 extractor: StrongExtractor | None = None,
                 robust: bool = True) -> None:
        self.sketcher = CodeOffsetSketch(code, robust=robust)
        self.extractor = extractor if extractor is not None else default_extractor()

    @property
    def n(self) -> int:
        return self.sketcher.n

    @property
    def t(self) -> int:
        return self.sketcher.t

    def generate(self, w: np.ndarray,
                 drbg: HmacDrbg | None = None) -> tuple[bytes, HammingHelperData]:
        """``Gen(w) -> (R, P)``."""
        if drbg is None:
            drbg = HmacDrbg(np.random.default_rng().bytes(32),
                            personalization=b"hamming-fe")
        seed = drbg.generate(self.extractor.seed_bytes)
        value = self.sketcher.sketch(w, drbg)
        secret = self.extractor.extract(
            np.asarray(w, dtype=np.uint8).tobytes(), seed
        )
        return secret, HammingHelperData(
            offset=value.offset, tag=value.tag, seed=seed
        )

    def reproduce(self, w_prime: np.ndarray, helper: HammingHelperData) -> bytes:
        """``Rep(w', P) -> R``; raises ``RecoveryError`` beyond ``t`` flips."""
        value = CodeOffsetSketchValue(offset=helper.offset, tag=helper.tag)
        recovered = self.sketcher.recover(w_prime, value)
        return self.extractor.extract(recovered.tobytes(), helper.seed)
