"""Dense polynomial arithmetic over GF(2^m).

Coefficients are stored low-order first (``coeffs[i]`` multiplies ``x^i``)
in plain Python lists of field elements.  The degrees involved in BCH and
Reed-Solomon decoding are small (at most the code length), so clarity is
preferred over numpy here; hot inner loops that matter for benchmarks
(syndrome computation, Chien search) are vectorised in the codecs instead.
"""

from __future__ import annotations

from repro.coding.gf2m import GF2m

Poly = list[int]


def normalize(poly: Poly) -> Poly:
    """Strip trailing zero coefficients; the zero polynomial becomes ``[]``."""
    end = len(poly)
    while end > 0 and poly[end - 1] == 0:
        end -= 1
    return poly[:end]


def degree(poly: Poly) -> int:
    """Degree of the polynomial; the zero polynomial has degree -1."""
    trimmed = normalize(poly)
    return len(trimmed) - 1


def add(field: GF2m, a: Poly, b: Poly) -> Poly:
    """Polynomial addition (XOR of coefficients in characteristic 2)."""
    if len(a) < len(b):
        a, b = b, a
    out = list(a)
    for i, coeff in enumerate(b):
        out[i] ^= coeff
    return normalize(out)


def scale(field: GF2m, poly: Poly, scalar: int) -> Poly:
    """Multiply every coefficient by ``scalar``."""
    if scalar == 0:
        return []
    return normalize([field.mul(c, scalar) for c in poly])


def mul(field: GF2m, a: Poly, b: Poly) -> Poly:
    """Polynomial multiplication (schoolbook; degrees here are small)."""
    a = normalize(a)
    b = normalize(b)
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            if cb:
                out[i + j] ^= field.mul(ca, cb)
    return out


def shift(poly: Poly, amount: int) -> Poly:
    """Multiply by ``x**amount``."""
    poly = normalize(poly)
    if not poly:
        return []
    return [0] * amount + poly


def divmod_poly(field: GF2m, dividend: Poly, divisor: Poly) -> tuple[Poly, Poly]:
    """Polynomial long division; returns ``(quotient, remainder)``."""
    dividend = normalize(dividend)
    divisor = normalize(divisor)
    if not divisor:
        raise ZeroDivisionError("polynomial division by zero")
    remainder = list(dividend)
    quotient = [0] * max(0, len(dividend) - len(divisor) + 1)
    inv_lead = field.inv(divisor[-1])
    for i in range(len(dividend) - len(divisor), -1, -1):
        coeff = field.mul(remainder[i + len(divisor) - 1], inv_lead)
        if coeff == 0:
            continue
        quotient[i] = coeff
        for j, dc in enumerate(divisor):
            if dc:
                remainder[i + j] ^= field.mul(dc, coeff)
    return normalize(quotient), normalize(remainder)


def mod(field: GF2m, dividend: Poly, divisor: Poly) -> Poly:
    """Polynomial remainder."""
    return divmod_poly(field, dividend, divisor)[1]


def evaluate(field: GF2m, poly: Poly, x: int) -> int:
    """Evaluate at a single point with Horner's rule."""
    result = 0
    for coeff in reversed(normalize(poly)):
        result = field.mul(result, x) ^ coeff
    return result


def derivative(field: GF2m, poly: Poly) -> Poly:
    """Formal derivative.

    In characteristic 2, even-power terms vanish and odd-power terms keep
    their coefficient: ``d/dx x^i = i * x^(i-1)`` with ``i mod 2``.
    """
    return normalize([
        poly[i] if i % 2 == 1 else 0
        for i in range(1, len(poly))
    ])


def lagrange_interpolate(field: GF2m, xs: list[int], ys: list[int]) -> Poly:
    """Unique polynomial of degree < len(xs) through the given points.

    Used by the fuzzy-vault decoder to reconstruct the secret polynomial
    from an unlocking set.  Raises :class:`ValueError` on duplicate x.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must be distinct")
    result: Poly = []
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        if yi == 0:
            continue
        # Basis polynomial prod_{j != i} (x - xj) / (xi - xj).
        basis: Poly = [1]
        denom = 1
        for j, xj in enumerate(xs):
            if j == i:
                continue
            basis = mul(field, basis, [xj, 1])  # (x + xj) == (x - xj) in char 2
            denom = field.mul(denom, xi ^ xj)
        coeff = field.div(yi, denom)
        result = add(field, result, scale(field, basis, coeff))
    return result


def monic(field: GF2m, poly: Poly) -> Poly:
    """Scale so the leading coefficient is 1."""
    poly = normalize(poly)
    if not poly:
        return poly
    return scale(field, poly, field.inv(poly[-1]))


def gcd_poly(field: GF2m, a: Poly, b: Poly) -> Poly:
    """Monic polynomial greatest common divisor (Euclid)."""
    a, b = normalize(a), normalize(b)
    while b:
        a, b = b, mod(field, a, b)
    return monic(field, a)
