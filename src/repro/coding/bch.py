"""Binary BCH codes: construction, systematic encoding, and decoding.

BCH codes back the *code-offset* secure sketch (Juels-Wattenberg fuzzy
commitment), which is the canonical Hamming-metric fuzzy extractor this
paper's Chebyshev-metric scheme is compared against (Section VIII).

A primitive binary BCH code of length ``n = 2^m - 1`` and designed error
capacity ``t`` is built from the generator polynomial

    g(x) = lcm( M_1(x), M_2(x), ..., M_2t(x) )

where ``M_i`` is the minimal polynomial of ``alpha^i`` over GF(2).  The
dimension is ``k = n - deg(g)``.  Decoding is the classic pipeline:
syndromes -> Berlekamp-Massey error locator -> Chien search -> bit flips.

Shortening is supported: a ``shorten=s`` code transmits ``n - s`` bits and
encodes ``k - s`` message bits by fixing the top ``s`` message bits to
zero.  The code-offset sketch uses this to match arbitrary biometric
template lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.coding import polynomial as poly
from repro.coding.gf2m import GF2m, get_field
from repro.exceptions import DecodingError, ParameterError


def _cyclotomic_coset(i: int, n: int) -> frozenset[int]:
    """The 2-cyclotomic coset of ``i`` modulo ``n``: {i, 2i, 4i, ...}."""
    coset = set()
    current = i % n
    while current not in coset:
        coset.add(current)
        current = (current * 2) % n
    return frozenset(coset)


def _minimal_polynomial(field: GF2m, coset: frozenset[int]) -> list[int]:
    """Minimal polynomial over GF(2) of ``alpha^i`` for ``i`` in the coset.

    ``M(x) = prod_{j in coset} (x - alpha^j)`` computed over GF(2^m); the
    result always has coefficients in {0, 1}.
    """
    result: list[int] = [1]
    for j in coset:
        result = poly.mul(field, result, [field.alpha_power(j), 1])
    if any(c not in (0, 1) for c in result):
        raise AssertionError("minimal polynomial has non-binary coefficients")
    return result


@dataclass(frozen=True)
class BchSpec:
    """Resolved parameters of a (possibly shortened) BCH code."""

    m: int
    n: int          # transmitted length (after shortening)
    k: int          # message length (after shortening)
    t: int          # designed error-correction capacity
    shorten: int
    generator_degree: int


class BchCode:
    """A binary primitive (optionally shortened) BCH code.

    Parameters
    ----------
    m:
        Field extension degree; the parent code has length ``2^m - 1``.
    t:
        Designed number of correctable bit errors.
    shorten:
        Number of leading message bits fixed to zero (default 0).

    Messages and codewords are numpy uint8 arrays of 0/1 bits.
    """

    def __init__(self, m: int, t: int, shorten: int = 0) -> None:
        if t < 1:
            raise ParameterError("t must be >= 1")
        field = get_field(m)
        parent_n = field.order - 1
        if 2 * t >= parent_n:
            raise ParameterError(
                f"designed distance 2t+1={2 * t + 1} exceeds code length {parent_n}"
            )

        # Generator = product of distinct minimal polynomials of alpha^1..2t.
        seen: set[frozenset[int]] = set()
        generator: list[int] = [1]
        for i in range(1, 2 * t + 1):
            coset = _cyclotomic_coset(i, parent_n)
            if coset in seen:
                continue
            seen.add(coset)
            generator = poly.mul(field, generator, _minimal_polynomial(field, coset))

        parent_k = parent_n - poly.degree(generator)
        if parent_k <= 0:
            raise ParameterError(
                f"BCH(m={m}, t={t}) has no information bits (k={parent_k})"
            )
        if not 0 <= shorten < parent_k:
            raise ParameterError(
                f"shorten must be in [0, {parent_k}), got {shorten}"
            )

        self.field = field
        self.generator = generator
        self.spec = BchSpec(
            m=m,
            n=parent_n - shorten,
            k=parent_k - shorten,
            t=t,
            shorten=shorten,
            generator_degree=poly.degree(generator),
        )
        self._parent_n = parent_n
        self._parity_len = poly.degree(generator)

    # -- convenience ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self.spec.n

    @property
    def k(self) -> int:
        return self.spec.k

    @property
    def t(self) -> int:
        return self.spec.t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.spec
        return f"BchCode(n={s.n}, k={s.k}, t={s.t}, m={s.m}, shorten={s.shorten})"

    # -- encoding --------------------------------------------------------------

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Systematically encode ``k`` message bits into ``n`` codeword bits.

        Layout: ``codeword = [parity | message]`` — the message occupies the
        high-order coefficient positions, as in the classic systematic
        construction ``c(x) = m(x) x^(n-k) + (m(x) x^(n-k) mod g(x))``.
        """
        message = self._check_bits(message, self.spec.k, "message")
        # Multiply by x^(n-k): message bits sit above the parity positions.
        shifted = [0] * self._parity_len + [int(b) for b in message]
        remainder = poly.mod(self.field, shifted, self.generator)
        parity = np.zeros(self._parity_len, dtype=np.uint8)
        for i, c in enumerate(remainder):
            parity[i] = c
        return np.concatenate([parity, message.astype(np.uint8)])

    # -- decoding --------------------------------------------------------------

    def decode(self, received: np.ndarray) -> tuple[np.ndarray, int]:
        """Correct up to ``t`` bit errors.

        Returns ``(codeword, error_count)`` where ``codeword`` is the
        corrected word.  Raises :class:`DecodingError` when the error
        pattern is beyond the decoding radius (detected by Berlekamp-Massey
        degree mismatch or a failed Chien search).
        """
        received = self._check_bits(received, self.spec.n, "received word")
        # Re-embed a shortened word into the parent code with leading zeros.
        if self.spec.shorten:
            full = np.concatenate([
                received,
                np.zeros(self.spec.shorten, dtype=np.uint8),
            ])
        else:
            full = received

        syndromes = self._syndromes(full)
        if not any(syndromes):
            return received.copy(), 0

        locator = self._berlekamp_massey(syndromes)
        n_errors = poly.degree(locator)
        if n_errors > self.spec.t:
            raise DecodingError(
                f"error locator degree {n_errors} exceeds capacity t={self.spec.t}"
            )
        positions = self._chien_search(locator)
        if len(positions) != n_errors:
            raise DecodingError(
                "Chien search found "
                f"{len(positions)} roots for a degree-{n_errors} locator"
            )
        corrected = full.copy()
        for pos in positions:
            if pos >= self._parent_n - self.spec.shorten:
                # An "error" inside the shortened (always-zero) region means
                # the true error pattern was outside the decoding radius.
                raise DecodingError("error located in shortened region")
            corrected[pos] ^= 1
        result = corrected[: self.spec.n]
        # Confirm the corrected word is a codeword (guards against
        # miscorrection for weight > t patterns that land inside radius).
        if any(self._syndromes(corrected)):
            raise DecodingError("corrected word is not a codeword")
        return result, n_errors

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Read the systematic message bits back out of a codeword."""
        codeword = self._check_bits(codeword, self.spec.n, "codeword")
        return codeword[self._parity_len:].copy()

    def is_codeword(self, word: np.ndarray) -> bool:
        """True iff ``word`` has all-zero syndromes."""
        word = self._check_bits(word, self.spec.n, "word")
        if self.spec.shorten:
            word = np.concatenate([
                word, np.zeros(self.spec.shorten, dtype=np.uint8)
            ])
        return not any(self._syndromes(word))

    def random_codeword(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly random codeword (encode random message bits)."""
        message = rng.integers(0, 2, size=self.spec.k, dtype=np.uint8)
        return self.encode(message)

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _check_bits(bits: np.ndarray, expected_len: int, what: str) -> np.ndarray:
        arr = np.asarray(bits)
        if arr.ndim != 1 or arr.shape[0] != expected_len:
            raise ParameterError(
                f"{what} must be a 1-D array of {expected_len} bits, "
                f"got shape {arr.shape}"
            )
        if not np.all((arr == 0) | (arr == 1)):
            raise ParameterError(f"{what} must contain only 0/1 values")
        return arr.astype(np.uint8)

    def _syndromes(self, word: np.ndarray) -> list[int]:
        """Syndromes ``S_j = r(alpha^j)`` for ``j = 1 .. 2t`` (vectorised)."""
        field = self.field
        support = np.nonzero(word)[0]
        syndromes: list[int] = []
        if len(support) == 0:
            return [0] * (2 * self.spec.t)
        logs = support.astype(np.int64)
        for j in range(1, 2 * self.spec.t + 1):
            # r(alpha^j) = XOR over set bits i of alpha^(i*j).
            powers = (logs * j) % (self._parent_n)
            values = field._exp[powers]
            acc = 0
            for v in values:
                acc ^= int(v)
            syndromes.append(acc)
        return syndromes

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Berlekamp-Massey over GF(2^m); returns the error locator sigma."""
        field = self.field
        sigma: list[int] = [1]
        prev_sigma: list[int] = [1]
        length = 0
        prev_discrepancy = 1
        shift_amount = 1
        for idx, s in enumerate(syndromes):
            # Discrepancy d = S_idx + sum sigma_i * S_(idx-i).
            d = s
            for i in range(1, length + 1):
                if i < len(sigma) and sigma[i] and idx - i >= 0:
                    d ^= field.mul(sigma[i], syndromes[idx - i])
            if d == 0:
                shift_amount += 1
                continue
            correction = poly.scale(
                field,
                poly.shift(prev_sigma, shift_amount),
                field.div(d, prev_discrepancy),
            )
            new_sigma = poly.add(field, sigma, correction)
            if 2 * length <= idx:
                prev_sigma, sigma = sigma, new_sigma
                prev_discrepancy = d
                length = idx + 1 - length
                shift_amount = 1
            else:
                sigma = new_sigma
                shift_amount += 1
        return sigma

    def _chien_search(self, locator: list[int]) -> list[int]:
        """Find error positions: ``i`` such that ``sigma(alpha^-i) = 0``.

        Evaluates the locator at every ``alpha^j`` in one vectorised sweep;
        a root at ``alpha^j`` marks an error at position ``(n - j) mod n``.
        """
        field = self.field
        n = self._parent_n
        points = field._exp[np.arange(n)]
        values = field.eval_poly_at_points(
            np.array(locator, dtype=np.int64), points
        )
        roots = np.nonzero(values == 0)[0]
        return sorted(int((n - j) % n) for j in roots)


@lru_cache(maxsize=32)
def design_bch(min_n: int, min_t: int) -> tuple[int, int]:
    """Pick the smallest ``(m, t)`` giving length >= min_n and capacity >= min_t.

    Convenience for the code-offset sketch: callers know the template
    length and the noise level, not BCH internals.
    """
    for m in range(4, 17):
        if (1 << m) - 1 >= min_n:
            return m, min_t
    raise ParameterError(f"no supported BCH length >= {min_n}")
