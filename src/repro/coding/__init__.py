"""Error-correcting-code substrate (GF(2^m), BCH, Reed-Solomon).

These codes back the *baseline* fuzzy extractors (code-offset / fuzzy
vault) that the paper's Chebyshev-metric scheme is positioned against.
"""

from repro.coding.bch import BchCode, BchSpec, design_bch
from repro.coding.gf2m import GF2m, PRIMITIVE_POLYNOMIALS, get_field
from repro.coding.reed_solomon import RsCode, berlekamp_welch

__all__ = [
    "BchCode",
    "BchSpec",
    "design_bch",
    "GF2m",
    "PRIMITIVE_POLYNOMIALS",
    "get_field",
    "RsCode",
    "berlekamp_welch",
]
