"""Finite-field arithmetic over GF(2^m).

Substrate for the BCH and Reed-Solomon codecs, which in turn back the
*baseline* fuzzy extractors this reproduction compares against (the
code-offset / fuzzy-commitment construction of Juels-Wattenberg and the
fuzzy vault of Juels-Sudan — paper Section VIII).

Elements are represented as integers in ``[0, 2^m)`` whose bits are the
polynomial coefficients over GF(2).  Multiplication and inversion go
through log/antilog tables built once per field, giving O(1) operations
after O(2^m) setup — the classic software trade-off for m <= 16.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomials (as bit masks including the leading term) for each
#: supported extension degree.  Source: standard tables (e.g. Lin & Costello
#: appendix); primitivity is re-verified by ``tests/coding/test_gf2m.py``.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    2: 0b111,                # x^2 + x + 1
    3: 0b1011,               # x^3 + x + 1
    4: 0b10011,              # x^4 + x + 1
    5: 0b100101,             # x^5 + x^2 + 1
    6: 0b1000011,            # x^6 + x + 1
    7: 0b10001001,           # x^7 + x^3 + 1
    8: 0b100011101,          # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,         # x^9 + x^4 + 1
    10: 0b10000001001,       # x^10 + x^3 + 1
    11: 0b100000000101,      # x^11 + x^2 + 1
    12: 0b1000001010011,     # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,    # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,   # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011, # x^16 + x^12 + x^3 + x + 1
}

_FIELD_CACHE: dict[tuple[int, int], "GF2m"] = {}


class GF2m:
    """The field GF(2^m) with log/antilog table arithmetic.

    Use :func:`get_field` rather than the constructor so table construction
    is amortised across the process.
    """

    def __init__(self, m: int, primitive_poly: int | None = None) -> None:
        if not 2 <= m <= 16:
            raise ValueError("m must be between 2 and 16")
        poly = primitive_poly if primitive_poly is not None else PRIMITIVE_POLYNOMIALS[m]
        if poly.bit_length() != m + 1:
            raise ValueError(
                f"primitive polynomial must have degree {m}, "
                f"got degree {poly.bit_length() - 1}"
            )
        self.m = m
        self.order = 1 << m
        self.primitive_poly = poly

        # Build antilog (powers of alpha) and log tables by repeated
        # multiplication by alpha = x, reducing modulo the field polynomial.
        exp = np.zeros(2 * self.order, dtype=np.int64)
        log = np.zeros(self.order, dtype=np.int64)
        value = 1
        for power in range(self.order - 1):
            exp[power] = value
            log[value] = power
            value <<= 1
            if value & self.order:
                value ^= poly
            # alpha must have full order 2^m - 1: returning to 1 early (an
            # irreducible-but-imprimitive polynomial) or hitting 0 (a
            # reducible polynomial with x as zero divisor) disqualifies it.
            if value == 1 and power < self.order - 2:
                raise ValueError(
                    f"polynomial {poly:#x} is not primitive for m={m}"
                )
            if value == 0:
                raise ValueError(
                    f"polynomial {poly:#x} is not primitive for m={m}"
                )
        if value != 1:
            raise ValueError(f"polynomial {poly:#x} is not primitive for m={m}")
        # Duplicate the table so products of logs never need a modulo.
        exp[self.order - 1: 2 * (self.order - 1)] = exp[: self.order - 1]
        self._exp = exp
        self._log = log

    # -- scalar operations ---------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Addition = XOR in characteristic 2 (same as subtraction)."""
        return a ^ b

    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on 0."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        return int(self._exp[(self.order - 1) - self._log[a]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises on division by zero."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return int(self._exp[self._log[a] - self._log[b] + (self.order - 1)])

    def pow(self, a: int, exponent: int) -> int:
        """``a ** exponent`` with negative exponents via inversion."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("0 has no negative powers")
            return 0
        log_a = int(self._log[a])
        reduced = (log_a * exponent) % (self.order - 1)
        return int(self._exp[reduced])

    def alpha_power(self, power: int) -> int:
        """Return ``alpha ** power`` for the fixed primitive element alpha."""
        return int(self._exp[power % (self.order - 1)])

    def log_alpha(self, a: int) -> int:
        """Discrete log base alpha; raises on 0."""
        if a == 0:
            raise ValueError("0 has no discrete logarithm")
        return int(self._log[a])

    # -- vector operations (numpy) --------------------------------------------

    def mul_vector(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise product of two (broadcastable) arrays of elements."""
        a, b = np.broadcast_arrays(
            np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)
        )
        out = np.zeros(a.shape, dtype=np.int64)
        nonzero = (a != 0) & (b != 0)
        if np.any(nonzero):
            out[nonzero] = self._exp[self._log[a[nonzero]] + self._log[b[nonzero]]]
        return out

    def eval_poly_at_points(self, coeffs: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Evaluate a polynomial (low-order-first coefficients) at many points.

        Horner's rule vectorised over the evaluation points; used by the
        Reed-Solomon encoder and the Chien search in the BCH decoder.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        points = np.asarray(points, dtype=np.int64)
        result = np.zeros_like(points)
        for c in coeffs[::-1]:
            result = self.mul_vector(result, points)
            result ^= int(c)
        return result

    def elements(self) -> np.ndarray:
        """All field elements ``0 .. 2^m - 1``."""
        return np.arange(self.order, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF2m(m={self.m}, poly={self.primitive_poly:#x})"


def get_field(m: int, primitive_poly: int | None = None) -> GF2m:
    """Return the (cached) field GF(2^m)."""
    poly = primitive_poly if primitive_poly is not None else PRIMITIVE_POLYNOMIALS.get(m, 0)
    key = (m, poly)
    if key not in _FIELD_CACHE:
        _FIELD_CACHE[key] = GF2m(m, primitive_poly)
    return _FIELD_CACHE[key]
