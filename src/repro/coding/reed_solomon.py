"""Reed-Solomon codes over GF(2^m).

Two decoders are provided because the two consumers have different shapes:

* :class:`RsCode` — the classic primitive-length code
  (``n = 2^m - 1``, optionally shortened) with syndrome decoding
  (Berlekamp-Massey + Chien + Forney).  Used directly by tests and
  available as a building block.
* :func:`berlekamp_welch` — decoding of a *generalised* RS (evaluation)
  code with arbitrary distinct evaluation points.  The fuzzy-vault
  baseline needs this: the unlocking set is whatever vault points matched
  the user's features, so the evaluation points vary per query.
"""

from __future__ import annotations

import numpy as np

from repro.coding import polynomial as poly
from repro.coding.gf2m import GF2m, get_field
from repro.exceptions import DecodingError, ParameterError


class RsCode:
    """A systematic Reed-Solomon code over GF(2^m).

    Symbols are field elements (ints in ``[0, 2^m)``).  The code has length
    ``n = 2^m - 1 - shorten`` and dimension ``k``; it corrects up to
    ``t = (n - k) // 2`` symbol errors.
    """

    def __init__(self, m: int, k: int, shorten: int = 0) -> None:
        field = get_field(m)
        parent_n = field.order - 1
        n = parent_n - shorten
        if not 0 < k < n:
            raise ParameterError(f"need 0 < k < n; got k={k}, n={n}")
        self.field = field
        self.m = m
        self.n = n
        self.k = k
        self.shorten = shorten
        self._parent_n = parent_n
        self._n_parity = n - k
        # Generator polynomial prod_{j=1..n-k} (x - alpha^j).
        generator: list[int] = [1]
        for j in range(1, self._n_parity + 1):
            generator = poly.mul(field, generator, [field.alpha_power(j), 1])
        self.generator = generator

    @property
    def t(self) -> int:
        """Symbol error-correction capacity."""
        return self._n_parity // 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RsCode(n={self.n}, k={self.k}, t={self.t}, m={self.m})"

    def _check_symbols(self, word: np.ndarray, expected: int, what: str) -> np.ndarray:
        arr = np.asarray(word, dtype=np.int64)
        if arr.ndim != 1 or arr.shape[0] != expected:
            raise ParameterError(
                f"{what} must be 1-D of length {expected}, got shape {arr.shape}"
            )
        if arr.min(initial=0) < 0 or arr.max(initial=0) >= self.field.order:
            raise ParameterError(f"{what} contains out-of-field symbols")
        return arr

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Systematic encoding: ``[parity | message]``."""
        message = self._check_symbols(message, self.k, "message")
        shifted = [0] * self._n_parity + [int(s) for s in message]
        remainder = poly.mod(self.field, shifted, self.generator)
        parity = np.zeros(self._n_parity, dtype=np.int64)
        for i, c in enumerate(remainder):
            parity[i] = c
        return np.concatenate([parity, message])

    def decode(self, received: np.ndarray) -> tuple[np.ndarray, int]:
        """Correct up to ``t`` symbol errors; returns ``(codeword, count)``."""
        received = self._check_symbols(received, self.n, "received word")
        if self.shorten:
            full = np.concatenate([
                received, np.zeros(self.shorten, dtype=np.int64)
            ])
        else:
            full = received

        syndromes = self._syndromes(full)
        if not any(syndromes):
            return received.copy(), 0

        locator = self._berlekamp_massey(syndromes)
        n_errors = poly.degree(locator)
        if n_errors > self.t:
            raise DecodingError(
                f"locator degree {n_errors} exceeds capacity t={self.t}"
            )
        positions = self._chien_search(locator)
        if len(positions) != n_errors:
            raise DecodingError("Chien search root count mismatch")

        magnitudes = self._forney(syndromes, locator, positions)
        corrected = full.copy()
        for pos, mag in zip(positions, magnitudes):
            if pos >= self._parent_n - self.shorten:
                raise DecodingError("error located in shortened region")
            corrected[pos] ^= mag
        if any(self._syndromes(corrected)):
            raise DecodingError("corrected word is not a codeword")
        return corrected[: self.n], n_errors

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Read the systematic message symbols out of a codeword."""
        codeword = self._check_symbols(codeword, self.n, "codeword")
        return codeword[self._n_parity:].copy()

    # -- internals -----------------------------------------------------------

    def _syndromes(self, word: np.ndarray) -> list[int]:
        field = self.field
        coeffs = np.asarray(word, dtype=np.int64)
        return [
            int(field.eval_poly_at_points(coeffs, np.array([field.alpha_power(j)]))[0])
            for j in range(1, self._n_parity + 1)
        ]

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        field = self.field
        sigma: list[int] = [1]
        prev_sigma: list[int] = [1]
        length = 0
        prev_discrepancy = 1
        shift_amount = 1
        for idx, s in enumerate(syndromes):
            d = s
            for i in range(1, length + 1):
                if i < len(sigma) and sigma[i] and idx - i >= 0:
                    d ^= field.mul(sigma[i], syndromes[idx - i])
            if d == 0:
                shift_amount += 1
                continue
            correction = poly.scale(
                field,
                poly.shift(prev_sigma, shift_amount),
                field.div(d, prev_discrepancy),
            )
            new_sigma = poly.add(field, sigma, correction)
            if 2 * length <= idx:
                prev_sigma, sigma = sigma, new_sigma
                prev_discrepancy = d
                length = idx + 1 - length
                shift_amount = 1
            else:
                sigma = new_sigma
                shift_amount += 1
        return sigma

    def _chien_search(self, locator: list[int]) -> list[int]:
        field = self.field
        n = self._parent_n
        points = field._exp[np.arange(n)]
        values = field.eval_poly_at_points(np.array(locator, dtype=np.int64), points)
        roots = np.nonzero(values == 0)[0]
        return sorted(int((n - j) % n) for j in roots)

    def _forney(self, syndromes: list[int], locator: list[int],
                positions: list[int]) -> list[int]:
        """Error magnitudes via the Forney algorithm (b = 1 convention)."""
        field = self.field
        # Omega(x) = S(x) * sigma(x) mod x^(2t'), with S(x) low-order-first.
        two_t = len(syndromes)
        omega = poly.mul(field, syndromes, locator)[:two_t]
        sigma_prime = poly.derivative(field, locator)
        magnitudes = []
        for pos in positions:
            x_inv = field.alpha_power(-pos % (self._parent_n))
            num = poly.evaluate(field, omega, x_inv)
            den = poly.evaluate(field, sigma_prime, x_inv)
            if den == 0:
                raise DecodingError("Forney derivative evaluated to zero")
            magnitudes.append(field.div(num, den))
        return magnitudes


def berlekamp_welch(field: GF2m, xs: list[int], ys: list[int], k: int,
                    max_errors: int | None = None) -> list[int]:
    """Decode a generalised RS (evaluation) code via Berlekamp-Welch.

    Given points ``(xs[i], ys[i])`` of which at most ``e`` are corrupted,
    finds the unique polynomial ``P`` with ``deg P < k`` agreeing with at
    least ``len(xs) - e`` points, provided ``len(xs) >= k + 2e``.

    The classic linear-algebra formulation: find ``E`` (monic, ``deg = e``)
    and ``Q`` (``deg < k + e``) with ``Q(xi) = yi * E(xi)`` for all ``i``;
    then ``P = Q / E``.  Errors are tried from the largest feasible ``e``
    downward so the caller does not need to know the exact error count.

    Raises :class:`DecodingError` when no consistent polynomial exists.
    """
    if len(xs) != len(ys):
        raise ParameterError("xs and ys must have equal length")
    if len(set(xs)) != len(xs):
        raise ParameterError("evaluation points must be distinct")
    n_points = len(xs)
    if n_points < k:
        raise DecodingError(f"need at least k={k} points, got {n_points}")

    e_cap = (n_points - k) // 2
    if max_errors is not None:
        e_cap = min(e_cap, max_errors)

    for e in range(e_cap, -1, -1):
        candidate = _try_berlekamp_welch(field, xs, ys, k, e)
        if candidate is None:
            continue
        # Verify agreement on >= n_points - e points (guards against
        # spurious solutions from the linear system).
        agree = sum(
            1 for x, y in zip(xs, ys) if poly.evaluate(field, candidate, x) == y
        )
        if agree >= n_points - e:
            return candidate
    raise DecodingError("Berlekamp-Welch found no consistent polynomial")


def _try_berlekamp_welch(field: GF2m, xs: list[int], ys: list[int],
                         k: int, e: int) -> list[int] | None:
    """One Berlekamp-Welch attempt at a fixed error count ``e``."""
    n_points = len(xs)
    q_len = k + e          # number of unknown Q coefficients
    unknowns = q_len + e   # E is monic of degree e: e unknown coefficients
    if n_points < unknowns:
        return None

    # Build the linear system: Q(xi) - yi*E(xi) = 0, i.e.
    # sum_j q_j xi^j  +  yi * sum_(l<e) E_l xi^l = yi * xi^e   (char 2).
    matrix = np.zeros((n_points, unknowns), dtype=np.int64)
    rhs = np.zeros(n_points, dtype=np.int64)
    for i, (x, y) in enumerate(zip(xs, ys)):
        x_pow = 1
        for j in range(q_len):
            matrix[i, j] = x_pow
            x_pow = field.mul(x_pow, x)
        x_pow = 1
        for l in range(e):
            matrix[i, q_len + l] = field.mul(y, x_pow)
            x_pow = field.mul(x_pow, x)
        rhs[i] = field.mul(y, field.pow(x, e))

    solution = _solve_gf(field, matrix, rhs)
    if solution is None:
        return None
    q_coeffs = [int(c) for c in solution[:q_len]]
    e_coeffs = [int(c) for c in solution[q_len:]] + [1]  # monic
    quotient, remainder = poly.divmod_poly(field, q_coeffs, e_coeffs)
    if poly.normalize(remainder):
        return None
    if poly.degree(quotient) >= k:
        return None
    return poly.normalize(quotient)


def _solve_gf(field: GF2m, matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Solve ``matrix @ x = rhs`` over GF(2^m) by Gaussian elimination.

    Returns one solution (free variables set to 0) or ``None`` when the
    system is inconsistent.
    """
    a = matrix.copy()
    b = rhs.copy()
    rows, cols = a.shape
    pivot_cols: list[int] = []
    row = 0
    for col in range(cols):
        pivot = None
        for r in range(row, rows):
            if a[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
            b[[row, pivot]] = b[[pivot, row]]
        inv = field.inv(int(a[row, col]))
        a[row] = field.mul_vector(a[row], np.full(cols, inv, dtype=np.int64))
        b[row] = field.mul(int(b[row]), inv)
        for r in range(rows):
            if r != row and a[r, col]:
                factor = int(a[r, col])
                a[r] ^= field.mul_vector(a[row], np.full(cols, factor, dtype=np.int64))
                b[r] ^= field.mul(int(b[row]), factor)
        pivot_cols.append(col)
        row += 1
        if row == rows:
            break
    # Inconsistency: zero row with nonzero rhs.
    for r in range(row, rows):
        if b[r] and not a[r].any():
            return None
    solution = np.zeros(cols, dtype=np.int64)
    for r, col in enumerate(pivot_cols):
        solution[col] = b[r]
    return solution
