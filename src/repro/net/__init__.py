"""Network transport: the protocol stack over real TCP sockets.

Every wire below this layer is an in-process
:class:`~repro.protocols.transport.DuplexLink`; this package carries the
same canonical :class:`~repro.protocols.messages.Message` encodings over
an actual asyncio TCP transport, which is the deployment shape the paper
argues for — helper data crossing a network, constant-size per
identification, instead of the O(N) database download of the normal
approach:

* :mod:`repro.net.framing` — the frame format: a 4-byte big-endian
  length prefix in front of one canonical message encoding (whose first
  2 bytes are the type tag the registry dispatches on), with a
  max-frame cap enforced on both read and write.  Async and blocking
  helpers share the exact same layout;
* :mod:`repro.net.server` — :class:`NetworkServer`, an asyncio TCP
  acceptor fronting any ``ServerEndpoint`` (the plain
  :class:`~repro.protocols.server.AuthenticationServer` or the
  concurrent :class:`~repro.service.frontend.ServiceFrontend`).
  Blocking handlers run on a bounded executor, malformed frames answer
  with typed :class:`~repro.protocols.messages.ErrorReply` frames
  instead of killing the accept loop, and per-connection traffic is
  accounted in :class:`~repro.protocols.transport.ChannelStats`;
* :mod:`repro.net.client` — the blocking :class:`NetworkClient` plus
  :class:`RemoteEndpoint`, a ``ServerEndpoint`` adapter that lets every
  existing runner, simulator, and bench drive a remote server through
  one socket exactly as it drives an in-process one.  Server-side
  backpressure (``ErrorReply(code="overload")``) surfaces client-side
  as :class:`~repro.exceptions.ServiceOverloadError`, making the
  service layer's admission control end-to-end;
* :mod:`repro.net.bench` — the closed-loop multi-client TCP bench
  behind ``repro net-bench`` (throughput, latency percentiles, wire
  bytes per identification, and an overload probe that demonstrates
  queue-full backpressure crossing the wire), appending to the
  ``BENCH_service.json`` trajectory.

Import discipline: **nothing below imports net** — protocols, engine,
and service stay complete without a socket in sight.  Net imports
protocols (messages, transport stats, the endpoint duck type) and is
imported only by the CLI, benches, and tests.
"""

from repro.net.client import (NetworkClient, PipelinedNetworkClient,
                              RemoteEndpoint)
from repro.net.framing import DEFAULT_MAX_FRAME, frame_buffers, frame_message
from repro.net.server import NetworkServer

__all__ = [
    "DEFAULT_MAX_FRAME",
    "NetworkClient",
    "NetworkServer",
    "PipelinedNetworkClient",
    "RemoteEndpoint",
    "frame_buffers",
    "frame_message",
]
