"""The asyncio TCP server.

:class:`NetworkServer` fronts any ``ServerEndpoint`` — the duck type
:mod:`repro.protocols.runners` defines — so one transport serves both
the plain :class:`~repro.protocols.server.AuthenticationServer` and the
concurrent :class:`~repro.service.frontend.ServiceFrontend`.  Request
routing is by message type: each decoded frame dispatches to the handler
the in-process stack would have called, and the handler's reply goes
back as the next frame on the connection (the protocols are strict
request/reply, so one in-flight request per connection is the contract,
exactly like the in-process runners).

Design points:

* **blocking handlers never run on the event loop.**  Both endpoints
  block (the server computes, the frontend waits on its pipeline
  future), so every handler call is pushed to a bounded thread pool via
  ``run_in_executor`` — slow signature math on one connection cannot
  stall another connection's reads, and the frontend's micro-batcher
  still sees *concurrent* submissions to coalesce;
* **a bad frame never kills the loop.**  Malformed bytes surface as
  :class:`~repro.exceptions.ProtocolError` (the decode layer's
  hardened contract), which the server answers with a typed
  :class:`~repro.protocols.messages.ErrorReply` frame before dropping
  only that connection; handler-level failures (overload, closed,
  unexpected) answer with their own error codes and keep the
  connection.  The accept loop itself never sees an exception;
* **backpressure crosses the wire.**  A full frontend queue raises
  :class:`~repro.exceptions.ServiceOverloadError` in the handler
  thread; the connection answers ``ErrorReply(code="overload")`` and
  the client re-raises the same exception type — the PR-3 admission
  story, end-to-end;
* **traffic is accounted per connection** in the same
  :class:`~repro.protocols.transport.ChannelStats` shape the simulated
  transport uses (real wire bytes including the frame prefix; the
  simulated-latency field stays zero because network time here is
  real), aggregated across closed connections for the server totals.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.exceptions import (
    ProtocolError,
    ServiceClosedError,
    ServiceOverloadError,
)
from repro.net.framing import (
    DEFAULT_MAX_FRAME,
    PREFIX_BYTES,
    frame_message,
    read_frame,
)
from repro.protocols.messages import (
    BaselineIdentificationRequest,
    BaselineResponseBatch,
    EnrollmentSubmission,
    ErrorReply,
    IdentificationDecline,
    IdentificationRequest,
    IdentificationResponse,
    Message,
    VerificationRequest,
    VerificationResponse,
)
from repro.protocols.transport import ChannelStats

#: Request message type -> the ServerEndpoint handler that answers it.
#: Reply-direction messages are deliberately absent: a client sending a
#: server-to-device message is a protocol violation, not a dispatch.
REQUEST_HANDLERS: dict[type, str] = {
    EnrollmentSubmission: "handle_enrollment",
    IdentificationRequest: "handle_identification_request",
    IdentificationResponse: "handle_identification_response",
    IdentificationDecline: "handle_identification_decline",
    VerificationRequest: "handle_verification_request",
    VerificationResponse: "handle_verification_response",
    BaselineIdentificationRequest: "handle_baseline_request",
    BaselineResponseBatch: "handle_baseline_response",
}


@dataclass
class ConnectionStats:
    """Per-connection wire accounting, one counter set per direction.

    The same shape :class:`~repro.protocols.transport.DuplexLink`
    exposes for the simulated wire, so byte-for-byte comparisons between
    in-process and TCP runs are direct.
    """

    peer: str
    to_server: ChannelStats = field(default_factory=ChannelStats)
    to_device: ChannelStats = field(default_factory=ChannelStats)

    @property
    def total_bytes(self) -> int:
        """Wire bytes moved in both directions (frame prefixes included)."""
        return self.to_server.wire_bytes + self.to_device.wire_bytes

    @property
    def total_messages(self) -> int:
        """Frames moved in both directions."""
        return self.to_server.messages + self.to_device.messages


class NetworkServer:
    """Serve a ``ServerEndpoint`` over asyncio TCP.

    The event loop runs on a dedicated background thread so the server
    composes with the rest of the (threaded, blocking) stack: tests,
    benches, and the CLI call :meth:`start` / :meth:`close` from
    ordinary synchronous code, or use the instance as a context
    manager.

    Parameters
    ----------
    endpoint:
        Any object with the ``ServerEndpoint`` handler surface.
    host / port:
        Bind address; port 0 picks an ephemeral port (the bound address
        is returned by :meth:`start` and kept in :attr:`address`).
    max_frame:
        Per-frame byte cap, enforced on read and write.
    handler_threads:
        Bound on concurrently executing handler calls.  With the
        service frontend behind it this should be at least the expected
        concurrent client count, or the executor queue becomes an
        unaccounted admission stage in front of the frontend's.
    owns_endpoint:
        When true, :meth:`close` also calls ``endpoint.close()`` (if it
        has one) after the transport is down — handy for benches that
        build a frontend just for one server.
    """

    def __init__(self, endpoint, host: str = "127.0.0.1", port: int = 0,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 handler_threads: int = 8,
                 owns_endpoint: bool = False) -> None:
        if handler_threads < 1:
            raise ValueError("handler_threads must be >= 1")
        self.endpoint = endpoint
        self.max_frame = max_frame
        self.owns_endpoint = owns_endpoint
        self._host = host
        self._port = port
        self._pool = ThreadPoolExecutor(
            max_workers=handler_threads, thread_name_prefix="net-handler")
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._address: tuple[str, int] | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._live_stats: list[ConnectionStats] = []
        self._stats_lock = threading.Lock()
        self._connections_served = 0
        self._open_connections = 0
        self._total = ConnectionStats(peer="*")
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start accepting, and return the bound ``(host, port)``.

        Idempotent once started; raises the underlying ``OSError`` if
        the bind fails.
        """
        if self._thread is not None:
            if self._startup_error is not None:
                raise self._startup_error
            assert self._address is not None
            return self._address
        self._thread = threading.Thread(
            target=self._thread_main, name="net-server", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        assert self._address is not None
        return self._address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; raises before :meth:`start`."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    def close(self) -> None:
        """Stop accepting, drain connections, join threads.  Idempotent.

        In-flight handler calls finish (their replies are dropped with
        the cancelled connections); then the executor shuts down, and
        the endpoint too when ``owns_endpoint`` was set.
        """
        if self._closed:
            return
        self._closed = True
        if (self._loop is not None and self._stop is not None
                and not self._loop.is_closed()):
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop closed between the check and the call
                # (failed start(): the bind error is the story, not this)
        if self._thread is not None:
            self._thread.join()
        self._pool.shutdown(wait=True, cancel_futures=True)
        if self.owns_endpoint:
            endpoint_close = getattr(self.endpoint, "close", None)
            if endpoint_close is not None:
                endpoint_close()

    def __enter__(self) -> "NetworkServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- event-loop thread --------------------------------------------------

    def _thread_main(self) -> None:
        """Run the accept loop on a private event loop until stopped."""
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()
            if not self._ready.is_set():
                self._startup_error = exc
        finally:
            self._ready.set()
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        """Bind, publish readiness, serve until the stop event fires."""
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._on_connection, self._host, self._port)
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Track, serve, and account one client connection."""
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        peername = writer.get_extra_info("peername")
        stats = ConnectionStats(
            peer=f"{peername[0]}:{peername[1]}" if peername else "?")
        with self._stats_lock:
            self._connections_served += 1
            self._open_connections += 1
            self._live_stats.append(stats)
        try:
            await self._serve_connection(reader, writer, stats)
        except asyncio.CancelledError:
            pass  # server shutdown: drop the connection quietly
        finally:
            self._conn_tasks.discard(task)
            with self._stats_lock:
                self._open_connections -= 1
                self._live_stats = [s for s in self._live_stats
                                    if s is not stats]
                for mine, total in (
                    (stats.to_server, self._total.to_server),
                    (stats.to_device, self._total.to_device),
                ):
                    total.messages += mine.messages
                    total.wire_bytes += mine.wire_bytes
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer already gone; nothing left to flush

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter,
                                stats: ConnectionStats) -> None:
        """The request/reply loop for one connection."""
        loop = asyncio.get_running_loop()
        while True:
            try:
                payload = await read_frame(reader, self.max_frame)
            except ProtocolError as exc:
                # Framing is no longer trustworthy: answer once, hang up.
                await self._send(writer, stats, ErrorReply(
                    code="protocol", detail=str(exc)))
                return
            if payload is None:
                return  # clean EOF between frames
            stats.to_server.record(len(payload) + PREFIX_BYTES, 0.0)
            try:
                message = Message.decode(payload)
                handler_name = REQUEST_HANDLERS.get(type(message))
                if handler_name is None:
                    raise ProtocolError(
                        f"{type(message).__name__} is not a request message"
                    )
            except ProtocolError as exc:
                # The frame parsed as a frame, so the stream is still in
                # sync: report the bad request and keep serving.
                await self._send(writer, stats, ErrorReply(
                    code="protocol", detail=str(exc)))
                continue
            handler = getattr(self.endpoint, handler_name)
            try:
                reply = await loop.run_in_executor(
                    self._pool, handler, message)
            except ServiceOverloadError as exc:
                reply = ErrorReply(code="overload", detail=str(exc))
            except ServiceClosedError as exc:
                reply = ErrorReply(code="closed", detail=str(exc))
            except ProtocolError as exc:
                reply = ErrorReply(code="protocol", detail=str(exc))
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                reply = ErrorReply(
                    code="internal",
                    detail=f"{type(exc).__name__}: {exc}")
            await self._send(writer, stats, reply)

    def _frame_reply(self, message: Message) -> bytes | None:
        """Frame a reply, degrading to a trimmed error frame if over cap.

        A reply larger than ``max_frame`` (a tiny configured cap, or an
        O(N) baseline batch outgrowing it) must not kill the connection
        silently: the client gets a ``protocol`` error frame whose
        detail is cut to fit.  Returns ``None`` only when the cap is too
        small for even an empty error frame.
        """
        try:
            return frame_message(message, self.max_frame)
        except ProtocolError as exc:
            code = message.code if isinstance(message, ErrorReply) \
                else "protocol"
            detail = str(exc)
            # Payload: 2B tag + two 8B chunk lengths + code + detail.
            room = self.max_frame - 2 - 8 - len(code.encode()) - 8
            try:
                return frame_message(
                    ErrorReply(code=code, detail=detail[:max(room, 0)]),
                    self.max_frame)
            except ProtocolError:
                return None

    async def _send(self, writer: asyncio.StreamWriter,
                    stats: ConnectionStats, message: Message) -> None:
        """Frame, account, and flush one server-to-device message."""
        frame = self._frame_reply(message)
        if frame is None:
            return
        writer.write(frame)
        stats.to_device.record(len(frame), 0.0)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # peer vanished mid-reply; the read side will see EOF

    # -- introspection ------------------------------------------------------

    def wire_stats(self) -> ConnectionStats:
        """Aggregate traffic across all connections, live and closed.

        Live connections' counters are sampled without synchronising the
        event loop, so a snapshot taken mid-request can lag by a frame.
        """
        with self._stats_lock:
            total = ConnectionStats(peer="*")
            for conn in [self._total, *self._live_stats]:
                for mine, agg in ((conn.to_server, total.to_server),
                                  (conn.to_device, total.to_device)):
                    agg.messages += mine.messages
                    agg.wire_bytes += mine.wire_bytes
            return total

    def connections_served(self) -> int:
        """Connections accepted over the server's lifetime."""
        with self._stats_lock:
            return self._connections_served

    def open_connections(self) -> int:
        """Connections currently being served."""
        with self._stats_lock:
            return self._open_connections
